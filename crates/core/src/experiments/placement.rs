//! Placement experiments: Figs. 5–10 of the paper.
//!
//! Setup mirrors §V.A/§V.B: 6–30 VNFs drawn from the standard catalog,
//! 30–1000 requests with chains of at most six VNFs, 4–50 computing nodes
//! with capacities drawn from 1–5000 units, and three algorithms — BFDSU
//! (the paper's), FFD and NAH. Every point is averaged over `repetitions`
//! seeds; algorithms that fail to find a feasible placement within their
//! restart budget are excluded from that point's average and counted in
//! [`PlacementStats::failures`].

use nfv_metrics::OnlineStats;
use nfv_model::ServiceChain;
use nfv_parallel::{derive_seed, par_map};
use nfv_placement::{Bfdsu, Ffd, Nah, PlacementProblem, Placer};
use nfv_topology::builders;
use nfv_workload::{InstancePolicy, ScenarioBuilder};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::experiments::Sweep;
use crate::CoreError;

/// One evaluation point of the placement experiments.
///
/// Node capacities are drawn relative to the workload: with fill factor
/// `φ`, capacities are uniform around `total demand / (|V| · φ)` (spread
/// 0.4×–1.6×), so the packing tightness — the thing bin-packing quality
/// depends on — stays constant across sweeps, matching the paper's stable
/// utilization curves. The draw is clamped from below so every VNF fits on
/// every node, keeping all points feasible.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PlacementPoint {
    /// Number of computing nodes `|V|`.
    pub nodes: usize,
    /// Fraction of the total node capacity the workload demands (packing
    /// tightness).
    pub fill: f64,
    /// Number of VNFs `|F|`.
    pub vnfs: usize,
    /// Number of requests `|R|`.
    pub requests: usize,
    /// Requests per service instance (drives `M_f`, paper knob 1–200).
    pub requests_per_instance: u32,
}

impl PlacementPoint {
    /// The paper's base configuration: 10 nodes at 75% fill, 15 VNFs, 200
    /// requests, one instance per 10 requests.
    #[must_use]
    pub fn base() -> Self {
        Self {
            nodes: 10,
            fill: 0.75,
            vnfs: 15,
            requests: 200,
            requests_per_instance: 10,
        }
    }
}

/// Averaged metrics of one algorithm at one point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PlacementStats {
    /// Mean average resource utilization of nodes in service (Eq. (13)),
    /// as a ratio.
    pub utilization: f64,
    /// Mean number of nodes in service (Eq. (14)).
    pub nodes_in_service: f64,
    /// Mean resource occupation: combined capacity of used nodes (units).
    pub occupation: f64,
    /// Mean executions until the first feasible solution (Fig. 10).
    pub iterations: f64,
    /// Repetitions in which the algorithm found no feasible placement.
    pub failures: u64,
}

/// The three placers the paper compares, in presentation order.
#[must_use]
pub fn standard_placers() -> Vec<Box<dyn Placer>> {
    vec![
        Box::new(Bfdsu::new()),
        Box::new(Ffd::new()),
        Box::new(Nah::new()),
    ]
}

/// One placer's raw measurements from one repetition:
/// `[utilization, nodes in service, occupation, iterations]`.
type TrialRow = Option<[f64; 4]>;

/// Runs every placer on one point, averaging over `repetitions` seeds
/// derived from `base_seed`.
///
/// Repetitions are fully independent, so they run on the deterministic
/// worker pool (`nfv-parallel`): every trial's RNG is derived from
/// `(base_seed, trial index)` and the per-trial rows are folded back in
/// trial order, making the result bit-identical at any thread count.
///
/// # Errors
///
/// Returns [`CoreError`] only for structurally invalid points (e.g. more
/// VNFs than any chain set can cover); per-seed algorithm failures are
/// folded into [`PlacementStats::failures`] instead.
pub fn run_point(
    point: &PlacementPoint,
    placers: &[Box<dyn Placer>],
    repetitions: u64,
    base_seed: u64,
) -> Result<Vec<(String, PlacementStats)>, CoreError> {
    let mut utilization: Vec<OnlineStats> = vec![OnlineStats::new(); placers.len()];
    let mut nodes_in_service: Vec<OnlineStats> = vec![OnlineStats::new(); placers.len()];
    let mut occupation: Vec<OnlineStats> = vec![OnlineStats::new(); placers.len()];
    let mut iterations: Vec<OnlineStats> = vec![OnlineStats::new(); placers.len()];
    let mut failures: Vec<u64> = vec![0; placers.len()];

    let trials = par_map(
        (0..repetitions).collect(),
        |_, rep| -> Result<Vec<TrialRow>, CoreError> {
            let seed = derive_seed(base_seed, rep);
            let problem = build_problem(point, seed)?;
            Ok(placers
                .iter()
                .enumerate()
                .map(|(i, placer)| {
                    let mut rng = StdRng::seed_from_u64(derive_seed(seed, i as u64));
                    placer.place(&problem, &mut rng).ok().map(|outcome| {
                        let placement = outcome.placement();
                        [
                            placement.average_utilization().value(),
                            placement.nodes_in_service() as f64,
                            placement.resource_occupation(),
                            outcome.iterations() as f64,
                        ]
                    })
                })
                .collect())
        },
    )?;
    for trial in trials {
        for (i, row) in trial?.into_iter().enumerate() {
            match row {
                Some([util, nodes, occ, iters]) => {
                    utilization[i].push(util);
                    nodes_in_service[i].push(nodes);
                    occupation[i].push(occ);
                    iterations[i].push(iters);
                }
                None => failures[i] += 1,
            }
        }
    }

    Ok(placers
        .iter()
        .enumerate()
        .map(|(i, placer)| {
            (
                placer.name().to_owned(),
                PlacementStats {
                    utilization: utilization[i].mean(),
                    nodes_in_service: nodes_in_service[i].mean(),
                    occupation: occupation[i].mean(),
                    iterations: iterations[i].mean(),
                    failures: failures[i],
                },
            )
        })
        .collect())
}

/// Materializes one point into a concrete [`PlacementProblem`]: a random
/// connected topology with capacities from the point's range and a scenario
/// generated per §V.A. Shared with the anytime-search experiments so the
/// metaheuristics are measured on exactly the instances the greedy placers
/// see.
pub(crate) fn build_problem(
    point: &PlacementPoint,
    seed: u64,
) -> Result<PlacementProblem, CoreError> {
    let scenario = ScenarioBuilder::new()
        .vnfs(point.vnfs)
        .requests(point.requests)
        .instance_policy(InstancePolicy::PerUsers {
            requests_per_instance: point.requests_per_instance,
        })
        .seed(seed)
        .build()?;
    // Capacities scale with the workload so packing tightness equals the
    // point's fill factor regardless of request/VNF counts.
    let total_demand = scenario.total_demand().value();
    let max_demand = scenario
        .vnfs()
        .iter()
        .map(|v| v.total_demand().value())
        .fold(0.0f64, f64::max);
    let (lo, hi) =
        crate::experiments::capacity_bounds(total_demand, max_demand, point.nodes, point.fill);
    let chains: Vec<ServiceChain> = scenario
        .requests()
        .iter()
        .map(|r| r.chain().clone())
        .collect();

    // Random capacity draws occasionally produce genuinely infeasible
    // packings; the paper's setup is implicitly always feasible, so redraw
    // until a deterministic strong packer (BFD) certifies feasibility.
    let mut fallback = None;
    for redraw in 0..20u64 {
        let topology = builders::random_connected()
            .nodes(point.nodes)
            .seed(seed)
            .capacity_range(lo, hi, seed ^ 0xABCD ^ (redraw << 48))
            .build()?;
        let problem = PlacementProblem::with_chains(
            topology.compute_nodes().to_vec(),
            scenario.vnfs().to_vec(),
            chains.clone(),
        )?;
        let mut probe_rng = StdRng::seed_from_u64(0);
        if nfv_placement::Bfd::new()
            .place(&problem, &mut probe_rng)
            .is_ok()
        {
            return Ok(problem);
        }
        fallback = Some(problem);
    }
    Ok(fallback.expect("at least one draw was made"))
}

fn sweep_over<I>(
    x_label: &str,
    points: I,
    metric: impl Fn(&PlacementStats) -> f64,
    repetitions: u64,
    base_seed: u64,
) -> Result<Sweep, CoreError>
where
    I: IntoIterator<Item = (f64, PlacementPoint)>,
{
    let placers = standard_placers();
    let mut sweep = Sweep::new(
        x_label,
        placers.iter().map(|p| p.name().to_owned()).collect(),
    );
    for (x, point) in points {
        let stats = run_point(&point, &placers, repetitions, base_seed)?;
        sweep.push(x, stats.iter().map(|(_, s)| metric(s)).collect());
    }
    Ok(sweep)
}

/// Fig. 5: average resource utilization of 10 nodes as the number of
/// requests scales from 30 to 1000 (15 VNFs).
///
/// # Errors
///
/// Propagates structural configuration errors.
pub fn fig5_utilization_vs_requests(repetitions: u64, base_seed: u64) -> Result<Sweep, CoreError> {
    let points = [30, 100, 200, 300, 400, 500, 600, 700, 800, 900, 1000].map(|requests| {
        let point = PlacementPoint {
            requests,
            ..PlacementPoint::base()
        };
        (requests as f64, point)
    });
    sweep_over(
        "requests",
        points,
        |s| s.utilization * 100.0,
        repetitions,
        base_seed,
    )
}

/// Fig. 6: average utilization of used nodes handling 1000 requests as the
/// problem scales jointly (6→30 VNFs, 4→20 nodes).
///
/// # Errors
///
/// Propagates structural configuration errors.
pub fn fig6_utilization_vs_scale(repetitions: u64, base_seed: u64) -> Result<Sweep, CoreError> {
    let scales = [(6, 4), (12, 8), (18, 12), (24, 16), (30, 20)];
    let points = scales.map(|(vnfs, nodes)| {
        let point = PlacementPoint {
            vnfs,
            nodes,
            requests: 1000,
            ..PlacementPoint::base()
        };
        (vnfs as f64, point)
    });
    sweep_over(
        "vnfs",
        points,
        |s| s.utilization * 100.0,
        repetitions,
        base_seed,
    )
}

fn node_sweep_points() -> impl Iterator<Item = (f64, PlacementPoint)> {
    [6, 10, 14, 18, 22, 26, 30].into_iter().map(|nodes| {
        let point = PlacementPoint {
            nodes,
            ..PlacementPoint::base()
        };
        (nodes as f64, point)
    })
}

/// Fig. 7: average utilization placing 15 VNFs as nodes scale 6→30.
///
/// # Errors
///
/// Propagates structural configuration errors.
pub fn fig7_utilization_vs_nodes(repetitions: u64, base_seed: u64) -> Result<Sweep, CoreError> {
    sweep_over(
        "nodes",
        node_sweep_points(),
        |s| s.utilization * 100.0,
        repetitions,
        base_seed,
    )
}

/// Fig. 8: average number of nodes in service placing 15 VNFs.
///
/// # Errors
///
/// Propagates structural configuration errors.
pub fn fig8_nodes_in_service(repetitions: u64, base_seed: u64) -> Result<Sweep, CoreError> {
    sweep_over(
        "nodes",
        node_sweep_points(),
        |s| s.nodes_in_service,
        repetitions,
        base_seed,
    )
}

/// Fig. 9: average resource occupation (combined capacity of used nodes)
/// placing 15 VNFs.
///
/// # Errors
///
/// Propagates structural configuration errors.
pub fn fig9_resource_occupation(repetitions: u64, base_seed: u64) -> Result<Sweep, CoreError> {
    sweep_over(
        "nodes",
        node_sweep_points(),
        |s| s.occupation,
        repetitions,
        base_seed,
    )
}

/// Fig. 10: executions until the first feasible solution, on a tight
/// configuration (capacity headroom shrinks as requests grow), where the
/// randomized algorithms must restart.
///
/// # Errors
///
/// Propagates structural configuration errors.
pub fn fig10_iterations_vs_requests(repetitions: u64, base_seed: u64) -> Result<Sweep, CoreError> {
    let points = [100, 200, 300, 400, 500, 600, 700, 800].map(|requests| {
        let point = PlacementPoint {
            requests,
            // Tighter than the utilization sweeps so restarts actually
            // occur.
            fill: 0.93,
            ..PlacementPoint::base()
        };
        (requests as f64, point)
    });
    sweep_over("requests", points, |s| s.iterations, repetitions, base_seed)
}

/// Extension: solution quality against the exact branch-and-bound oracle
/// on instances small enough to solve optimally. For each VNF count the
/// sweep reports the mean ratio `nodes used / optimal nodes` per
/// algorithm (1.0 = optimal; Theorem 2 bounds BFDSU's asymptotic worst
/// case at 2.0).
///
/// # Errors
///
/// Propagates structural configuration errors.
pub fn quality_vs_oracle(repetitions: u64, base_seed: u64) -> Result<Sweep, CoreError> {
    let placers = standard_placers();
    let mut sweep = Sweep::new(
        "vnfs",
        placers.iter().map(|p| p.name().to_owned()).collect(),
    );
    for vnfs in [5usize, 6, 7, 8, 9] {
        let point = PlacementPoint {
            nodes: 5,
            vnfs,
            requests: 60,
            requests_per_instance: 10,
            fill: 0.7,
        };
        let mut ratios: Vec<OnlineStats> = vec![OnlineStats::new(); placers.len()];
        let trials = par_map(
            (0..repetitions).collect(),
            |_, rep| -> Result<Option<Vec<Option<f64>>>, CoreError> {
                let seed = derive_seed(base_seed, rep);
                let problem = build_problem(&point, seed)?;
                let Some(opt) = nfv_placement::exact::optimal_node_count(&problem) else {
                    return Ok(None);
                };
                Ok(Some(
                    placers
                        .iter()
                        .enumerate()
                        .map(|(i, placer)| {
                            let mut rng = StdRng::seed_from_u64(derive_seed(seed, i as u64));
                            placer.place(&problem, &mut rng).ok().map(|outcome| {
                                outcome.placement().nodes_in_service() as f64 / opt.max(1) as f64
                            })
                        })
                        .collect(),
                ))
            },
        )?;
        for trial in trials {
            let Some(rows) = trial? else { continue };
            for (i, ratio) in rows.into_iter().enumerate() {
                if let Some(ratio) = ratio {
                    ratios[i].push(ratio);
                }
            }
        }
        sweep.push(vnfs as f64, ratios.iter().map(OnlineStats::mean).collect());
    }
    Ok(sweep)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_point_reports_all_algorithms() {
        let stats = run_point(&PlacementPoint::base(), &standard_placers(), 3, 1).unwrap();
        let names: Vec<&str> = stats.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["bfdsu", "ffd", "nah"]);
        for (_, s) in &stats {
            assert!(s.utilization > 0.0 && s.utilization <= 1.0);
            assert!(s.nodes_in_service >= 1.0);
            assert!(s.iterations >= 1.0);
        }
    }

    #[test]
    fn bfdsu_beats_baselines_on_utilization() {
        let stats = run_point(&PlacementPoint::base(), &standard_placers(), 5, 7).unwrap();
        let get = |name: &str| stats.iter().find(|(n, _)| n == name).unwrap().1;
        assert!(
            get("bfdsu").utilization > get("ffd").utilization,
            "bfdsu {} <= ffd {}",
            get("bfdsu").utilization,
            get("ffd").utilization
        );
        assert!(
            get("bfdsu").utilization > get("nah").utilization,
            "bfdsu {} <= nah {}",
            get("bfdsu").utilization,
            get("nah").utilization
        );
        assert!(get("bfdsu").nodes_in_service <= get("nah").nodes_in_service);
    }

    #[test]
    fn point_runs_are_deterministic() {
        let a = run_point(&PlacementPoint::base(), &standard_placers(), 2, 3).unwrap();
        let b = run_point(&PlacementPoint::base(), &standard_placers(), 2, 3).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn quality_ratios_are_at_least_one() {
        let sweep = quality_vs_oracle(3, 5).unwrap();
        for row in sweep.rows() {
            for &ratio in &row.values {
                assert!(ratio >= 1.0 - 1e-9, "ratio below optimal: {ratio}");
                assert!(ratio <= 3.0, "implausible ratio {ratio}");
            }
        }
        // BFDSU stays within its factor-2 bound and clearly beats FFD on
        // these instances. (NAH's largest-node-first policy is nearly
        // node-count-optimal on tiny fleets even though its utilization is
        // poor, so no ordering is asserted against it here.)
        let bfdsu = sweep.series_mean("bfdsu").unwrap();
        let ffd = sweep.series_mean("ffd").unwrap();
        assert!(bfdsu <= 2.0, "bfdsu mean ratio {bfdsu} beyond factor-2");
        assert!(bfdsu <= ffd + 1e-9, "bfdsu {bfdsu} worse than ffd {ffd}");
    }

    #[test]
    fn fig5_has_expected_shape() {
        let sweep = fig5_utilization_vs_requests(1, 11).unwrap();
        assert_eq!(sweep.rows().len(), 11);
        assert_eq!(sweep.series(), &["bfdsu", "ffd", "nah"]);
    }
}
