//! Offline stand-in for the `criterion` crate.
//!
//! Implements the subset the workspace's benches use — `Criterion`,
//! `benchmark_group`/`bench_function`/`bench_with_input`, `BenchmarkId`,
//! `Bencher::iter`, and the `criterion_group!`/`criterion_main!` macros.
//! Instead of criterion's adaptive sampling and statistics, every benchmark
//! runs a short warm-up followed by a fixed batch of timed iterations and
//! prints the mean wall-clock time per iteration. That is enough to compare
//! algorithms at an order-of-magnitude level and to keep the bench targets
//! compiling and runnable without crates.io access.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::Instant;

pub use std::hint::black_box;

/// Warm-up iterations before timing starts.
const WARMUP_ITERS: u32 = 3;
/// Timed iterations contributing to the reported mean.
const TIMED_ITERS: u32 = 10;

/// Entry point handed to benchmark functions.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Runs a standalone named benchmark.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(id, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.to_string(), _parent: self }
    }
}

/// A named collection of benchmarks sharing a prefix.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Runs a benchmark labelled by a plain string id.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&format!("{}/{}", self.name, id), f);
        self
    }

    /// Runs a benchmark labelled by a [`BenchmarkId`] over a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_benchmark(&format!("{}/{}", self.name, id.label), |b| f(b, input));
        self
    }

    /// Ends the group (upstream flushes reports here; the shim prints
    /// per-benchmark lines eagerly, so this is a no-op).
    pub fn finish(self) {}
}

/// A two-part benchmark label: function name plus parameter value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Builds the label `{name}/{parameter}`.
    pub fn new<P: Display>(name: &str, parameter: P) -> Self {
        Self { label: format!("{name}/{parameter}") }
    }
}

/// Timer handle passed to each benchmark closure.
#[derive(Debug, Default)]
pub struct Bencher {
    total_nanos: u128,
    iters: u32,
}

impl Bencher {
    /// Runs `routine` under the fixed warm-up + timed iteration plan.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        for _ in 0..WARMUP_ITERS {
            black_box(routine());
        }
        let start = Instant::now();
        for _ in 0..TIMED_ITERS {
            black_box(routine());
        }
        self.total_nanos = start.elapsed().as_nanos();
        self.iters = TIMED_ITERS;
    }
}

fn run_benchmark<F>(label: &str, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut bencher = Bencher::default();
    f(&mut bencher);
    if bencher.iters == 0 {
        println!("bench {label:<48} (no iterations recorded)");
        return;
    }
    let mean_nanos = bencher.total_nanos as f64 / f64::from(bencher.iters);
    println!("bench {label:<48} {}", format_nanos(mean_nanos));
}

fn format_nanos(nanos: f64) -> String {
    if nanos < 1_000.0 {
        format!("{nanos:>10.1} ns/iter")
    } else if nanos < 1_000_000.0 {
        format!("{:>10.2} us/iter", nanos / 1_000.0)
    } else if nanos < 1_000_000_000.0 {
        format!("{:>10.2} ms/iter", nanos / 1_000_000.0)
    } else {
        format!("{:>10.2} s/iter", nanos / 1_000_000_000.0)
    }
}

/// Collects benchmark functions under one group name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        c.bench_function("sum-small", |b| b.iter(|| (0..64u64).sum::<u64>()));
        let mut group = c.benchmark_group("group");
        let input = vec![1.0f64; 16];
        group.bench_with_input(BenchmarkId::new("mean", input.len()), &input, |b, xs| {
            b.iter(|| xs.iter().sum::<f64>() / xs.len() as f64)
        });
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_macro_runs() {
        benches();
    }

    #[test]
    fn id_label_includes_parameter() {
        assert_eq!(BenchmarkId::new("rckk", "16r-3i").label, "rckk/16r-3i");
    }

    #[test]
    fn nanos_format_scales() {
        assert!(format_nanos(12.0).contains("ns/iter"));
        assert!(format_nanos(12_000.0).contains("us/iter"));
        assert!(format_nanos(12_000_000.0).contains("ms/iter"));
    }
}
