//! Chain-affinity placement: BFDSU extended toward the joint objective.

use std::collections::HashMap;

use nfv_model::{NodeId, VnfId};
use rand::{Rng, RngCore};

use crate::placer::run_with_restarts;
use crate::support::{vnfs_by_decreasing_demand, Remaining};
use crate::{Placement, PlacementError, PlacementOutcome, PlacementProblem, Placer};

/// BFDSU with chain affinity — our extension toward the joint objective
/// of Eq. (16).
///
/// BFDSU optimizes the phase-one objective (utilization / node count) and
/// leaves the inter-node hop term of Eq. (16) to luck: two VNFs of the
/// same chain may land on different nodes even when co-locating them was
/// free. `ChainAffinity` keeps BFDSU's structure — decreasing demand
/// order, used-before-spare priority, weighted-random tight fit, restart
/// on dead ends — but multiplies each candidate node's weight by
/// `1 + bonus · a(v, f)`, where `a(v, f)` is the (normalized) number of
/// request chains in which `f` co-occurs with some VNF already placed on
/// `v`. Since Eq. (16) charges `L` per *distinct node* a chain touches,
/// co-occurrence — not just chain adjacency — is the right affinity
/// signal. Intra-server processing (Fig. 1(b) of the paper) becomes the
/// likely outcome wherever capacity allows, at no cost to the packing
/// discipline.
///
/// With `bonus = 0` the algorithm *is* BFDSU (seed for seed). The
/// joint-pipeline ablation quantifies what the affinity term buys — and
/// the measured answer on the paper's workload family is *nothing*
/// (±1% on the link part of Eq. (16), see `EXPERIMENTS.md`): BFDSU's
/// used-before-spare consolidation already co-locates as much as the
/// capacities allow, and the residual chain spread is forced by packing,
/// not by placement order. The placer is kept as a documented negative
/// result and as scaffolding for workloads with genuinely disjoint chain
/// clusters and roomy nodes, where the signal has room to act.
///
/// # Examples
///
/// ```
/// use nfv_placement::{ChainAffinity, Placer, PlacementProblem};
/// # use nfv_model::{Capacity, ComputeNode, Demand, NodeId, ServiceChain, ServiceRate, Vnf, VnfId, VnfKind};
/// use rand::SeedableRng;
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// # let nodes = vec![ComputeNode::new(NodeId::new(0), Capacity::new(100.0)?)];
/// # let vnfs = vec![Vnf::builder(VnfId::new(0), VnfKind::Nat)
/// #     .demand_per_instance(Demand::new(30.0)?)
/// #     .service_rate(ServiceRate::new(100.0)?)
/// #     .build()?];
/// # let chains = vec![ServiceChain::single(VnfId::new(0))];
/// let problem = PlacementProblem::with_chains(nodes, vnfs, chains)?;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let outcome = ChainAffinity::new().place(&problem, &mut rng)?;
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ChainAffinity {
    bonus: f64,
    max_attempts: u64,
}

impl ChainAffinity {
    /// Creates the placer with the default affinity bonus (4.0) and
    /// restart budget (1000).
    #[must_use]
    pub fn new() -> Self {
        Self {
            bonus: 4.0,
            max_attempts: 1000,
        }
    }

    /// Sets the affinity bonus per co-located chain neighbor (0 = plain
    /// BFDSU behaviour; clamped to be non-negative and finite).
    #[must_use]
    pub fn with_bonus(mut self, bonus: f64) -> Self {
        self.bonus = if bonus.is_finite() {
            bonus.max(0.0)
        } else {
            0.0
        };
        self
    }

    /// Sets the restart budget.
    #[must_use]
    pub fn with_max_attempts(mut self, max_attempts: u64) -> Self {
        self.max_attempts = max_attempts.max(1);
        self
    }

    fn attempt(
        &self,
        problem: &PlacementProblem,
        affinity: &[HashMap<VnfId, f64>],
        rng: &mut dyn RngCore,
    ) -> Option<Placement> {
        let order = vnfs_by_decreasing_demand(problem);
        let mut remaining = Remaining::new(problem);
        let mut in_service = vec![false; problem.nodes().len()];
        let mut placed: Vec<Option<NodeId>> = vec![None; problem.vnfs().len()];

        for vnf in order {
            let demand = problem.demand_of(vnf).value();
            let used: Vec<NodeId> = problem
                .nodes()
                .iter()
                .map(|n| n.id())
                .filter(|&n| in_service[n.as_usize()] && remaining.fits(n, demand))
                .collect();
            let mut candidates: Vec<NodeId> = if used.is_empty() {
                problem
                    .nodes()
                    .iter()
                    .map(|n| n.id())
                    .filter(|&n| !in_service[n.as_usize()] && remaining.fits(n, demand))
                    .collect()
            } else {
                used
            };
            if candidates.is_empty() {
                return None;
            }
            // Same candidate order as BFDSU's weighted pick, so a zero
            // bonus reproduces BFDSU exactly (seed for seed).
            candidates.sort_by(|&a, &b| {
                remaining
                    .of(a)
                    .partial_cmp(&remaining.of(b))
                    .expect("capacities are finite")
                    .then(a.cmp(&b))
            });

            // BFDSU weight times the affinity bonus for co-located
            // co-chain VNFs.
            let weights: Vec<f64> = candidates
                .iter()
                .map(|&v| {
                    let tight = 1.0 / (1.0 + (remaining.of(v) - demand).max(0.0));
                    let colocated: f64 = affinity[vnf.as_usize()]
                        .iter()
                        .filter(|(other, _)| placed[other.as_usize()] == Some(v))
                        .map(|(_, w)| w)
                        .sum();
                    tight * (1.0 + self.bonus * colocated)
                })
                .collect();
            let total: f64 = weights.iter().sum();
            let xi = rng.gen_range(0.0..total);
            let mut acc = 0.0;
            let mut chosen = *candidates.last().expect("non-empty");
            for (node, w) in candidates.iter().zip(&weights) {
                acc += w;
                if xi < acc {
                    chosen = *node;
                    break;
                }
            }

            placed[vnf.as_usize()] = Some(chosen);
            remaining.consume(chosen, demand);
            in_service[chosen.as_usize()] = true;
        }
        let assignment: Vec<NodeId> = placed.into_iter().collect::<Option<_>>()?;
        Some(Placement::new(problem, assignment).expect("capacity tracked during construction"))
    }
}

impl Default for ChainAffinity {
    fn default() -> Self {
        Self::new()
    }
}

impl Placer for ChainAffinity {
    fn name(&self) -> &'static str {
        "chain-affinity"
    }

    fn place(
        &self,
        problem: &PlacementProblem,
        rng: &mut dyn RngCore,
    ) -> Result<PlacementOutcome, PlacementError> {
        // Co-occurrence weights: for each unordered VNF pair, how many
        // chains contain both (normalized so the heaviest pair weighs 1).
        let mut affinity: Vec<HashMap<VnfId, f64>> = vec![HashMap::new(); problem.vnfs().len()];
        for chain in problem.chains() {
            let members: Vec<VnfId> = chain.iter().collect();
            for (i, &a) in members.iter().enumerate() {
                for &b in &members[i + 1..] {
                    *affinity[a.as_usize()].entry(b).or_insert(0.0) += 1.0;
                    *affinity[b.as_usize()].entry(a).or_insert(0.0) += 1.0;
                }
            }
        }
        let max_weight = affinity
            .iter()
            .flat_map(|m| m.values().copied())
            .fold(0.0f64, f64::max);
        if max_weight > 0.0 {
            for map in &mut affinity {
                for w in map.values_mut() {
                    *w /= max_weight;
                }
            }
        }
        run_with_restarts(problem, self.max_attempts, || {
            self.attempt(problem, &affinity, rng)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nfv_model::{Capacity, ComputeNode, Demand, ServiceChain, ServiceRate, Vnf, VnfKind};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn problem(caps: &[f64], demands: &[f64], chains: &[&[u32]]) -> PlacementProblem {
        let nodes = caps
            .iter()
            .enumerate()
            .map(|(i, &c)| ComputeNode::new(NodeId::new(i as u32), Capacity::new(c).unwrap()))
            .collect();
        let vnfs = demands
            .iter()
            .enumerate()
            .map(|(i, &d)| {
                Vnf::builder(VnfId::new(i as u32), VnfKind::Custom(i as u16))
                    .demand_per_instance(Demand::new(d).unwrap())
                    .service_rate(ServiceRate::new(100.0).unwrap())
                    .build()
                    .unwrap()
            })
            .collect();
        let chains = chains
            .iter()
            .map(|ids| ServiceChain::new(ids.iter().map(|&i| VnfId::new(i)).collect()).unwrap())
            .collect();
        PlacementProblem::with_chains(nodes, vnfs, chains).unwrap()
    }

    #[test]
    fn colocates_chain_pairs_when_capacity_allows() {
        // Two independent chains of two VNFs; two nodes each fitting
        // exactly one pair. Affinity should pair chain partners, not
        // strangers.
        let p = problem(
            &[100.0, 100.0],
            &[50.0, 50.0, 50.0, 50.0],
            &[&[0, 1], &[2, 3]],
        );
        let mut paired = 0;
        for seed in 0..30 {
            let mut rng = StdRng::seed_from_u64(seed);
            let outcome = ChainAffinity::new().place(&p, &mut rng).unwrap();
            let placement = outcome.placement();
            if placement.colocated(VnfId::new(0), VnfId::new(1))
                && placement.colocated(VnfId::new(2), VnfId::new(3))
            {
                paired += 1;
            }
        }
        // Plain BFDSU pairs by chance ~1/3 of the time; affinity should do
        // much better.
        assert!(paired >= 20, "paired only {paired}/30");
    }

    #[test]
    fn zero_bonus_behaves_like_bfdsu_statistically() {
        use crate::Bfdsu;
        let p = problem(
            &[100.0, 100.0, 100.0],
            &[40.0, 40.0, 40.0, 40.0],
            &[&[0, 1, 2, 3]],
        );
        // Same seed stream: identical sampling structure means identical
        // placements when the bonus is zero.
        for seed in 0..10 {
            let a = ChainAffinity::new()
                .with_bonus(0.0)
                .place(&p, &mut StdRng::seed_from_u64(seed))
                .unwrap();
            let b = Bfdsu::new()
                .place(&p, &mut StdRng::seed_from_u64(seed))
                .unwrap();
            assert_eq!(
                a.placement().assignment(),
                b.placement().assignment(),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn packing_quality_is_preserved() {
        // Affinity must not sacrifice the node count: everything still
        // fits on one node here and must land there.
        let p = problem(&[200.0, 200.0], &[40.0, 40.0, 40.0], &[&[0, 1, 2]]);
        let mut rng = StdRng::seed_from_u64(0);
        let outcome = ChainAffinity::new().place(&p, &mut rng).unwrap();
        assert_eq!(outcome.placement().nodes_in_service(), 1);
    }

    #[test]
    fn infeasible_fails_fast_and_bonus_clamps() {
        let p = problem(&[10.0], &[20.0], &[&[0]]);
        let mut rng = StdRng::seed_from_u64(0);
        assert!(matches!(
            ChainAffinity::new().place(&p, &mut rng).unwrap_err(),
            PlacementError::Infeasible { .. }
        ));
        assert_eq!(
            ChainAffinity::new().with_bonus(-3.0),
            ChainAffinity::new().with_bonus(0.0)
        );
        assert_eq!(
            ChainAffinity::new().with_bonus(f64::NAN),
            ChainAffinity::new().with_bonus(0.0)
        );
    }

    #[test]
    fn name_is_stable() {
        assert_eq!(ChainAffinity::new().name(), "chain-affinity");
    }
}
