//! The live load ledger: who is assigned where, at what rate.
//!
//! Storage is struct-of-arrays: VNFs live in a dense slab vector addressed
//! through a `u32` id→slot table, and each instance's members are a flat
//! run sorted by request id. The replay hot path (millions of churn events)
//! never touches a tree node; every lookup is an array index or a binary
//! search over a contiguous run.

use std::cell::Cell;

use nfv_model::{ArrivalRate, DeliveryProbability, RequestId, ServiceRate, VnfId};
use nfv_queueing::InstanceLoad;
use nfv_workload::Scenario;

use crate::ControllerError;

/// Sentinel in the id→slab table for a VNF the scenario doesn't have.
const NO_VNF: u32 = u32::MAX;

/// One request's share of an instance: the id-sorted member runs are the
/// source of truth for the cached sums.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Member {
    id: RequestId,
    rate: ArrivalRate,
    delivery: DeliveryProbability,
    /// Loss-inflated rate `λ_r/P_r`, precomputed once at insertion so every
    /// id-order recomputation adds the exact same addends and an add
    /// followed by a remove restores the sums bit for bit.
    inflated: f64,
}

/// One VNF's dynamic ledger state in checkpoint shape: outage depths,
/// host flag, and per-instance member runs as raw `(request id, rate,
/// delivery)` triples in id order. Produced by
/// [`ControllerState::export`], consumed by [`ControllerState::import`];
/// the snapshot serializer owns the JSON encoding of this shape.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct SlabExport {
    /// The VNF's raw id (must match the scenario's VNF at this position).
    pub(crate) vnf: u32,
    /// Outage depth per instance (0 = up).
    pub(crate) down: Vec<u32>,
    /// Whole-VNF host-down flag.
    pub(crate) host_down: bool,
    /// Per-instance member runs, id-sorted, as `(id, rate, delivery)`.
    pub(crate) members: Vec<Vec<(u32, f64, f64)>>,
}

/// Per-VNF slice of the ledger.
#[derive(Debug, Clone)]
struct VnfSlab {
    service: ServiceRate,
    /// Outage depth per instance: 0 means up. Overlapping outage windows
    /// stack, so the first `InstanceUp` of two overlapping outages does
    /// *not* resurrect the instance — only the last one does.
    down: Vec<u32>,
    /// Whole-VNF unavailability: the hosting compute node is dark. Every
    /// instance of the VNF is unavailable regardless of its own
    /// per-instance outage depth.
    host_down: bool,
    /// Members of each instance as a run sorted by request id. The runs
    /// (not running sums) are the source of truth: sums are recomputed
    /// from them in id order on every mutation, so an `add` followed by a
    /// `remove` restores the previous sums *bit for bit* — a running
    /// `+= / -=` would not, because float subtraction does not undo
    /// addition.
    members: Vec<Vec<Member>>,
    /// Cached Kleinrock-merged loss-inflated rate `Λ_k = Σ λ_r/P_r` per
    /// instance, recomputed from `members` after each mutation.
    sums: Vec<f64>,
    /// Cached external rate `Σ λ_r` per instance, recomputed in the same
    /// id-order pass as `sums` — exactly the accumulation order of
    /// [`InstanceLoad::add_request`], so `predicted_latency` can skip the
    /// per-member walk without perturbing a single bit.
    ext: Vec<f64>,
    /// Lazily cached `(flat external, inflated total)` pair for
    /// [`ControllerState::balanced_latency`]. `None` means dirty; member
    /// and instance-set mutations invalidate it, up/down transitions do
    /// not (the up-instance count is always read fresh). The refresh walks
    /// the runs in canonical `(instance, id)` order, so the cached value is
    /// always bit-identical to a from-scratch recompute.
    agg: Cell<Option<(f64, f64)>>,
}

impl PartialEq for VnfSlab {
    fn eq(&self, other: &Self) -> bool {
        // The lazy balanced-W aggregate is deliberately excluded: it is a
        // pure function of the fields below, and whether it is currently
        // materialized is not part of the ledger's logical state.
        self.service == other.service
            && self.down == other.down
            && self.host_down == other.host_down
            && self.members == other.members
            && self.sums == other.sums
            && self.ext == other.ext
    }
}

impl VnfSlab {
    fn instance_up(&self, k: usize) -> bool {
        !self.host_down && self.down.get(k) == Some(&0)
    }

    fn up_instances(&self) -> usize {
        if self.host_down {
            0
        } else {
            self.down.iter().filter(|&&d| d == 0).count()
        }
    }

    /// Recomputes the cached per-instance sums from the member run in id
    /// order — one pass, two independent accumulators, the same addend
    /// sequence as the `BTreeMap`-era ledger.
    fn recompute(&mut self, k: usize) {
        let mut inflated = 0.0;
        let mut external = 0.0;
        for member in &self.members[k] {
            inflated += member.inflated;
            external += member.rate.value();
        }
        self.sums[k] = inflated;
        self.ext[k] = external;
        self.agg.set(None);
    }

    /// Locates a request across this VNF's instances: `(instance, run
    /// position)`. One binary search per run — the slab keeps no separate
    /// home map.
    fn find(&self, id: RequestId) -> Option<(usize, usize)> {
        self.members.iter().enumerate().find_map(|(k, run)| {
            run.binary_search_by_key(&id, |m| m.id)
                .ok()
                .map(|pos| (k, pos))
        })
    }

    /// The balanced-W aggregate `(Σ λ_r, Σ Λ_k)`, refreshed from the runs
    /// in canonical `(instance, id)` order when dirty.
    fn balanced_agg(&self) -> (f64, f64) {
        if let Some(agg) = self.agg.get() {
            return agg;
        }
        let agg = self.balanced_agg_uncached();
        self.agg.set(Some(agg));
        agg
    }

    /// From-scratch balanced-W aggregate, never touching the cache.
    fn balanced_agg_uncached(&self) -> (f64, f64) {
        let external: f64 = self.members.iter().flatten().map(|m| m.rate.value()).sum();
        let inflated: f64 = self.sums.iter().sum();
        (external, inflated)
    }
}

/// Load ledger over every VNF of a scenario: tracks, per service instance,
/// the set of assigned requests and their Kleinrock-merged loss-inflated
/// arrival rate `Λ_k^f = Σ λ_r / P_r` (Eq. (7) of the paper), supporting
/// incremental assignment and removal under churn.
///
/// # Examples
///
/// ```
/// use nfv_controller::ControllerState;
/// use nfv_workload::ScenarioBuilder;
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let scenario = ScenarioBuilder::new().vnfs(4).requests(20).seed(1).build()?;
/// let mut state = ControllerState::new(&scenario);
/// let request = &scenario.requests()[0];
/// let vnf = request.chain().as_slice()[0];
/// let k = state.least_loaded_up(vnf).unwrap();
/// state.add_request(vnf, k, request.id(), request.arrival_rate(), request.delivery())?;
/// assert_eq!(state.home_of(vnf, request.id()), Some(k));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ControllerState {
    /// Raw `VnfId` index → dense slab slot (`NO_VNF` for unknown ids).
    index: Vec<u32>,
    /// VNF ids in ascending order, parallel to `slabs`.
    ids: Vec<VnfId>,
    /// Dense per-VNF slabs, in `ids` order.
    slabs: Vec<VnfSlab>,
}

impl PartialEq for ControllerState {
    fn eq(&self, other: &Self) -> bool {
        // `index` is derived from `ids`; comparing it again would be
        // redundant.
        self.ids == other.ids && self.slabs == other.slabs
    }
}

impl ControllerState {
    /// Creates an all-idle, all-up ledger matching a scenario's VNF fleet.
    #[must_use]
    pub fn new(scenario: &Scenario) -> Self {
        let mut entries: Vec<(VnfId, VnfSlab)> = scenario
            .vnfs()
            .iter()
            .map(|vnf| {
                let m = vnf.instances() as usize;
                (
                    vnf.id(),
                    VnfSlab {
                        service: vnf.service_rate(),
                        down: vec![0; m],
                        host_down: false,
                        members: vec![Vec::new(); m],
                        sums: vec![0.0; m],
                        ext: vec![0.0; m],
                        agg: Cell::new(None),
                    },
                )
            })
            .collect();
        entries.sort_unstable_by_key(|(id, _)| *id);
        let table = entries.last().map_or(0, |(id, _)| id.as_usize() + 1);
        let mut index = vec![NO_VNF; table];
        let mut ids = Vec::with_capacity(entries.len());
        let mut slabs = Vec::with_capacity(entries.len());
        for (id, slab) in entries {
            index[id.as_usize()] = u32::try_from(ids.len()).expect("fleet fits in u32");
            ids.push(id);
            slabs.push(slab);
        }
        Self { index, ids, slabs }
    }

    fn slot(&self, vnf: VnfId) -> Option<usize> {
        match self.index.get(vnf.as_usize()).copied() {
            Some(slot) if slot != NO_VNF => Some(slot as usize),
            _ => None,
        }
    }

    fn slab(&self, vnf: VnfId) -> Option<&VnfSlab> {
        self.slot(vnf).map(|s| &self.slabs[s])
    }

    fn slab_mut(&mut self, vnf: VnfId) -> Option<&mut VnfSlab> {
        self.slot(vnf).map(|s| &mut self.slabs[s])
    }

    fn slab_or_err(&mut self, vnf: VnfId) -> Result<&mut VnfSlab, ControllerError> {
        self.slab_mut(vnf)
            .ok_or(ControllerError::UnknownVnf { vnf })
    }

    /// Number of instances of a VNF (0 for an unknown VNF).
    #[must_use]
    pub fn instances(&self, vnf: VnfId) -> usize {
        self.slab(vnf).map_or(0, |l| l.sums.len())
    }

    /// The VNF's service rate `μ_f`, if the VNF exists.
    #[must_use]
    pub fn service_rate(&self, vnf: VnfId) -> Option<ServiceRate> {
        self.slab(vnf).map(|l| l.service)
    }

    /// Whether an instance is currently up: its own outage depth is zero
    /// *and* its hosting node (if the controller tracks one) is in
    /// service.
    #[must_use]
    pub fn is_up(&self, vnf: VnfId, instance: usize) -> bool {
        self.slab(vnf).is_some_and(|l| l.instance_up(instance))
    }

    /// Marks an instance up or down — a convenience wrapper over
    /// [`mark_down`](Self::mark_down) / [`mark_up`](Self::mark_up) that
    /// discards the staleness verdict. Out-of-range coordinates are
    /// ignored (a trace may name an instance the scenario doesn't have).
    pub fn set_up(&mut self, vnf: VnfId, instance: usize, up: bool) {
        if up {
            self.mark_up(vnf, instance);
        } else {
            self.mark_down(vnf, instance);
        }
    }

    /// Opens one outage window on an instance (outage depth `+= 1`).
    /// Returns `false` — and changes nothing — when the coordinates don't
    /// name a live instance, so the caller can count the event as stale.
    pub fn mark_down(&mut self, vnf: VnfId, instance: usize) -> bool {
        let Some(depth) = self.slab_mut(vnf).and_then(|l| l.down.get_mut(instance)) else {
            return false;
        };
        *depth += 1;
        true
    }

    /// Closes one outage window on an instance (outage depth `-= 1`).
    /// Returns `false` — and changes nothing — when the coordinates don't
    /// name a live instance *or* the instance has no open outage window
    /// (a stale recovery for an instance that was re-placed away, or a
    /// duplicate `InstanceUp`).
    pub fn mark_up(&mut self, vnf: VnfId, instance: usize) -> bool {
        let Some(depth) = self.slab_mut(vnf).and_then(|l| l.down.get_mut(instance)) else {
            return false;
        };
        if *depth == 0 {
            return false;
        }
        *depth -= 1;
        true
    }

    /// Current outage depth of an instance (0 when up or unknown).
    #[must_use]
    pub fn outage_depth(&self, vnf: VnfId, instance: usize) -> u32 {
        self.slab(vnf)
            .and_then(|l| l.down.get(instance))
            .copied()
            .unwrap_or(0)
    }

    /// Sets or clears whole-VNF unavailability (the hosting node went dark
    /// or returned). Unknown VNFs are ignored.
    pub fn set_host_down(&mut self, vnf: VnfId, down: bool) {
        if let Some(slab) = self.slab_mut(vnf) {
            slab.host_down = down;
        }
    }

    /// Whether the VNF's hosting node is currently marked dark.
    #[must_use]
    pub fn host_down(&self, vnf: VnfId) -> bool {
        self.slab(vnf).is_some_and(|l| l.host_down)
    }

    /// Whether every VNF has at least one up instance — the availability
    /// predicate the resilience experiments track over time.
    #[must_use]
    pub fn fully_available(&self) -> bool {
        self.slabs.iter().all(|l| l.up_instances() > 0)
    }

    /// Merged loss-inflated rate `Λ_k^f` of one instance.
    #[must_use]
    pub fn instance_sum(&self, vnf: VnfId, instance: usize) -> f64 {
        self.slab(vnf)
            .and_then(|l| l.sums.get(instance))
            .copied()
            .unwrap_or(0.0)
    }

    /// All per-instance merged rates of one VNF.
    #[must_use]
    pub fn sums(&self, vnf: VnfId) -> &[f64] {
        self.slab(vnf).map_or(&[], |l| &l.sums)
    }

    /// The *up* instance with the smallest merged rate (lowest index on
    /// ties — the same rule as the offline crate's `OnlineDispatcher`), or
    /// `None` if every instance is down or the VNF is unknown.
    #[must_use]
    pub fn least_loaded_up(&self, vnf: VnfId) -> Option<usize> {
        let slab = self.slab(vnf)?;
        slab.sums
            .iter()
            .enumerate()
            .filter(|&(k, _)| slab.instance_up(k))
            .min_by(|(_, a), (_, b)| a.partial_cmp(b).expect("sums are finite"))
            .map(|(k, _)| k)
    }

    /// Whether an instance is up and would stay strictly stable
    /// (`Λ + λ/P < μ`, Eq. (9)) after admitting the given traffic.
    #[must_use]
    pub fn can_accept(
        &self,
        vnf: VnfId,
        instance: usize,
        rate: ArrivalRate,
        delivery: DeliveryProbability,
    ) -> bool {
        self.can_accept_within(vnf, instance, rate, delivery, 1.0)
    }

    /// Like [`can_accept`](Self::can_accept), but against a tightened
    /// utilization budget: the merged rate after admission must stay
    /// strictly below `headroom · μ`. `headroom = 1.0` is plain strict
    /// stability; the brownout admission mode passes a smaller fraction
    /// while any node is down.
    #[must_use]
    pub fn can_accept_within(
        &self,
        vnf: VnfId,
        instance: usize,
        rate: ArrivalRate,
        delivery: DeliveryProbability,
        headroom: f64,
    ) -> bool {
        let Some(slab) = self.slab(vnf) else {
            return false;
        };
        if !slab.instance_up(instance) {
            return false;
        }
        slab.sums[instance] + rate.inflated_by_loss(delivery).value()
            < headroom * slab.service.value()
    }

    /// Assigns a request to an instance.
    ///
    /// # Errors
    ///
    /// [`ControllerError::UnknownVnf`] / [`ControllerError::NoSuchInstance`]
    /// for bad coordinates, [`ControllerError::DuplicateAssignment`] if the
    /// request already sits on some instance of this VNF.
    pub fn add_request(
        &mut self,
        vnf: VnfId,
        instance: usize,
        id: RequestId,
        rate: ArrivalRate,
        delivery: DeliveryProbability,
    ) -> Result<(), ControllerError> {
        let slab = self.slab_or_err(vnf)?;
        if instance >= slab.members.len() {
            return Err(ControllerError::NoSuchInstance { vnf, instance });
        }
        if slab.find(id).is_some() {
            return Err(ControllerError::DuplicateAssignment { vnf, request: id });
        }
        let pos = slab.members[instance]
            .binary_search_by_key(&id, |m| m.id)
            .expect_err("not a duplicate");
        slab.members[instance].insert(
            pos,
            Member {
                id,
                rate,
                delivery,
                inflated: rate.inflated_by_loss(delivery).value(),
            },
        );
        slab.recompute(instance);
        Ok(())
    }

    /// Removes a request from whatever instance of `vnf` holds it,
    /// returning that instance, or `None` if the request is not assigned.
    pub fn remove_request(&mut self, vnf: VnfId, id: RequestId) -> Option<usize> {
        let slab = self.slab_mut(vnf)?;
        let (instance, pos) = slab.find(id)?;
        slab.members[instance].remove(pos);
        slab.recompute(instance);
        Some(instance)
    }

    /// The instance of `vnf` currently serving `id`.
    #[must_use]
    pub fn home_of(&self, vnf: VnfId, id: RequestId) -> Option<usize> {
        self.slab(vnf).and_then(|l| l.find(id)).map(|(k, _)| k)
    }

    /// Ids of every request assigned to any instance of `vnf`, ascending.
    #[must_use]
    pub fn active_ids(&self, vnf: VnfId) -> Vec<RequestId> {
        let Some(slab) = self.slab(vnf) else {
            return Vec::new();
        };
        let mut ids: Vec<RequestId> = slab.members.iter().flatten().map(|m| m.id).collect();
        ids.sort_unstable();
        ids
    }

    /// Ids of the requests on one instance, ascending.
    #[must_use]
    pub fn members_of(&self, vnf: VnfId, instance: usize) -> Vec<RequestId> {
        self.slab(vnf)
            .and_then(|l| l.members.get(instance))
            .map_or_else(Vec::new, |run| run.iter().map(|m| m.id).collect())
    }

    /// Number of requests on one instance.
    #[must_use]
    pub fn member_count(&self, vnf: VnfId, instance: usize) -> usize {
        self.slab(vnf)
            .and_then(|l| l.members.get(instance))
            .map_or(0, Vec::len)
    }

    /// Reconstructs the queueing-theoretic [`InstanceLoad`] of an instance
    /// by merging its members in id order.
    #[must_use]
    pub fn instance_load(&self, vnf: VnfId, instance: usize) -> Option<InstanceLoad> {
        let slab = self.slab(vnf)?;
        let run = slab.members.get(instance)?;
        let mut load = InstanceLoad::new(slab.service);
        for member in run {
            load.add_request(member.rate, member.delivery);
        }
        Some(load)
    }

    /// Utilization `ρ = Λ/μ` of one instance, or `0.0` for coordinates
    /// the ledger does not track — an unknown VNF *or* an out-of-range
    /// instance index (callers replaying foreign traces can name either).
    /// Use [`try_utilization`](Self::try_utilization) to distinguish bad
    /// coordinates from a genuinely idle instance.
    #[must_use]
    pub fn utilization(&self, vnf: VnfId, instance: usize) -> f64 {
        self.try_utilization(vnf, instance).unwrap_or(0.0)
    }

    /// Checked utilization `ρ = Λ/μ` of one instance.
    ///
    /// # Errors
    ///
    /// [`ControllerError::UnknownVnf`] /
    /// [`ControllerError::NoSuchInstance`] for coordinates the ledger
    /// does not track (formerly an index panic on an out-of-range
    /// instance).
    pub fn try_utilization(&self, vnf: VnfId, instance: usize) -> Result<f64, ControllerError> {
        let slab = self.slab(vnf).ok_or(ControllerError::UnknownVnf { vnf })?;
        let sum = slab
            .sums
            .get(instance)
            .ok_or(ControllerError::NoSuchInstance { vnf, instance })?;
        Ok(sum / slab.service.value())
    }

    /// The highest per-instance utilization `ρ = Λ_k/μ_f` across the whole
    /// fleet — alloc-free, and order-independent because `max` over
    /// non-negative finite ratios does not depend on visit order.
    #[must_use]
    pub fn peak_utilization(&self) -> f64 {
        let mut peak = 0.0_f64;
        for slab in &self.slabs {
            let mu = slab.service.value();
            for &sum in &slab.sums {
                peak = peak.max(sum / mu);
            }
        }
        peak
    }

    /// Iterates over the VNF ids in ascending order.
    pub fn vnf_ids(&self) -> impl Iterator<Item = VnfId> + '_ {
        self.ids.iter().copied()
    }

    /// Number of *up* instances of a VNF (0 for an unknown VNF or one
    /// whose hosting node is dark).
    #[must_use]
    pub fn up_count(&self, vnf: VnfId) -> usize {
        self.slab(vnf).map_or(0, VnfSlab::up_instances)
    }

    /// Total Kleinrock-merged loss-inflated rate `Λ_f = Σ_k Λ_k^f` over
    /// every instance of a VNF. Sums the cached per-instance sums in
    /// index order, so the value is bit-stable across clones.
    #[must_use]
    pub fn total_sum(&self, vnf: VnfId) -> f64 {
        self.slab(vnf).map_or(0.0, |l| l.sums.iter().sum())
    }

    /// Appends a fresh, empty, up instance to a VNF (a scale-out step of
    /// the re-placement phase) and returns its index. Followed by
    /// [`retire_instance`](Self::retire_instance), the ledger is restored
    /// `==` bit-for-bit.
    ///
    /// # Errors
    ///
    /// [`ControllerError::UnknownVnf`] if the VNF does not exist.
    pub fn add_instance(&mut self, vnf: VnfId) -> Result<usize, ControllerError> {
        let slab = self.slab_or_err(vnf)?;
        slab.down.push(0);
        slab.members.push(Vec::new());
        slab.sums.push(0.0);
        slab.ext.push(0.0);
        slab.agg.set(None);
        Ok(slab.sums.len() - 1)
    }

    /// Removes the *last* instance of a VNF (a scale-in step; only the
    /// highest index may retire so surviving indices stay dense and stable)
    /// and returns the removed index. The instance must be empty — drain
    /// its members to siblings first.
    ///
    /// # Errors
    ///
    /// [`ControllerError::UnknownVnf`] for a bad id,
    /// [`ControllerError::LastInstance`] when only one instance remains,
    /// [`ControllerError::InstanceOccupied`] when requests still sit on the
    /// last instance.
    pub fn retire_instance(&mut self, vnf: VnfId) -> Result<usize, ControllerError> {
        let slab = self.slab_or_err(vnf)?;
        if slab.sums.len() <= 1 {
            return Err(ControllerError::LastInstance { vnf });
        }
        let last = slab.sums.len() - 1;
        if !slab.members[last].is_empty() {
            return Err(ControllerError::InstanceOccupied {
                vnf,
                instance: last,
            });
        }
        slab.down.pop();
        slab.members.pop();
        slab.sums.pop();
        slab.ext.pop();
        slab.agg.set(None);
        Ok(last)
    }

    /// Exports the ledger's dynamic state for a checkpoint: one
    /// [`SlabExport`] per VNF in id order, members in `(instance, id)`
    /// order. `inflated` and the cached sums are *not* exported — they
    /// are pure functions of the member runs and [`import`](Self::import)
    /// recomputes them in the canonical id order, so the restored sums
    /// are bit-identical by construction.
    #[must_use]
    pub(crate) fn export(&self) -> Vec<SlabExport> {
        self.ids
            .iter()
            .zip(&self.slabs)
            .map(|(id, slab)| SlabExport {
                vnf: id.index(),
                down: slab.down.clone(),
                host_down: slab.host_down,
                members: slab
                    .members
                    .iter()
                    .map(|run| {
                        run.iter()
                            .map(|m| (m.id.index(), m.rate.value(), m.delivery.value()))
                            .collect()
                    })
                    .collect(),
            })
            .collect()
    }

    /// Overwrites this ledger's dynamic state from an
    /// [`export`](Self::export) taken against the *same scenario*:
    /// instance vectors are resized, member runs re-inserted in the
    /// exported (id) order and every cached sum recomputed, restoring
    /// the ledger bit-for-bit.
    ///
    /// # Errors
    ///
    /// A static `&str` reason when the export's shape does not match
    /// this ledger (wrong VNF count or ids, mismatched run lengths) or a
    /// member carries an out-of-domain rate/probability; the ledger may
    /// be partially overwritten and must be discarded in that case.
    pub(crate) fn import(&mut self, slabs: &[SlabExport]) -> Result<(), &'static str> {
        if slabs.len() != self.ids.len() {
            return Err("snapshot VNF count does not match the scenario");
        }
        for (export, (id, slab)) in slabs.iter().zip(self.ids.iter().zip(&mut self.slabs)) {
            if export.vnf != id.index() {
                return Err("snapshot VNF ids do not match the scenario");
            }
            if export.down.len() != export.members.len() || export.down.is_empty() {
                return Err("snapshot instance vectors are inconsistent");
            }
            let m = export.down.len();
            slab.down.clone_from(&export.down);
            slab.host_down = export.host_down;
            slab.members.clear();
            slab.members.resize(m, Vec::new());
            slab.sums.clear();
            slab.sums.resize(m, 0.0);
            slab.ext.clear();
            slab.ext.resize(m, 0.0);
            for (k, run) in export.members.iter().enumerate() {
                let mut prev: Option<u32> = None;
                for &(raw_id, raw_rate, raw_delivery) in run {
                    if prev.is_some_and(|p| p >= raw_id) {
                        return Err("snapshot member run is not id-sorted");
                    }
                    prev = Some(raw_id);
                    let rate = ArrivalRate::new(raw_rate)
                        .map_err(|_| "snapshot member rate out of domain")?;
                    let delivery = DeliveryProbability::new(raw_delivery)
                        .map_err(|_| "snapshot member delivery out of domain")?;
                    slab.members[k].push(Member {
                        id: RequestId::new(raw_id),
                        rate,
                        delivery,
                        inflated: rate.inflated_by_loss(delivery).value(),
                    });
                }
                slab.recompute(k);
            }
            slab.agg.set(None);
        }
        Ok(())
    }

    /// The predicted average delivery response time *if every VNF's live
    /// load were split evenly across its up instances* — the metric the
    /// re-placement hysteresis gates on. [`predicted_latency`] reflects the
    /// current (possibly lopsided) assignment, under which a freshly added
    /// empty instance changes nothing; the balanced projection credits the
    /// scheduling pass that follows a scale-out within the same tick.
    ///
    /// Per VNF with `m` up instances, total inflated rate `Λ` and total
    /// external rate `λ_ext`: each instance carries `Λ/m`, contributing
    /// `m · ρ/(1−ρ)` expected packets with `ρ = Λ/(m·μ)`; the system-wide
    /// mean is `Σ_f m_f·E[N_f] / Σ_f λ_ext_f` (Little's law over
    /// Eq. (11)), the same aggregation as [`predicted_latency`]. Idle
    /// systems report 0; a VNF with live load and no up instance (or
    /// `ρ ≥ 1`, impossible under strict admission) reports infinity.
    ///
    /// The per-VNF `(λ_ext, Λ)` pair is maintained incrementally: member
    /// mutations mark the owning VNF dirty and the next probe refreshes
    /// only dirty VNFs, in the same canonical `(instance, id)` order as a
    /// full recompute — so repeated hysteresis probes inside a tick cost
    /// `O(changed VNFs)` yet stay bit-identical to
    /// [`balanced_latency_from_scratch`](Self::balanced_latency_from_scratch).
    ///
    /// [`predicted_latency`]: Self::predicted_latency
    #[must_use]
    pub fn balanced_latency(&self) -> f64 {
        self.balanced_latency_with(VnfSlab::balanced_agg)
    }

    /// [`balanced_latency`](Self::balanced_latency) recomputed from the
    /// member runs alone, bypassing the incremental per-VNF aggregate —
    /// the reference oracle the equivalence property tests compare
    /// against.
    #[must_use]
    pub fn balanced_latency_from_scratch(&self) -> f64 {
        self.balanced_latency_with(VnfSlab::balanced_agg_uncached)
    }

    fn balanced_latency_with(&self, agg: impl Fn(&VnfSlab) -> (f64, f64)) -> f64 {
        let mut packets = 0.0;
        let mut total_external = 0.0;
        for slab in &self.slabs {
            let (external, inflated) = agg(slab);
            if external == 0.0 {
                continue;
            }
            let m = slab.up_instances();
            if m == 0 {
                return f64::INFINITY;
            }
            let rho = inflated / (m as f64 * slab.service.value());
            if rho >= 1.0 {
                return f64::INFINITY;
            }
            packets += m as f64 * rho / (1.0 - rho);
            total_external += external;
        }
        if total_external == 0.0 {
            0.0
        } else {
            packets / total_external
        }
    }

    /// The system-wide predicted average delivery response time: every
    /// instance's `W(f,k)` (Eq. (11)) weighted by its external arrival
    /// rate, divided by the total external rate — i.e. the expected
    /// per-hop-summed latency of a random in-flight packet. Idle systems
    /// report 0; an unstable instance (impossible under strict admission)
    /// reports infinity.
    ///
    /// Runs in `O(instances)` off the cached `(Λ_k, λ_ext_k)` pairs; the
    /// arithmetic below replays [`InstanceLoad::mean_delivery_response_time`]
    /// (stability domain check, idle-instance service time, `ρ/(1−ρ)`
    /// divided by the external rate) operation for operation, so the value
    /// is bit-identical to rebuilding every instance's load from its
    /// members.
    #[must_use]
    pub fn predicted_latency(&self) -> f64 {
        let mut weighted = 0.0;
        let mut total_external = 0.0;
        for slab in &self.slabs {
            let mu = slab.service.value();
            for k in 0..slab.sums.len() {
                if slab.members[k].is_empty() {
                    continue;
                }
                let lambda = slab.sums[k];
                // Mm1Queue::new's stability domain: a merged rate outside it
                // makes mean_delivery_response_time error, which the old
                // per-member walk mapped to infinity.
                if !(lambda.is_finite() && lambda >= 0.0 && lambda < mu) {
                    return f64::INFINITY;
                }
                let ext = slab.ext[k];
                let w = if ext == 0.0 {
                    slab.service.mean_service_time()
                } else {
                    let rho = lambda / mu;
                    (rho / (1.0 - rho)) / ext
                };
                weighted += ext * w;
                total_external += ext;
            }
        }
        if total_external == 0.0 {
            0.0
        } else {
            weighted / total_external
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nfv_workload::ScenarioBuilder;

    fn state() -> (Scenario, ControllerState) {
        let scenario = ScenarioBuilder::new()
            .vnfs(4)
            .requests(24)
            .seed(2)
            .build()
            .unwrap();
        let state = ControllerState::new(&scenario);
        (scenario, state)
    }

    #[test]
    fn fresh_ledger_is_idle_and_up() {
        let (scenario, state) = state();
        for vnf in scenario.vnfs() {
            assert_eq!(state.instances(vnf.id()), vnf.instances() as usize);
            for k in 0..state.instances(vnf.id()) {
                assert!(state.is_up(vnf.id(), k));
                assert_eq!(state.instance_sum(vnf.id(), k), 0.0);
                assert_eq!(state.member_count(vnf.id(), k), 0);
            }
        }
    }

    #[test]
    fn add_then_remove_restores_sums_bit_for_bit() {
        let (scenario, mut state) = state();
        // Pre-load a few requests so the removal lands on non-trivial sums.
        for request in &scenario.requests()[..6] {
            for &vnf in request.chain() {
                let k = state.least_loaded_up(vnf).unwrap();
                state
                    .add_request(
                        vnf,
                        k,
                        request.id(),
                        request.arrival_rate(),
                        request.delivery(),
                    )
                    .unwrap();
            }
        }
        let snapshot = state.clone();
        let extra = &scenario.requests()[10];
        for &vnf in extra.chain() {
            let k = state.least_loaded_up(vnf).unwrap();
            state
                .add_request(vnf, k, extra.id(), extra.arrival_rate(), extra.delivery())
                .unwrap();
        }
        assert_ne!(state, snapshot);
        for &vnf in extra.chain() {
            assert!(state.remove_request(vnf, extra.id()).is_some());
        }
        assert_eq!(state, snapshot); // PartialEq compares f64 sums exactly
    }

    #[test]
    fn export_import_restores_the_ledger_bit_for_bit() {
        let (scenario, mut state) = state();
        for request in &scenario.requests()[..12] {
            for &vnf in request.chain() {
                let k = state.least_loaded_up(vnf).unwrap();
                state
                    .add_request(
                        vnf,
                        k,
                        request.id(),
                        request.arrival_rate(),
                        request.delivery(),
                    )
                    .unwrap();
            }
        }
        // Exercise every dynamic dimension: outage depth, host flag, and a
        // scaled-out instance count.
        let first = scenario.vnfs()[0].id();
        let second = scenario.vnfs()[1].id();
        assert!(state.mark_down(first, 0));
        state.set_host_down(second, true);
        state.add_instance(first).unwrap();
        let reference = state.clone();
        let export = state.export();
        let mut restored = ControllerState::new(&scenario);
        restored.import(&export).unwrap();
        assert_eq!(restored, reference);
        assert_eq!(
            restored.balanced_latency().to_bits(),
            reference.balanced_latency().to_bits()
        );
    }

    #[test]
    fn import_rejects_mismatched_shapes() {
        let (scenario, state) = state();
        let mut restored = ControllerState::new(&scenario);
        let mut export = state.export();
        export[0].vnf += 100;
        assert!(restored.import(&export).is_err());
        let mut truncated = state.export();
        truncated.pop();
        assert!(restored.import(&truncated).is_err());
        let mut unsorted = state.export();
        unsorted[0].members[0] = vec![(5, 1.0, 1.0), (3, 1.0, 1.0)];
        assert!(restored.import(&unsorted).is_err());
    }

    #[test]
    fn utilization_of_bad_coordinates_is_typed_not_a_panic() {
        let (scenario, mut state) = state();
        let vnf = scenario.vnfs()[0].id();
        let request = &scenario.requests()[0];
        state
            .add_request(
                vnf,
                0,
                request.id(),
                request.arrival_rate(),
                request.delivery(),
            )
            .unwrap();
        assert!(state.utilization(vnf, 0) > 0.0);
        assert_eq!(state.try_utilization(vnf, 0), Ok(state.utilization(vnf, 0)));
        // Out-of-range instance: formerly `sums[instance]` panicked here.
        let beyond = state.instances(vnf);
        assert_eq!(state.utilization(vnf, beyond), 0.0);
        assert_eq!(
            state.try_utilization(vnf, beyond),
            Err(ControllerError::NoSuchInstance {
                vnf,
                instance: beyond
            })
        );
        let ghost = VnfId::new(9_999);
        assert_eq!(state.utilization(ghost, 0), 0.0);
        assert_eq!(
            state.try_utilization(ghost, 0),
            Err(ControllerError::UnknownVnf { vnf: ghost })
        );
    }

    #[test]
    fn least_loaded_skips_down_instances() {
        let (scenario, mut state) = state();
        let vnf = scenario
            .vnfs()
            .iter()
            .find(|v| v.instances() >= 2)
            .unwrap()
            .id();
        state.set_up(vnf, 0, false);
        assert_ne!(state.least_loaded_up(vnf), Some(0));
        for k in 0..state.instances(vnf) {
            state.set_up(vnf, k, false);
        }
        assert_eq!(state.least_loaded_up(vnf), None);
    }

    #[test]
    fn overlapping_outages_stack_instead_of_resurrecting() {
        // Regression: two overlapping outage windows on the same instance.
        // The first recovery must NOT bring the instance back; only the
        // last one may.
        let (scenario, mut state) = state();
        let vnf = scenario.vnfs()[0].id();
        assert!(state.mark_down(vnf, 0)); // first outage opens
        assert!(state.mark_down(vnf, 0)); // second overlaps
        assert_eq!(state.outage_depth(vnf, 0), 2);
        assert!(state.mark_up(vnf, 0)); // first outage ends
        assert!(!state.is_up(vnf, 0), "still inside the second outage");
        assert!(state.mark_up(vnf, 0)); // second outage ends
        assert!(state.is_up(vnf, 0));
        // A further recovery is stale, not a resurrection.
        assert!(!state.mark_up(vnf, 0));
        assert!(state.is_up(vnf, 0));
    }

    #[test]
    fn stale_coordinates_are_reported_not_applied() {
        let (scenario, mut state) = state();
        let vnf = scenario.vnfs()[0].id();
        let snapshot = state.clone();
        assert!(!state.mark_down(vnf, 999), "unknown instance");
        assert!(!state.mark_down(VnfId::new(999), 0), "unknown VNF");
        assert!(!state.mark_up(vnf, 0), "instance was never down");
        assert_eq!(state, snapshot, "stale events change nothing");
    }

    #[test]
    fn host_down_blanks_the_whole_vnf() {
        let (scenario, mut state) = state();
        let vnf = scenario.vnfs()[0].id();
        assert!(state.fully_available());
        state.set_host_down(vnf, true);
        assert!(state.host_down(vnf));
        assert_eq!(state.up_count(vnf), 0);
        assert_eq!(state.least_loaded_up(vnf), None);
        assert!(!state.is_up(vnf, 0));
        assert!(!state.fully_available());
        // Per-instance outage depth is preserved underneath.
        state.mark_down(vnf, 0);
        state.set_host_down(vnf, false);
        assert!(!state.is_up(vnf, 0), "its own outage window is still open");
        assert!(state.is_up(vnf, 1));
        assert!(state.fully_available());
    }

    #[test]
    fn can_accept_within_tightens_the_budget() {
        let (scenario, state) = state();
        let vnf = &scenario.vnfs()[0];
        let mu = vnf.service_rate().value();
        let id = vnf.id();
        let near = ArrivalRate::new(mu * 0.9).unwrap();
        assert!(state.can_accept(id, 0, near, DeliveryProbability::PERFECT));
        assert!(!state.can_accept_within(id, 0, near, DeliveryProbability::PERFECT, 0.85));
        let small = ArrivalRate::new(mu * 0.5).unwrap();
        assert!(state.can_accept_within(id, 0, small, DeliveryProbability::PERFECT, 0.85));
    }

    #[test]
    fn can_accept_enforces_strict_stability_and_up() {
        let (scenario, mut state) = state();
        let vnf = &scenario.vnfs()[0];
        let mu = vnf.service_rate().value();
        let id = vnf.id();
        let exact = ArrivalRate::new(mu).unwrap();
        let below = ArrivalRate::new(mu * 0.999).unwrap();
        assert!(!state.can_accept(id, 0, exact, DeliveryProbability::PERFECT));
        assert!(state.can_accept(id, 0, below, DeliveryProbability::PERFECT));
        state.set_up(id, 0, false);
        assert!(!state.can_accept(id, 0, below, DeliveryProbability::PERFECT));
    }

    #[test]
    fn duplicate_and_bad_coordinates_error() {
        let (scenario, mut state) = state();
        let request = &scenario.requests()[0];
        let vnf = request.chain().as_slice()[0];
        state
            .add_request(
                vnf,
                0,
                request.id(),
                request.arrival_rate(),
                request.delivery(),
            )
            .unwrap();
        assert!(matches!(
            state.add_request(
                vnf,
                0,
                request.id(),
                request.arrival_rate(),
                request.delivery()
            ),
            Err(ControllerError::DuplicateAssignment { .. })
        ));
        assert!(matches!(
            state.add_request(
                vnf,
                999,
                RequestId::new(9999),
                request.arrival_rate(),
                request.delivery()
            ),
            Err(ControllerError::NoSuchInstance { .. })
        ));
        assert!(matches!(
            state.add_request(
                VnfId::new(999),
                0,
                RequestId::new(9999),
                request.arrival_rate(),
                request.delivery()
            ),
            Err(ControllerError::UnknownVnf { .. })
        ));
        assert_eq!(state.remove_request(vnf, RequestId::new(4242)), None);
    }

    #[test]
    fn instance_load_matches_sums() {
        let (scenario, mut state) = state();
        for request in &scenario.requests()[..8] {
            for &vnf in request.chain() {
                let k = state.least_loaded_up(vnf).unwrap();
                state
                    .add_request(
                        vnf,
                        k,
                        request.id(),
                        request.arrival_rate(),
                        request.delivery(),
                    )
                    .unwrap();
            }
        }
        for vnf in scenario.vnfs() {
            for k in 0..state.instances(vnf.id()) {
                let load = state.instance_load(vnf.id(), k).unwrap();
                assert!(
                    (load.equivalent_arrival_rate() - state.instance_sum(vnf.id(), k)).abs()
                        < 1e-12
                );
                assert_eq!(load.request_count(), state.member_count(vnf.id(), k));
            }
        }
    }

    #[test]
    fn add_then_retire_instance_restores_ledger_bit_for_bit() {
        let (scenario, mut state) = state();
        for request in &scenario.requests()[..6] {
            for &vnf in request.chain() {
                let k = state.least_loaded_up(vnf).unwrap();
                state
                    .add_request(
                        vnf,
                        k,
                        request.id(),
                        request.arrival_rate(),
                        request.delivery(),
                    )
                    .unwrap();
            }
        }
        let snapshot = state.clone();
        let vnf = scenario.vnfs()[0].id();
        let m = state.instances(vnf);
        let k = state.add_instance(vnf).unwrap();
        assert_eq!(k, m);
        assert!(state.is_up(vnf, k));
        assert_eq!(state.instance_sum(vnf, k), 0.0);
        assert_ne!(state, snapshot);
        assert_eq!(state.retire_instance(vnf).unwrap(), m);
        assert_eq!(state, snapshot);
    }

    #[test]
    fn retire_refuses_occupied_and_last_instances() {
        let (scenario, mut state) = state();
        let vnf = scenario.vnfs()[0].id();
        let request = scenario
            .requests()
            .iter()
            .find(|r| r.uses(vnf))
            .expect("some request uses vnf 0");
        let last = state.instances(vnf) - 1;
        state
            .add_request(
                vnf,
                last,
                request.id(),
                request.arrival_rate(),
                request.delivery(),
            )
            .unwrap();
        assert!(matches!(
            state.retire_instance(vnf),
            Err(ControllerError::InstanceOccupied { .. })
        ));
        state.remove_request(vnf, request.id());
        // Retire down to one instance, then refuse the last.
        while state.instances(vnf) > 1 {
            state.retire_instance(vnf).unwrap();
        }
        assert!(matches!(
            state.retire_instance(vnf),
            Err(ControllerError::LastInstance { .. })
        ));
        assert!(matches!(
            state.retire_instance(VnfId::new(999)),
            Err(ControllerError::UnknownVnf { .. })
        ));
    }

    #[test]
    fn balanced_latency_drops_when_an_instance_is_added() {
        let (scenario, mut state) = state();
        assert_eq!(state.balanced_latency(), 0.0);
        for request in scenario.requests() {
            for &vnf in request.chain() {
                let k = state.least_loaded_up(vnf).unwrap();
                state
                    .add_request(
                        vnf,
                        k,
                        request.id(),
                        request.arrival_rate(),
                        request.delivery(),
                    )
                    .unwrap();
            }
        }
        let before = state.balanced_latency();
        assert!(before > 0.0 && before.is_finite());
        // predicted_latency ignores an empty instance; the balanced
        // projection must credit it.
        let vnf = scenario.vnfs()[0].id();
        let predicted_before = state.predicted_latency();
        state.add_instance(vnf).unwrap();
        assert_eq!(state.predicted_latency(), predicted_before);
        assert!(
            state.balanced_latency() < before,
            "spreading load over one more instance must lower the balanced mean"
        );
        // A loaded VNF with no up instance projects unbounded latency.
        for k in 0..state.instances(vnf) {
            state.set_up(vnf, k, false);
        }
        assert_eq!(state.balanced_latency(), f64::INFINITY);
    }

    #[test]
    fn predicted_latency_is_zero_when_idle_and_positive_under_load() {
        let (scenario, mut state) = state();
        assert_eq!(state.predicted_latency(), 0.0);
        let request = &scenario.requests()[0];
        for &vnf in request.chain() {
            state
                .add_request(
                    vnf,
                    0,
                    request.id(),
                    request.arrival_rate(),
                    request.delivery(),
                )
                .unwrap();
        }
        assert!(state.predicted_latency() > 0.0);
    }

    #[test]
    fn cached_balanced_latency_matches_from_scratch_recompute() {
        let (scenario, mut state) = state();
        for request in &scenario.requests()[..12] {
            for &vnf in request.chain() {
                let k = state.least_loaded_up(vnf).unwrap();
                state
                    .add_request(
                        vnf,
                        k,
                        request.id(),
                        request.arrival_rate(),
                        request.delivery(),
                    )
                    .unwrap();
            }
        }
        let vnf = scenario.vnfs()[0].id();
        // Warm the cache, mutate, probe again: the incremental aggregate
        // must track the oracle bit for bit through every step.
        assert_eq!(
            state.balanced_latency().to_bits(),
            state.balanced_latency_from_scratch().to_bits()
        );
        state.mark_down(vnf, 0);
        assert_eq!(
            state.balanced_latency().to_bits(),
            state.balanced_latency_from_scratch().to_bits()
        );
        state.mark_up(vnf, 0);
        let extra = &scenario.requests()[20];
        for &v in extra.chain() {
            let k = state.least_loaded_up(v).unwrap();
            state
                .add_request(v, k, extra.id(), extra.arrival_rate(), extra.delivery())
                .unwrap();
            assert_eq!(
                state.balanced_latency().to_bits(),
                state.balanced_latency_from_scratch().to_bits()
            );
        }
    }
}
