//! Error type for the joint pipeline.

use std::error::Error;
use std::fmt;

use nfv_controller::ControllerError;
use nfv_placement::PlacementError;
use nfv_queueing::QueueingError;
use nfv_scheduling::SchedulingError;
use nfv_topology::TopologyError;
use nfv_workload::WorkloadError;

/// Error returned by the joint optimization pipeline; wraps the error of
/// whichever phase failed.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CoreError {
    /// Workload generation or validation failed.
    Workload(WorkloadError),
    /// Topology construction or a latency query failed.
    Topology(TopologyError),
    /// Phase one (placement) failed.
    Placement(PlacementError),
    /// Phase two (scheduling) failed.
    Scheduling(SchedulingError),
    /// Objective evaluation hit an unstable instance.
    Queueing(QueueingError),
    /// Online control-plane construction or ledger mutation failed.
    Controller(ControllerError),
    /// The scenario and topology disagree (e.g. a request chain references
    /// a VNF with no schedule).
    Inconsistent {
        /// Description of the mismatch.
        reason: &'static str,
    },
    /// A parallel experiment trial panicked; the pool contained the panic
    /// and reports the lowest-index failing trial.
    TrialPanicked {
        /// Input index of the panicking trial.
        index: usize,
        /// The panic message.
        message: String,
    },
}

impl From<nfv_parallel::TaskPanic> for CoreError {
    fn from(panic: nfv_parallel::TaskPanic) -> Self {
        Self::TrialPanicked {
            index: panic.index,
            message: panic.message,
        }
    }
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Workload(e) => write!(f, "workload: {e}"),
            Self::Topology(e) => write!(f, "topology: {e}"),
            Self::Placement(e) => write!(f, "placement: {e}"),
            Self::Scheduling(e) => write!(f, "scheduling: {e}"),
            Self::Queueing(e) => write!(f, "queueing: {e}"),
            Self::Controller(e) => write!(f, "controller: {e}"),
            Self::Inconsistent { reason } => write!(f, "inconsistent inputs: {reason}"),
            Self::TrialPanicked { index, message } => {
                write!(f, "trial {index} panicked: {message}")
            }
        }
    }
}

impl Error for CoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            Self::Workload(e) => Some(e),
            Self::Topology(e) => Some(e),
            Self::Placement(e) => Some(e),
            Self::Scheduling(e) => Some(e),
            Self::Queueing(e) => Some(e),
            Self::Controller(e) => Some(e),
            Self::Inconsistent { .. } | Self::TrialPanicked { .. } => None,
        }
    }
}

impl From<WorkloadError> for CoreError {
    fn from(e: WorkloadError) -> Self {
        Self::Workload(e)
    }
}

impl From<TopologyError> for CoreError {
    fn from(e: TopologyError) -> Self {
        Self::Topology(e)
    }
}

impl From<PlacementError> for CoreError {
    fn from(e: PlacementError) -> Self {
        Self::Placement(e)
    }
}

impl From<SchedulingError> for CoreError {
    fn from(e: SchedulingError) -> Self {
        Self::Scheduling(e)
    }
}

impl From<QueueingError> for CoreError {
    fn from(e: QueueingError) -> Self {
        Self::Queueing(e)
    }
}

impl From<ControllerError> for CoreError {
    fn from(e: ControllerError) -> Self {
        Self::Controller(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wraps_and_chains_sources() {
        let err: CoreError = SchedulingError::NoRequests.into();
        assert!(err.source().is_some());
        assert!(err.to_string().contains("scheduling"));
    }

    #[test]
    fn inconsistent_has_no_source() {
        let err = CoreError::Inconsistent { reason: "x" };
        assert!(err.source().is_none());
    }
}
