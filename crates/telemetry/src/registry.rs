//! A deterministic metrics registry: named counters, gauges, and
//! histograms with a byte-stable dump.
//!
//! Everything is keyed by a fully rendered metric name (optionally with
//! Prometheus-style labels, see [`Registry::labeled`]) and stored in
//! `BTreeMap`s, so iteration — and therefore [`Registry::to_text`],
//! [`Registry::to_prometheus`](crate::Registry) and
//! [`Registry::to_json`](crate::Registry) — is sorted by key and
//! byte-identical for identical contents. The fleet fills one registry
//! directly during its serial shard-id-order finish fold (worker slices
//! built elsewhere compose via [`Registry::merge`]); since every input
//! (counter values, histogram samples) derives from the deterministic
//! virtual-time run, the dump is byte-identical at 1, 2, or 8 worker
//! threads.

use std::collections::BTreeMap;

use nfv_metrics::Histogram;

use crate::export::escape_label;

/// Why a registry merge was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegistryError {
    /// Two histograms under the same key have different bounds or bin
    /// counts; the target registry is left untouched.
    HistogramShapeMismatch {
        /// The conflicting metric key.
        key: String,
    },
}

impl std::fmt::Display for RegistryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::HistogramShapeMismatch { key } => {
                write!(f, "histogram shape mismatch under key {key:?}")
            }
        }
    }
}

impl std::error::Error for RegistryError {}

/// A deterministic metrics registry (see the module docs).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Registry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

impl Registry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Renders `name{label="value"}` with the value escaped for the
    /// Prometheus exposition format (`\\`, `\"`, `\n`).
    #[must_use]
    pub fn labeled(name: &str, label: &str, value: &str) -> String {
        format!("{name}{{{label}=\"{}\"}}", escape_label(value))
    }

    /// Adds `delta` to a counter, creating it at zero first.
    pub fn counter_add(&mut self, key: impl Into<String>, delta: u64) {
        *self.counters.entry(key.into()).or_insert(0) += delta;
    }

    /// Sets a gauge to `value`.
    pub fn gauge_set(&mut self, key: impl Into<String>, value: f64) {
        self.gauges.insert(key.into(), value);
    }

    /// Records `value` into a histogram, creating it with the given
    /// shape first. Returns `false` (recording nothing) when the shape
    /// is invalid or conflicts with the existing histogram's shape.
    pub fn histogram_record(
        &mut self,
        key: impl Into<String>,
        lo: f64,
        hi: f64,
        bins: usize,
        value: f64,
    ) -> bool {
        let key = key.into();
        if let Some(existing) = self.histograms.get_mut(&key) {
            let Some(probe) = Histogram::new(lo, hi, bins) else {
                return false;
            };
            if !shape_matches(existing, &probe) {
                return false;
            }
            existing.push(value);
            return true;
        }
        let Some(mut fresh) = Histogram::new(lo, hi, bins) else {
            return false;
        };
        fresh.push(value);
        self.histograms.insert(key, fresh);
        true
    }

    /// Inserts (or replaces) a pre-built histogram under `key`.
    pub fn histogram_insert(&mut self, key: impl Into<String>, histogram: Histogram) {
        self.histograms.insert(key.into(), histogram);
    }

    /// A counter's current value.
    #[must_use]
    pub fn counter(&self, key: &str) -> Option<u64> {
        self.counters.get(key).copied()
    }

    /// A gauge's current value.
    #[must_use]
    pub fn gauge(&self, key: &str) -> Option<f64> {
        self.gauges.get(key).copied()
    }

    /// A histogram by key.
    #[must_use]
    pub fn histogram(&self, key: &str) -> Option<&Histogram> {
        self.histograms.get(key)
    }

    /// The counter entries, key order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// The gauge entries, key order.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, f64)> {
        self.gauges.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// The histogram entries, key order.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.histograms.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Total number of registered metrics.
    #[must_use]
    pub fn len(&self) -> usize {
        self.counters.len() + self.gauges.len() + self.histograms.len()
    }

    /// Whether the registry holds no metrics.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Merges another registry into this one: counters add, gauges take
    /// the other registry's value (last writer wins — the fleet merges
    /// in shard-id order, so "last" is deterministic), histograms merge
    /// bin-wise.
    ///
    /// # Errors
    ///
    /// [`RegistryError::HistogramShapeMismatch`] when a shared histogram
    /// key has conflicting bounds or bin counts. The conflicting
    /// histogram is left untouched; entries merged before the conflict
    /// remain merged.
    pub fn merge(&mut self, other: &Registry) -> Result<(), RegistryError> {
        for (key, delta) in &other.counters {
            *self.counters.entry(key.clone()).or_insert(0) += delta;
        }
        for (key, value) in &other.gauges {
            self.gauges.insert(key.clone(), *value);
        }
        for (key, histogram) in &other.histograms {
            match self.histograms.get_mut(key) {
                None => {
                    self.histograms.insert(key.clone(), histogram.clone());
                }
                Some(existing) => {
                    if !existing.merge(histogram) {
                        return Err(RegistryError::HistogramShapeMismatch { key: key.clone() });
                    }
                }
            }
        }
        Ok(())
    }

    /// A byte-stable plain-text dump: one line per metric, key order
    /// within each section, floats in shortest-round-trip formatting.
    /// Pinned byte-identical across thread counts by the invariance
    /// tests.
    #[must_use]
    pub fn to_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "# registry: {} counters, {} gauges, {} histograms",
            self.counters.len(),
            self.gauges.len(),
            self.histograms.len()
        );
        for (key, value) in &self.counters {
            let _ = writeln!(out, "counter {key} {value}");
        }
        for (key, value) in &self.gauges {
            let _ = writeln!(out, "gauge {key} {value}");
        }
        for (key, histogram) in &self.histograms {
            let (lo, _) = histogram.bin_range(0);
            let (_, hi) = histogram.bin_range(histogram.bins() - 1);
            let bins: Vec<String> = (0..histogram.bins())
                .map(|i| histogram.bin_count(i).to_string())
                .collect();
            let _ = writeln!(
                out,
                "histogram {key} lo={lo} hi={hi} underflow={} overflow={} bins=[{}]",
                histogram.underflow(),
                histogram.overflow(),
                bins.join(",")
            );
        }
        out
    }
}

/// Whether two histograms have the same bounds and bin count (the
/// precondition of [`Histogram::merge`]).
fn shape_matches(a: &Histogram, b: &Histogram) -> bool {
    let mut probe = a.clone();
    probe.merge(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_gauges_overwrite() {
        let mut reg = Registry::new();
        reg.counter_add("admitted_total", 3);
        reg.counter_add("admitted_total", 4);
        reg.gauge_set("active", 5.0);
        reg.gauge_set("active", 2.5);
        assert_eq!(reg.counter("admitted_total"), Some(7));
        assert_eq!(reg.gauge("active"), Some(2.5));
        assert_eq!(reg.len(), 2);
    }

    #[test]
    fn labeled_escapes_values() {
        assert_eq!(
            Registry::labeled("latency", "tenant", "a\"b\\c"),
            "latency{tenant=\"a\\\"b\\\\c\"}"
        );
    }

    #[test]
    fn histogram_record_creates_then_guards_shape() {
        let mut reg = Registry::new();
        assert!(reg.histogram_record("lat", 0.0, 1.0, 4, 0.3));
        assert!(reg.histogram_record("lat", 0.0, 1.0, 4, 0.8));
        assert!(!reg.histogram_record("lat", 0.0, 2.0, 4, 0.3), "shape");
        assert!(!reg.histogram_record("bad", 1.0, 0.0, 4, 0.3), "invalid");
        assert_eq!(reg.histogram("lat").unwrap().count(), 2);
    }

    #[test]
    fn merge_adds_counters_and_merges_histograms() {
        let mut a = Registry::new();
        a.counter_add("c", 1);
        a.histogram_record("h", 0.0, 1.0, 2, 0.1);
        let mut b = Registry::new();
        b.counter_add("c", 2);
        b.counter_add("only_b", 5);
        b.histogram_record("h", 0.0, 1.0, 2, 0.9);
        b.gauge_set("g", 1.5);
        a.merge(&b).unwrap();
        assert_eq!(a.counter("c"), Some(3));
        assert_eq!(a.counter("only_b"), Some(5));
        assert_eq!(a.gauge("g"), Some(1.5));
        assert_eq!(a.histogram("h").unwrap().count(), 2);
    }

    #[test]
    fn merge_refuses_shape_mismatches() {
        let mut a = Registry::new();
        a.histogram_record("h", 0.0, 1.0, 2, 0.1);
        let mut b = Registry::new();
        b.histogram_record("h", 0.0, 1.0, 4, 0.1);
        let err = a.merge(&b).unwrap_err();
        assert_eq!(
            err,
            RegistryError::HistogramShapeMismatch { key: "h".into() }
        );
        assert_eq!(a.histogram("h").unwrap().bins(), 2, "untouched");
    }

    #[test]
    fn to_text_is_sorted_and_stable() {
        let build = |order_flip: bool| {
            let mut reg = Registry::new();
            let keys = if order_flip { ["b", "a"] } else { ["a", "b"] };
            for key in keys {
                reg.counter_add(key, 1);
            }
            reg.gauge_set("g", 0.25);
            reg.histogram_record("h", 0.0, 1.0, 2, 0.75);
            reg.to_text()
        };
        let text = build(false);
        assert_eq!(text, build(true), "insertion order must not matter");
        assert!(text.starts_with("# registry: 2 counters, 1 gauges, 1 histograms\n"));
        assert!(text.contains("counter a 1\ncounter b 1\n"));
        assert!(text.contains("gauge g 0.25"));
        assert!(text.contains("histogram h lo=0 hi=1 underflow=0 overflow=0 bins=[0,1]"));
    }
}
