//! Error type for model construction.

use std::error::Error;
use std::fmt;

use crate::VnfId;

/// Error returned when a model object cannot be constructed from the given
/// inputs.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ModelError {
    /// A scalar quantity was out of its valid domain (negative rate, NaN
    /// capacity, probability outside `(0, 1]`, …).
    InvalidQuantity {
        /// Human-readable name of the quantity (e.g. `"arrival rate"`).
        quantity: &'static str,
        /// The offending value.
        value: f64,
    },
    /// A VNF was declared with zero service instances; the paper requires
    /// `M_f ≥ 1`.
    NoInstances {
        /// The offending VNF.
        vnf: VnfId,
    },
    /// A service chain was empty; every request must traverse at least one
    /// VNF.
    EmptyChain,
    /// A service chain listed the same VNF more than once. The paper treats
    /// replicas of a VNF as distinct VNFs (Eq. (2)), so a chain visits each
    /// VNF id at most once.
    DuplicateVnfInChain {
        /// The VNF that appears multiple times.
        vnf: VnfId,
    },
    /// A required builder field was missing.
    MissingField {
        /// Name of the missing field.
        field: &'static str,
    },
}

impl ModelError {
    pub(crate) fn invalid_quantity(quantity: &'static str, value: f64) -> Self {
        Self::InvalidQuantity { quantity, value }
    }
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::InvalidQuantity { quantity, value } => {
                write!(f, "invalid {quantity}: {value}")
            }
            Self::NoInstances { vnf } => {
                write!(f, "{vnf} declared with zero service instances")
            }
            Self::EmptyChain => write!(f, "service chain contains no VNFs"),
            Self::DuplicateVnfInChain { vnf } => {
                write!(f, "{vnf} appears more than once in a service chain")
            }
            Self::MissingField { field } => write!(f, "missing required field `{field}`"),
        }
    }
}

impl Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_without_trailing_punctuation() {
        let msgs = [
            ModelError::invalid_quantity("arrival rate", -1.0).to_string(),
            ModelError::NoInstances { vnf: VnfId::new(1) }.to_string(),
            ModelError::EmptyChain.to_string(),
            ModelError::DuplicateVnfInChain { vnf: VnfId::new(2) }.to_string(),
            ModelError::MissingField { field: "demand" }.to_string(),
        ];
        for msg in msgs {
            assert!(!msg.is_empty());
            assert!(!msg.ends_with('.'));
            assert!(msg.chars().next().unwrap().is_lowercase() || msg.starts_with("vnf"));
        }
    }

    #[test]
    fn error_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ModelError>();
    }
}
