//! Criterion benchmarks for the replay engine: streamed trace generation
//! alone, then the exact per-event ingestion path against the batched
//! path over the same streamed trace.
//!
//! The smoke point (~8k events) keeps criterion iterations fast; the
//! headline million-event figure lives in `figures bench` /
//! `BENCH_pipeline.json`, where one replay per measurement is enough.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use nfv_controller::{Controller, ControllerConfig};
use nfv_core::experiments::replay::{setup, ReplayPoint};

fn bench_replay(c: &mut Criterion) {
    let point = ReplayPoint::smoke();
    let (scenario, builder) = setup(&point, 42).expect("valid fixture");

    let mut group = c.benchmark_group("replay");
    group.bench_function("generate-stream", |b| {
        b.iter(|| black_box(builder.stream(&scenario).expect("valid fixture").count()));
    });
    group.bench_function("ingest-per-event", |b| {
        b.iter(|| {
            let mut controller = Controller::new(&scenario, ControllerConfig::online_only());
            let stream = builder.stream(&scenario).expect("valid fixture");
            black_box(controller.run_stream(stream, point.horizon))
        });
    });
    group.bench_function("ingest-batched-ticks", |b| {
        b.iter(|| {
            let mut controller = Controller::new(&scenario, ControllerConfig::online_only());
            let stream = builder.stream(&scenario).expect("valid fixture");
            black_box(controller.run_stream_batched(stream, point.horizon))
        });
    });
    group.finish();
}

criterion_group!(benches, bench_replay);
criterion_main!(benches);
