//! Load accounting for a single service instance.

use std::fmt;

use nfv_model::{ArrivalRate, DeliveryProbability, ServiceRate, Utilization};
use serde::{Deserialize, Serialize};

use crate::{Mm1Queue, QueueingError};

/// The traffic load offered to one service instance of a VNF.
///
/// Implements the Kleinrock flow-merging approximation: the flows of all
/// requests assigned to the instance merge into one equivalent Poisson
/// stream whose rate is the sum of the *loss-inflated* per-request rates,
/// `Λ_k^f = Σ_r (λ_r / P_r) · z_{r,k}^f` (Eq. (7)).
///
/// The paper's response-latency objective distinguishes two closely related
/// quantities, both provided here:
///
/// * [`mean_visit_response_time`](InstanceLoad::mean_visit_response_time) —
///   per *visit* latency `1/(μ − Λ)` of the underlying M/M/1 station;
/// * [`mean_delivery_response_time`](InstanceLoad::mean_delivery_response_time)
///   — per successfully *delivered* packet (Eqs. (11)–(12)), which counts the
///   expected `1/P` retransmission rounds: `W(f,k) = E[N]/Σ λ_r z_{r,k}`.
///
/// # Examples
///
/// ```
/// use nfv_model::{ArrivalRate, DeliveryProbability, ServiceRate};
/// use nfv_queueing::InstanceLoad;
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut load = InstanceLoad::new(ServiceRate::new(100.0)?);
/// load.add_request(ArrivalRate::new(49.0)?, DeliveryProbability::new(0.98)?);
/// assert!((load.equivalent_arrival_rate() - 50.0).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InstanceLoad {
    service: ServiceRate,
    /// Sum of loss-inflated rates `Σ λ_r / P_r` (the paper's `Λ_k^f`).
    equivalent_arrival: f64,
    /// Sum of external rates `Σ λ_r` (the denominator of Eq. (11)).
    external_arrival: f64,
    requests: usize,
}

impl InstanceLoad {
    /// Creates an idle instance with service rate `μ_f`.
    #[must_use]
    pub fn new(service: ServiceRate) -> Self {
        Self {
            service,
            equivalent_arrival: 0.0,
            external_arrival: 0.0,
            requests: 0,
        }
    }

    /// The instance's service rate `μ_f`.
    #[must_use]
    pub fn service_rate(&self) -> ServiceRate {
        self.service
    }

    /// Merges one request's flow into the instance (Kleinrock
    /// approximation): the equivalent rate grows by `λ/P`.
    pub fn add_request(&mut self, rate: ArrivalRate, delivery: DeliveryProbability) {
        self.equivalent_arrival += rate.inflated_by_loss(delivery).value();
        self.external_arrival += rate.value();
        self.requests += 1;
    }

    /// Whether adding a request with the given traffic would keep the
    /// instance strictly stable (`Λ < μ`). Used by admission control.
    #[must_use]
    pub fn can_accept(&self, rate: ArrivalRate, delivery: DeliveryProbability) -> bool {
        self.equivalent_arrival + rate.inflated_by_loss(delivery).value() < self.service.value()
    }

    /// Number of requests merged into this instance.
    #[must_use]
    pub fn request_count(&self) -> usize {
        self.requests
    }

    /// Equivalent total arrival rate `Λ_k^f = Σ λ_r / P_r` (Eq. (7)), pps.
    #[must_use]
    pub fn equivalent_arrival_rate(&self) -> f64 {
        self.equivalent_arrival
    }

    /// Sum of external (pre-retransmission) rates `Σ λ_r`, pps.
    #[must_use]
    pub fn external_arrival_rate(&self) -> f64 {
        self.external_arrival
    }

    /// Utilization `ρ = Λ/μ` (Eq. (9)); may reach or exceed 1 for an
    /// oversubscribed instance.
    #[must_use]
    pub fn utilization(&self) -> Utilization {
        Utilization::from_ratio(self.equivalent_arrival / self.service.value())
    }

    /// Whether the instance is strictly stable (`ρ < 1`).
    #[must_use]
    pub fn is_stable(&self) -> bool {
        self.equivalent_arrival < self.service.value()
    }

    /// The underlying M/M/1 station.
    ///
    /// # Errors
    ///
    /// Returns [`QueueingError::Unstable`] if the merged load reaches the
    /// service rate.
    pub fn queue(&self) -> Result<Mm1Queue, QueueingError> {
        Mm1Queue::new(self.equivalent_arrival, self.service)
    }

    /// Mean per-visit response time `1/(μ − Λ)` seconds (§IV.B).
    ///
    /// # Errors
    ///
    /// Returns [`QueueingError::Unstable`] if the instance is not stable.
    pub fn mean_visit_response_time(&self) -> Result<f64, QueueingError> {
        Ok(self.queue()?.mean_response_time())
    }

    /// Mean response time per successfully delivered packet,
    /// `W(f,k) = E[N] / Σ λ_r z_{r,k}` (Eq. (11)); equals
    /// `1/(P μ − Σ λ_r)` when every request shares the same `P` (Eq. (12)).
    ///
    /// An idle instance has no delivered packets; its `W` is defined as the
    /// bare service time `1/μ` (the latency the first arriving packet would
    /// see), which keeps per-instance averages over `M_f` instances
    /// well-defined as in Eq. (15).
    ///
    /// # Errors
    ///
    /// Returns [`QueueingError::Unstable`] if the instance is not stable.
    pub fn mean_delivery_response_time(&self) -> Result<f64, QueueingError> {
        let queue = self.queue()?;
        if self.external_arrival == 0.0 {
            return Ok(self.service.mean_service_time());
        }
        Ok(queue.mean_packets_in_system() / self.external_arrival)
    }
}

impl fmt::Display for InstanceLoad {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "instance load ({} requests, Λ={:.3} pps, μ={}, ρ={})",
            self.requests,
            self.equivalent_arrival,
            self.service,
            self.utilization()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn mu(v: f64) -> ServiceRate {
        ServiceRate::new(v).unwrap()
    }

    fn lam(v: f64) -> ArrivalRate {
        ArrivalRate::new(v).unwrap()
    }

    fn p(v: f64) -> DeliveryProbability {
        DeliveryProbability::new(v).unwrap()
    }

    #[test]
    fn merging_sums_inflated_rates() {
        let mut load = InstanceLoad::new(mu(1000.0));
        load.add_request(lam(49.0), p(0.98)); // 50 effective
        load.add_request(lam(30.0), p(1.0)); // 30 effective
        assert!((load.equivalent_arrival_rate() - 80.0).abs() < 1e-9);
        assert!((load.external_arrival_rate() - 79.0).abs() < 1e-9);
        assert_eq!(load.request_count(), 2);
    }

    #[test]
    fn stability_boundary() {
        let mut load = InstanceLoad::new(mu(100.0));
        load.add_request(lam(99.9), p(1.0));
        assert!(load.is_stable());
        assert!(!load.can_accept(lam(0.2), p(1.0)));
        load.add_request(lam(0.2), p(1.0));
        assert!(!load.is_stable());
        assert!(load.queue().is_err());
        assert!(load.mean_visit_response_time().is_err());
        assert!(load.mean_delivery_response_time().is_err());
    }

    #[test]
    fn eq12_form_matches_eq11_form_for_uniform_p() {
        // W = 1/(Pμ − Σλ) when all requests share P.
        let (mu_v, p_v) = (200.0, 0.98);
        let mut load = InstanceLoad::new(mu(mu_v));
        for rate in [10.0, 20.0, 15.0] {
            load.add_request(lam(rate), p(p_v));
        }
        let sum_lambda = 45.0;
        let expected = 1.0 / (p_v * mu_v - sum_lambda);
        let w = load.mean_delivery_response_time().unwrap();
        assert!((w - expected).abs() < 1e-12, "w={w}, expected={expected}");
    }

    #[test]
    fn delivery_time_exceeds_visit_time_under_loss() {
        let mut load = InstanceLoad::new(mu(100.0));
        load.add_request(lam(50.0), p(0.9));
        let visit = load.mean_visit_response_time().unwrap();
        let delivery = load.mean_delivery_response_time().unwrap();
        assert!(delivery > visit);
        // Exactly the 1/P retransmission factor.
        assert!((delivery - visit / 0.9).abs() < 1e-12);
    }

    #[test]
    fn perfect_delivery_makes_both_times_equal() {
        let mut load = InstanceLoad::new(mu(100.0));
        load.add_request(lam(40.0), p(1.0));
        let visit = load.mean_visit_response_time().unwrap();
        let delivery = load.mean_delivery_response_time().unwrap();
        assert!((visit - delivery).abs() < 1e-12);
    }

    #[test]
    fn idle_instance_reports_bare_service_time() {
        let load = InstanceLoad::new(mu(250.0));
        assert_eq!(load.mean_delivery_response_time().unwrap(), 1.0 / 250.0);
        assert_eq!(load.utilization(), Utilization::ZERO);
        assert!(load.is_stable());
    }

    proptest! {
        #[test]
        fn can_accept_is_consistent_with_add(
            existing in 0.0..80.0f64,
            incoming in 0.1..40.0f64,
            pv in 0.5..1.0f64,
        ) {
            let mut load = InstanceLoad::new(mu(100.0));
            if existing > 0.0 {
                load.add_request(lam(existing), p(1.0));
            }
            let accept = load.can_accept(lam(incoming), p(pv));
            load.add_request(lam(incoming), p(pv));
            prop_assert_eq!(accept, load.is_stable());
        }

        #[test]
        fn response_time_monotone_in_added_load(
            base in 1.0..50.0f64,
            extra in 0.1..40.0f64,
        ) {
            let mut light = InstanceLoad::new(mu(100.0));
            light.add_request(lam(base), p(1.0));
            let mut heavy = light.clone();
            heavy.add_request(lam(extra), p(1.0));
            prop_assume!(heavy.is_stable());
            let wl = light.mean_delivery_response_time().unwrap();
            let wh = heavy.mean_delivery_response_time().unwrap();
            prop_assert!(wh >= wl - 1e-12);
        }
    }
}
