//! Bounded SPSC-style event channels between trace streams and shards.
//!
//! One channel sits between each tenant's (lazy) trace stream and the
//! shard that owns the tenant: the fleet's serial pump phase is the
//! single producer, the owning shard's drain phase is the single
//! consumer, and the two phases alternate under the epoch loop — so the
//! buffer needs capacity bookkeeping, not atomics. The bound is the
//! backpressure mechanism: a full channel stalls its tenant's stream
//! until the next drain round, and because pump order and drain order
//! are fixed, the stall pattern (and therefore every downstream
//! decision) is a pure function of the seed.

use std::collections::VecDeque;

use nfv_workload::churn::TimedEvent;

/// A bounded FIFO of timed events for one tenant.
#[derive(Debug)]
pub struct EventChannel {
    buf: VecDeque<TimedEvent>,
    capacity: usize,
}

impl EventChannel {
    /// Creates a channel holding at most `capacity` events (min 1).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Self {
            buf: VecDeque::with_capacity(capacity.max(1)),
            capacity: capacity.max(1),
        }
    }

    /// Enqueues an event, or hands it back when the channel is full (the
    /// producer parks it as its stream head and retries next round).
    ///
    /// # Errors
    ///
    /// The rejected event itself, unmodified.
    pub fn try_push(&mut self, event: TimedEvent) -> Result<(), TimedEvent> {
        if self.buf.len() >= self.capacity {
            return Err(event);
        }
        self.buf.push_back(event);
        Ok(())
    }

    /// Dequeues the oldest event.
    pub fn pop(&mut self) -> Option<TimedEvent> {
        self.buf.pop_front()
    }

    /// Number of buffered events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the channel holds no events.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Whether the channel is at capacity.
    #[must_use]
    pub fn is_full(&self) -> bool {
        self.buf.len() >= self.capacity
    }

    /// The configured bound.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nfv_workload::churn::ChurnEvent;

    fn tick(time: f64) -> TimedEvent {
        TimedEvent::new(time, ChurnEvent::ReoptimizeTick)
    }

    #[test]
    fn bounded_fifo_preserves_order_and_backpressures() {
        let mut ch = EventChannel::new(2);
        assert!(ch.is_empty());
        assert!(ch.try_push(tick(1.0)).is_ok());
        assert!(ch.try_push(tick(2.0)).is_ok());
        assert!(ch.is_full());
        // The rejected event comes back intact.
        let bounced = ch.try_push(tick(3.0)).unwrap_err();
        assert_eq!(bounced.time(), 3.0);
        assert_eq!(ch.pop().unwrap().time(), 1.0);
        assert!(ch.try_push(bounced).is_ok());
        assert_eq!(ch.pop().unwrap().time(), 2.0);
        assert_eq!(ch.pop().unwrap().time(), 3.0);
        assert!(ch.pop().is_none());
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let mut ch = EventChannel::new(0);
        assert_eq!(ch.capacity(), 1);
        assert!(ch.try_push(tick(0.0)).is_ok());
        assert!(ch.is_full());
    }
}
