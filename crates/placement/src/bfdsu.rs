//! BFDSU: the paper's priority-driven weighted placement algorithm.

use nfv_model::{NodeId, VnfId};
use rand::{Rng, RngCore};
use serde::{Deserialize, Serialize};

use crate::placer::run_with_restarts;
use crate::support::{vnfs_by_decreasing_demand, Remaining};
use crate::{Placement, PlacementError, PlacementOutcome, PlacementProblem, Placer};

/// Result of an incremental re-placement ([`Bfdsu::place_delta`]): the new
/// feasible placement, the VNFs whose node changed relative to the prior
/// assignment, and the restart count.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeltaPlacement {
    placement: Placement,
    moved: Vec<VnfId>,
    iterations: u64,
}

impl DeltaPlacement {
    /// The new feasible placement.
    #[must_use]
    pub fn placement(&self) -> &Placement {
        &self.placement
    }

    /// VNFs assigned to a different node than in the prior placement, in
    /// ascending id order. Every VNF *not* listed kept its node.
    #[must_use]
    pub fn moved(&self) -> &[VnfId] {
        &self.moved
    }

    /// Number of full delta passes until the first feasible solution.
    #[must_use]
    pub fn iterations(&self) -> u64 {
        self.iterations
    }

    /// Consumes the outcome, returning the placement.
    #[must_use]
    pub fn into_placement(self) -> Placement {
        self.placement
    }
}

/// **B**est **F**it **D**ecreasing using **S**mallest **U**sed nodes with
/// the largest probability — Algorithm 1 of the paper.
///
/// VNFs are placed from the most resource-demanding to the least. For each
/// VNF the algorithm first looks only at nodes already *in service*
/// (`Used_list`) that can host it; only if none fits does it consider spare
/// nodes, which keeps the number of nodes in service minimal. Among the
/// candidates it does not deterministically pick the tightest fit: each
/// candidate `v` is drawn with weight
///
/// ```text
/// P_rst(v) = 1 / (1 + RST(v) − D_f^sum)
/// ```
///
/// so the node with the smallest remaining capacity is *most likely* —
/// best-fit in expectation — while the randomization lets restarts escape
/// packings where a deterministic best fit would dead-end. When some VNF
/// cannot be hosted anywhere, the algorithm goes back to `Begin` (a full
/// restart); the number of executions until the first feasible solution is
/// reported as [`PlacementOutcome::iterations`].
///
/// Note that Algorithm 1 is *incomplete*: the used-node priority is a hard
/// rule, so packings that require opening a spare node while a used node
/// still fits are unreachable under any randomization — on extremely tight
/// instances (fill ≳ 95%) BFDSU can exhaust its restarts even though the
/// exact oracle proves the instance feasible. This is faithful to the
/// published pseudocode; the deterministic [`crate::Bfd`] shares the
/// limitation, while [`crate::Ffd`] variants without used-priority do not.
///
/// Theorem 2 of the paper bounds the *asymptotic* worst case at twice the
/// optimal node count (`lim sup SUM/OPT = 2` as the node set grows). On
/// very small instances the weighted-random choice can exceed `2·OPT` by
/// an additive node — the algorithm never moves an already-placed VNF, so
/// an unlucky tight-fit draw may strand capacity; the workspace-level
/// property tests verify `SUM ≤ 2·OPT + 1` against the exact oracle.
///
/// # Examples
///
/// ```
/// use nfv_placement::{Bfdsu, Placer, PlacementProblem};
/// use nfv_model::{Capacity, ComputeNode, Demand, NodeId, ServiceRate, Vnf, VnfId, VnfKind};
/// use rand::SeedableRng;
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// # let nodes = vec![ComputeNode::new(NodeId::new(0), Capacity::new(100.0)?)];
/// # let vnfs = vec![Vnf::builder(VnfId::new(0), VnfKind::Nat)
/// #     .demand_per_instance(Demand::new(30.0)?)
/// #     .service_rate(ServiceRate::new(100.0)?)
/// #     .build()?];
/// let problem = PlacementProblem::new(nodes, vnfs)?;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let outcome = Bfdsu::new().place(&problem, &mut rng)?;
/// assert!(outcome.iterations() >= 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bfdsu {
    max_attempts: u64,
}

impl Bfdsu {
    /// Creates BFDSU with the default restart budget (1000 attempts).
    #[must_use]
    pub fn new() -> Self {
        Self { max_attempts: 1000 }
    }

    /// Sets the restart budget (the cap on "go back to Begin" loops).
    #[must_use]
    pub fn with_max_attempts(mut self, max_attempts: u64) -> Self {
        self.max_attempts = max_attempts.max(1);
        self
    }

    /// One full pass of Algorithm 1; `None` if some VNF could not be hosted
    /// (triggering a restart in [`Placer::place`]).
    ///
    /// The used and spare candidate lists are maintained incrementally in
    /// ascending `(RST, id)` order across VNF steps — only the one node
    /// whose capacity changed is repositioned per step — instead of
    /// re-scanning and re-sorting every node for every VNF. Because `fits`
    /// is monotone in the remaining capacity, the feasible candidates are
    /// exactly a suffix of each sorted list, found by binary search. The
    /// candidate order, the weight sums and the single RNG draw per step
    /// are identical to the direct rescan formulation, so placements are
    /// bit-for-bit unchanged (pinned by the `matches_rescan_reference`
    /// test).
    fn attempt(&self, problem: &PlacementProblem, rng: &mut dyn RngCore) -> Option<Placement> {
        let order = vnfs_by_decreasing_demand(problem);
        let mut remaining = Remaining::new(problem);
        let mut assignment = vec![NodeId::new(0); problem.vnfs().len()];

        // Candidate pools sorted by ascending (RST, id) — Algorithm 1's
        // `Prob_bound` order. Spare nodes keep their full capacity until
        // first use, so `spare` only ever shrinks; `used` grows by one
        // node per first use and has one node repositioned per step.
        let mut used: Vec<NodeId> = Vec::with_capacity(problem.nodes().len());
        let mut spare: Vec<NodeId> = problem.nodes().iter().map(|n| n.id()).collect();
        spare.sort_by(|&a, &b| cmp_by_remaining(&remaining, a, b));

        for vnf in order {
            let demand = problem.demand_of(vnf).value();
            if !place_one(
                vnf,
                demand,
                &mut used,
                &mut spare,
                &mut remaining,
                &mut assignment,
                rng,
            ) {
                return None; // go back to Begin
            }
        }
        Some(Placement::new(problem, assignment).expect("capacity tracked during construction"))
    }

    /// Incremental BFDSU: re-places `problem` starting from an existing
    /// assignment instead of empty nodes. The problem may differ from the
    /// one `prior` was built for — typically the per-VNF instance counts
    /// (and hence total demands) have changed — but it must cover the same
    /// VNF ids and node set.
    ///
    /// Each pass has two phases. **Keep**: VNFs are scanned in decreasing
    /// new-demand order and keep their prior node whenever their new total
    /// demand still fits alongside the other keepers. **Re-place**: the
    /// misfits are placed by the ordinary Algorithm 1 rule (used-node
    /// priority, tight-fit-weighted random pick), where nodes claimed by
    /// keepers count as used. Only phase two consumes randomness, so a
    /// restart re-draws the misfit placement while keepers stay put.
    /// [`DeltaPlacement::moved`] lists exactly the VNFs whose node changed
    /// — the instances a controller must migrate.
    ///
    /// # Errors
    ///
    /// * [`PlacementError::InvalidProblem`] if `prior` covers a different
    ///   VNF set than `problem`,
    /// * [`PlacementError::UnknownNode`] if `prior` references a node the
    ///   problem does not have,
    /// * [`PlacementError::Infeasible`] / [`PlacementError::AttemptsExhausted`]
    ///   exactly as [`Placer::place`].
    pub fn place_delta(
        &self,
        problem: &PlacementProblem,
        prior: &Placement,
        rng: &mut dyn RngCore,
    ) -> Result<DeltaPlacement, PlacementError> {
        let prior_assignment = prior.assignment();
        if prior_assignment.len() != problem.vnfs().len() {
            return Err(PlacementError::InvalidProblem {
                reason: "prior placement covers a different VNF set",
            });
        }
        if let Some(&node) = prior_assignment
            .iter()
            .find(|n| n.as_usize() >= problem.nodes().len())
        {
            return Err(PlacementError::UnknownNode { node });
        }
        let outcome = run_with_restarts(problem, self.max_attempts, || {
            self.delta_attempt(problem, prior_assignment, rng)
        })?;
        let iterations = outcome.iterations();
        let placement = outcome.into_placement();
        let moved: Vec<VnfId> = problem
            .vnfs()
            .iter()
            .map(nfv_model::Vnf::id)
            .filter(|&vnf| placement.node_of(vnf) != prior_assignment[vnf.as_usize()])
            .collect();
        Ok(DeltaPlacement {
            placement,
            moved,
            iterations,
        })
    }

    /// One keep-then-re-place pass of the incremental algorithm.
    fn delta_attempt(
        &self,
        problem: &PlacementProblem,
        prior_assignment: &[NodeId],
        rng: &mut dyn RngCore,
    ) -> Option<Placement> {
        let order = vnfs_by_decreasing_demand(problem);
        let mut remaining = Remaining::new(problem);
        let mut assignment = vec![NodeId::new(0); problem.vnfs().len()];
        let mut in_service = vec![false; problem.nodes().len()];

        // Phase one: keepers claim their prior node in decreasing-demand
        // order, so large (possibly grown) VNFs hold their slot before
        // smaller co-tenants consume it.
        let mut misfits: Vec<VnfId> = Vec::new();
        for &vnf in &order {
            let demand = problem.demand_of(vnf).value();
            let node = prior_assignment[vnf.as_usize()];
            if remaining.fits(node, demand) {
                assignment[vnf.as_usize()] = node;
                remaining.consume(node, demand);
                in_service[node.as_usize()] = true;
            } else {
                misfits.push(vnf);
            }
        }

        // Phase two: standard BFDSU over the misfits (already in
        // decreasing-demand order), with the keepers' nodes as `Used_list`.
        let mut used: Vec<NodeId> = problem
            .nodes()
            .iter()
            .map(|n| n.id())
            .filter(|&n| in_service[n.as_usize()])
            .collect();
        used.sort_by(|&a, &b| cmp_by_remaining(&remaining, a, b));
        let mut spare: Vec<NodeId> = problem
            .nodes()
            .iter()
            .map(|n| n.id())
            .filter(|&n| !in_service[n.as_usize()])
            .collect();
        spare.sort_by(|&a, &b| cmp_by_remaining(&remaining, a, b));
        for vnf in misfits {
            let demand = problem.demand_of(vnf).value();
            if !place_one(
                vnf,
                demand,
                &mut used,
                &mut spare,
                &mut remaining,
                &mut assignment,
                rng,
            ) {
                return None; // go back to Begin (re-draws the misfits)
            }
        }
        Some(Placement::new(problem, assignment).expect("capacity tracked during construction"))
    }
}

impl Default for Bfdsu {
    fn default() -> Self {
        Self::new()
    }
}

impl Placer for Bfdsu {
    fn name(&self) -> &'static str {
        "bfdsu"
    }

    fn place(
        &self,
        problem: &PlacementProblem,
        rng: &mut dyn RngCore,
    ) -> Result<PlacementOutcome, PlacementError> {
        run_with_restarts(problem, self.max_attempts, || self.attempt(problem, rng))
    }
}

/// One BFDSU placement step: pick a node for `vnf` (used-node priority,
/// tight-fit-weighted random draw), consume its capacity and reposition it
/// in the used pool. Returns `false` when no node fits (restart). Exactly
/// the loop body of Algorithm 1, shared by the from-scratch and the
/// incremental pass; consumes at most one uniform variate.
fn place_one(
    vnf: VnfId,
    demand: f64,
    used: &mut Vec<NodeId>,
    spare: &mut Vec<NodeId>,
    remaining: &mut Remaining,
    assignment: &mut [NodeId],
    rng: &mut dyn RngCore,
) -> bool {
    // Candidates: used nodes first; spare nodes only as a fallback.
    let start_used = fitting_start(used, remaining, demand);
    let (pool, start) = if start_used < used.len() {
        (used as &mut Vec<NodeId>, start_used)
    } else {
        let start_spare = fitting_start(spare, remaining, demand);
        if start_spare >= spare.len() {
            return false;
        }
        (spare as &mut Vec<NodeId>, start_spare)
    };
    let picked = start + weighted_pick(&pool[start..], remaining, demand, rng);
    let chosen = pool.remove(picked);
    assignment[vnf.as_usize()] = chosen;
    remaining.consume(chosen, demand);
    let pos = used
        .binary_search_by(|&n| cmp_by_remaining(remaining, n, chosen))
        .expect_err("ids are unique, so the key cannot collide");
    used.insert(pos, chosen);
    true
}

/// Total order on nodes by ascending `(RST, id)` — the key both candidate
/// pools are kept sorted by.
fn cmp_by_remaining(remaining: &Remaining, a: NodeId, b: NodeId) -> std::cmp::Ordering {
    remaining
        .of(a)
        .partial_cmp(&remaining.of(b))
        .expect("capacities are finite")
        .then(a.cmp(&b))
}

/// First index of `pool` (sorted ascending by `(RST, id)`) whose node can
/// host `demand`. Because `Remaining::fits` is monotone in the remaining
/// capacity, the feasible candidates are exactly `pool[start..]`.
fn fitting_start(pool: &[NodeId], remaining: &Remaining, demand: f64) -> usize {
    pool.partition_point(|&n| !remaining.fits(n, demand))
}

/// Samples a candidate with the paper's weights
/// `P_rst(v) = 1/(1 + RST(v) − D_f^sum)`: the tighter the fit, the larger
/// the weight. `candidates` must already be sorted by ascending `(RST,
/// id)`, matching Algorithm 1's `Prob_bound` construction; the index of
/// the drawn candidate is returned. Exactly one uniform variate is
/// consumed, and weights are accumulated in candidate order, so the draw
/// is identical to the historical rescan-and-sort formulation.
fn weighted_pick(
    candidates: &[NodeId],
    remaining: &Remaining,
    demand: f64,
    rng: &mut dyn RngCore,
) -> usize {
    debug_assert!(!candidates.is_empty());
    debug_assert!(candidates
        .windows(2)
        .all(|w| cmp_by_remaining(remaining, w[0], w[1]).is_lt()));
    let weight = |v: NodeId| 1.0 / (1.0 + (remaining.of(v) - demand).max(0.0));
    // Two passes instead of a per-step weight buffer; both accumulate in
    // candidate order, so the sums match the buffered formulation bit for
    // bit.
    let prob_sum: f64 = candidates.iter().map(|&v| weight(v)).sum();
    let xi = rng.gen_range(0.0..prob_sum);
    let mut bound = 0.0;
    for (index, &v) in candidates.iter().enumerate() {
        bound += weight(v);
        if xi < bound {
            return index;
        }
    }
    candidates.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use nfv_model::{Capacity, ComputeNode, Demand, ServiceRate, Vnf, VnfId, VnfKind};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn problem(caps: &[f64], demands: &[f64]) -> PlacementProblem {
        let nodes = caps
            .iter()
            .enumerate()
            .map(|(i, &c)| ComputeNode::new(NodeId::new(i as u32), Capacity::new(c).unwrap()))
            .collect();
        let vnfs = demands
            .iter()
            .enumerate()
            .map(|(i, &d)| {
                Vnf::builder(VnfId::new(i as u32), VnfKind::Custom(i as u16))
                    .demand_per_instance(Demand::new(d).unwrap())
                    .service_rate(ServiceRate::new(1.0).unwrap())
                    .build()
                    .unwrap()
            })
            .collect();
        PlacementProblem::new(nodes, vnfs).unwrap()
    }

    #[test]
    fn packs_everything_on_one_node_when_possible() {
        let p = problem(&[100.0, 100.0, 100.0], &[30.0, 30.0, 30.0]);
        let mut rng = StdRng::seed_from_u64(0);
        let outcome = Bfdsu::new().place(&p, &mut rng).unwrap();
        assert_eq!(outcome.placement().nodes_in_service(), 1);
    }

    #[test]
    fn prefers_used_nodes_over_spares() {
        // Node capacities 100 and 1000: after placing the 90-demand VNF the
        // next VNF (10) still fits on the used node and must go there, even
        // though the spare has far more room.
        let p = problem(&[100.0, 1000.0], &[90.0, 10.0]);
        for seed in 0..20 {
            let mut rng = StdRng::seed_from_u64(seed);
            let outcome = Bfdsu::new().place(&p, &mut rng).unwrap();
            assert_eq!(outcome.placement().nodes_in_service(), 1, "seed {seed}");
        }
    }

    #[test]
    fn finds_tight_packing_via_restarts() {
        // Two nodes of 100 and VNFs 60, 60, 40, 40: the only 2-node packing
        // pairs each 60 with a 40. Weighted randomness may first try 60+60
        // (infeasible leftover) and must restart.
        let p = problem(&[100.0, 100.0], &[60.0, 60.0, 40.0, 40.0]);
        let mut rng = StdRng::seed_from_u64(7);
        let outcome = Bfdsu::new().place(&p, &mut rng).unwrap();
        assert_eq!(outcome.placement().nodes_in_service(), 2);
    }

    #[test]
    fn reports_infeasible_total_demand() {
        let p = problem(&[10.0], &[20.0]);
        let mut rng = StdRng::seed_from_u64(0);
        assert!(matches!(
            Bfdsu::new().place(&p, &mut rng).unwrap_err(),
            PlacementError::Infeasible { .. }
        ));
    }

    #[test]
    fn attempt_budget_is_respected() {
        // Feasible only via an exact partition that random choice may miss;
        // with a budget of 1 the algorithm may legitimately fail, but must
        // never exceed the budget.
        let p = problem(&[100.0, 100.0], &[60.0, 60.0, 40.0, 40.0]);
        let mut rng = StdRng::seed_from_u64(1);
        match Bfdsu::new().with_max_attempts(1).place(&p, &mut rng) {
            Ok(outcome) => assert_eq!(outcome.iterations(), 1),
            Err(PlacementError::AttemptsExhausted { attempts }) => assert_eq!(attempts, 1),
            Err(other) => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn weighted_pick_prefers_tight_fit() {
        let p = problem(&[100.0, 11.0], &[10.0]);
        let remaining = Remaining::new(&p);
        // Sorted by ascending (RST, id): the tight node 1 comes first.
        let candidates = [NodeId::new(1), NodeId::new(0)];
        let mut rng = StdRng::seed_from_u64(42);
        let picks_tight = (0..2000)
            .filter(|_| weighted_pick(&candidates, &remaining, 10.0, &mut rng) == 0)
            .count();
        // Weight of node1 = 1/2, node0 = 1/91 -> node1 expected ~97.8%.
        assert!(
            picks_tight > 1800,
            "tight node picked only {picks_tight}/2000"
        );
    }

    /// The historical formulation of one Algorithm 1 pass: re-scan every
    /// node and re-sort the candidates for every VNF. Kept verbatim as the
    /// reference the incremental `attempt` must match draw for draw.
    fn reference_attempt(problem: &PlacementProblem, rng: &mut StdRng) -> Option<Placement> {
        let order = vnfs_by_decreasing_demand(problem);
        let mut remaining = Remaining::new(problem);
        let mut in_service = vec![false; problem.nodes().len()];
        let mut assignment = vec![NodeId::new(0); problem.vnfs().len()];

        for vnf in order {
            let demand = problem.demand_of(vnf).value();
            let used: Vec<NodeId> = problem
                .nodes()
                .iter()
                .map(|n| n.id())
                .filter(|&n| in_service[n.as_usize()] && remaining.fits(n, demand))
                .collect();
            let mut candidates = if used.is_empty() {
                problem
                    .nodes()
                    .iter()
                    .map(|n| n.id())
                    .filter(|&n| !in_service[n.as_usize()] && remaining.fits(n, demand))
                    .collect()
            } else {
                used
            };
            if candidates.is_empty() {
                return None;
            }
            candidates.sort_by(|&a, &b| cmp_by_remaining(&remaining, a, b));
            let weights: Vec<f64> = candidates
                .iter()
                .map(|&v| 1.0 / (1.0 + (remaining.of(v) - demand).max(0.0)))
                .collect();
            let prob_sum: f64 = weights.iter().sum();
            let xi = rand::Rng::gen_range(rng, 0.0..prob_sum);
            let mut bound = 0.0;
            let mut chosen = *candidates.last().unwrap();
            for (node, w) in candidates.iter().zip(&weights) {
                bound += w;
                if xi < bound {
                    chosen = *node;
                    break;
                }
            }
            assignment[vnf.as_usize()] = chosen;
            remaining.consume(chosen, demand);
            in_service[chosen.as_usize()] = true;
        }
        Some(Placement::new(problem, assignment).expect("capacity tracked during construction"))
    }

    #[test]
    fn matches_rescan_reference() {
        // Random instances across fills and sizes: the incremental pools
        // must reproduce the reference's placements (and restart counts)
        // bit for bit, because both consume one uniform draw per VNF step
        // over identically ordered and weighted candidates.
        let mut gen = StdRng::seed_from_u64(0xB5D5);
        for trial in 0..40 {
            let nodes = 2 + (rand::Rng::gen_range(&mut gen, 0..8)) as usize;
            let vnfs = 3 + (rand::Rng::gen_range(&mut gen, 0..10)) as usize;
            let caps: Vec<f64> = (0..nodes)
                .map(|_| rand::Rng::gen_range(&mut gen, 50.0..150.0))
                .collect();
            let demands: Vec<f64> = (0..vnfs)
                .map(|_| rand::Rng::gen_range(&mut gen, 5.0..60.0))
                .collect();
            let p = problem(&caps, &demands);
            for seed in 0..3 {
                let incremental = Bfdsu::new()
                    .with_max_attempts(50)
                    .place(&p, &mut StdRng::seed_from_u64(seed));
                let mut reference_rng = StdRng::seed_from_u64(seed);
                let reference =
                    run_with_restarts(&p, 50, || reference_attempt(&p, &mut reference_rng));
                assert_eq!(
                    incremental, reference,
                    "trial {trial} seed {seed} diverged from the reference"
                );
            }
        }
    }

    /// A zero-capacity node (administratively offline) is never selected:
    /// `Remaining::fits` rejects every positive demand on it.
    #[test]
    fn zero_capacity_node_is_never_used() {
        let p = problem(&[0.0, 100.0, 100.0], &[30.0, 30.0, 30.0]);
        for seed in 0..10 {
            let mut rng = StdRng::seed_from_u64(seed);
            let outcome = Bfdsu::new().place(&p, &mut rng).unwrap();
            assert!(
                outcome.placement().vnfs_on(NodeId::new(0)).count() == 0,
                "seed {seed} placed a VNF on the offline node"
            );
        }
    }

    #[test]
    fn delta_keeps_everything_when_nothing_changed() {
        let p = problem(&[100.0, 100.0, 50.0], &[40.0, 40.0, 30.0, 20.0]);
        let prior = Bfdsu::new()
            .place(&p, &mut StdRng::seed_from_u64(3))
            .unwrap()
            .into_placement();
        let delta = Bfdsu::new()
            .place_delta(&p, &prior, &mut StdRng::seed_from_u64(9))
            .unwrap();
        assert_eq!(delta.moved(), &[] as &[VnfId]);
        assert_eq!(delta.placement(), &prior);
        assert_eq!(delta.iterations(), 1);
    }

    #[test]
    fn delta_moves_only_the_grown_misfit() {
        // Prior: vnf0 (60) and vnf1 (30) packed on node 0 (cap 100).
        // vnf1 grows to 50: it no longer fits beside vnf0 and must move to
        // the spare node; vnf0 keeps its slot.
        let before = problem(&[100.0, 100.0], &[60.0, 30.0]);
        let prior = Placement::new(&before, vec![NodeId::new(0), NodeId::new(0)]).unwrap();
        let after = problem(&[100.0, 100.0], &[60.0, 50.0]);
        let delta = Bfdsu::new()
            .place_delta(&after, &prior, &mut StdRng::seed_from_u64(1))
            .unwrap();
        assert_eq!(delta.moved(), &[VnfId::new(1)]);
        assert_eq!(delta.placement().node_of(VnfId::new(0)), NodeId::new(0));
        assert_eq!(delta.placement().node_of(VnfId::new(1)), NodeId::new(1));
    }

    #[test]
    fn delta_restarts_reach_tight_repackings() {
        // After growth the only feasible packing pairs each 60 with a 40;
        // the prior packing (60+60 / 40+40 at smaller sizes) must be
        // partially abandoned. The keep phase is deterministic, so
        // feasibility comes from re-drawing the misfits across restarts.
        let before = problem(&[100.0, 100.0], &[60.0, 60.0, 20.0, 20.0]);
        let prior = Placement::new(
            &before,
            vec![
                NodeId::new(0),
                NodeId::new(1),
                NodeId::new(0),
                NodeId::new(1),
            ],
        )
        .unwrap();
        let after = problem(&[100.0, 100.0], &[60.0, 60.0, 40.0, 40.0]);
        let delta = Bfdsu::new()
            .place_delta(&after, &prior, &mut StdRng::seed_from_u64(5))
            .unwrap();
        // Feasible end state, and the keepers (the two 60s) stayed put.
        assert_eq!(delta.placement().node_of(VnfId::new(0)), NodeId::new(0));
        assert_eq!(delta.placement().node_of(VnfId::new(1)), NodeId::new(1));
        assert!(delta.moved().len() <= 2);
    }

    #[test]
    fn delta_rejects_mismatched_prior() {
        let p = problem(&[100.0, 100.0], &[40.0, 40.0]);
        let other = problem(&[100.0], &[40.0]);
        let prior = Placement::new(&other, vec![NodeId::new(0)]).unwrap();
        assert!(matches!(
            Bfdsu::new()
                .place_delta(&p, &prior, &mut StdRng::seed_from_u64(0))
                .unwrap_err(),
            PlacementError::InvalidProblem { .. }
        ));
    }

    #[test]
    fn delta_is_deterministic_given_seed() {
        let before = problem(&[100.0, 100.0, 80.0], &[50.0, 40.0, 30.0, 20.0]);
        let prior = Bfdsu::new()
            .place(&before, &mut StdRng::seed_from_u64(2))
            .unwrap()
            .into_placement();
        let after = problem(&[100.0, 100.0, 80.0], &[70.0, 40.0, 30.0, 20.0]);
        let a = Bfdsu::new().place_delta(&after, &prior, &mut StdRng::seed_from_u64(8));
        let b = Bfdsu::new().place_delta(&after, &prior, &mut StdRng::seed_from_u64(8));
        assert_eq!(a, b);
    }

    #[test]
    fn placement_is_deterministic_given_seed() {
        let p = problem(&[100.0, 100.0, 50.0], &[40.0, 40.0, 30.0, 20.0]);
        let a = Bfdsu::new()
            .place(&p, &mut StdRng::seed_from_u64(3))
            .unwrap();
        let b = Bfdsu::new()
            .place(&p, &mut StdRng::seed_from_u64(3))
            .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn name_is_stable() {
        assert_eq!(Bfdsu::new().name(), "bfdsu");
    }
}
