//! Offline stand-in for the `rand` crate.
//!
//! The build environment for this workspace has no access to crates.io, so
//! this vendored shim supplies exactly the API subset the workspace uses:
//! [`RngCore`], [`Rng`], [`SeedableRng`], [`rngs::StdRng`] and
//! [`seq::SliceRandom`]. The generator behind [`rngs::StdRng`] is
//! xoshiro256++ seeded through SplitMix64 — deterministic per seed, which is
//! the only property the experiments rely on (the workspace never promises
//! cross-crate-version stream compatibility with upstream `rand`).

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// The core of a random number generator: a source of uniformly distributed
/// words. Object safe, so algorithms can take `&mut dyn RngCore`.
pub trait RngCore {
    /// Returns the next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with uniformly distributed bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator that can be instantiated from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// The seed byte array type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Creates a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, expanding it with SplitMix64 the
    /// way upstream `rand` does.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let word = splitmix64(&mut state).to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&word[..n]);
        }
        Self::from_seed(seed)
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A value drawable uniformly from the generator's native stream (the
/// shim's equivalent of sampling the `Standard` distribution).
pub trait StandardSample: Sized {
    /// Draws one value.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits -> [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for u64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// A range usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! float_range_impls {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = <$t as StandardSample>::standard_sample(rng);
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample empty range");
                let u = <$t as StandardSample>::standard_sample(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}
float_range_impls!(f32, f64);

macro_rules! int_range_impls {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as $u).wrapping_sub(self.start as $u) as u64;
                self.start.wrapping_add(uniform_u64_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as $u).wrapping_sub(lo as $u) as u64;
                if span == u64::MAX {
                    return lo.wrapping_add(rng.next_u64() as $t);
                }
                lo.wrapping_add(uniform_u64_below(rng, span + 1) as $t)
            }
        }
    )*};
}
int_range_impls!(
    u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => usize,
    i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize
);

/// Uniform draw from `0..n` (`n > 0`) by rejection sampling, so small
/// ranges carry no modulo bias.
fn uniform_u64_below<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    if n.is_power_of_two() {
        return rng.next_u64() & (n - 1);
    }
    let zone = u64::MAX - (u64::MAX - n + 1) % n;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % n;
        }
    }
}

/// Convenience methods layered over every [`RngCore`], mirroring the
/// upstream `Rng` extension trait.
pub trait Rng: RngCore {
    /// Draws a value of type `T` from the generator's native stream
    /// (`f64`/`f32` uniform in `[0, 1)`, full-width integers, fair bools).
    fn gen<T: StandardSample>(&mut self) -> T {
        T::standard_sample(self)
    }

    /// Draws a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ p ≤ 1`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability must lie in [0, 1]");
        self.gen::<f64>() < p
    }

    /// Returns `true` with probability `numerator / denominator`.
    fn gen_ratio(&mut self, numerator: u32, denominator: u32) -> bool {
        assert!(denominator > 0 && numerator <= denominator);
        uniform_u64_below(self, u64::from(denominator)) < u64::from(numerator)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{splitmix64, RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    ///
    /// Not the same stream as upstream `rand::rngs::StdRng` (which is
    /// ChaCha12); the workspace only relies on per-seed determinism.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let word = self.next_u64().to_le_bytes();
                let n = chunk.len();
                chunk.copy_from_slice(&word[..n]);
            }
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(bytes);
            }
            if s == [0, 0, 0, 0] {
                // xoshiro must not start from the all-zero state.
                let mut state = 0x853C_49E6_748F_EA9B;
                for word in &mut s {
                    *word = splitmix64(&mut state);
                }
            }
            Self { s }
        }
    }
}

pub mod seq {
    //! Sequence-related extensions.

    use super::{Rng, RngCore};

    /// Slice shuffling and random selection.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Partial Fisher–Yates: uniformly chooses `amount` elements,
        /// returning `(chosen, rest)`.
        fn partial_shuffle<R: RngCore + ?Sized>(
            &mut self,
            rng: &mut R,
            amount: usize,
        ) -> (&mut [Self::Item], &mut [Self::Item]);

        /// Uniformly chooses one element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                self.swap(i, rng.gen_range(0..=i));
            }
        }

        fn partial_shuffle<R: RngCore + ?Sized>(
            &mut self,
            rng: &mut R,
            amount: usize,
        ) -> (&mut [Self::Item], &mut [Self::Item]) {
            let m = self.len().saturating_sub(amount);
            for i in (m..self.len()).rev() {
                self.swap(i, rng.gen_range(0..=i));
            }
            let (rest, chosen) = self.split_at_mut(m);
            (chosen, rest)
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn unit_floats_stay_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&y));
            let z = rng.gen_range(1.5..=2.5f64);
            assert!((1.5..=2.5).contains(&z));
        }
    }

    #[test]
    fn float_mean_is_centered() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / f64::from(n);
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(4);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        let frac = hits as f64 / 100_000.0;
        assert!((frac - 0.25).abs() < 0.01, "frac {frac}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut xs: Vec<u32> = (0..100).collect();
        xs.shuffle(&mut rng);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<u32>>());
    }

    #[test]
    fn partial_shuffle_splits_lengths() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut xs: Vec<u32> = (0..10).collect();
        let (chosen, rest) = xs.partial_shuffle(&mut rng, 4);
        assert_eq!(chosen.len(), 4);
        assert_eq!(rest.len(), 6);
    }

    #[test]
    fn works_through_dyn_rng_core() {
        let mut rng = StdRng::seed_from_u64(9);
        let dynamic: &mut dyn RngCore = &mut rng;
        let x = dynamic.gen_range(0..10usize);
        assert!(x < 10);
    }
}
