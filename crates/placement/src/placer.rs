//! The [`Placer`] trait and shared execution helpers.

use std::fmt;

use rand::RngCore;
use serde::{Deserialize, Serialize};

use crate::{Placement, PlacementError, PlacementProblem};

/// A placement algorithm for the VNF-CP problem.
///
/// Implementations receive the problem and a random-number generator (used
/// by the randomized algorithms; deterministic ones ignore it) and return a
/// feasible [`Placement`] plus the number of full executions it took — the
/// paper's *iterations* metric (Fig. 10). Deterministic single-pass
/// algorithms report 1 iteration; randomized algorithms restart on failure
/// and report how many attempts the first feasible solution needed.
///
/// `Send + Sync` is a supertrait so boxed placers can be shared across
/// the deterministic worker pool (`nfv-parallel`) that runs experiment
/// trials in parallel; implementations are stateless value types, so this
/// costs nothing.
pub trait Placer: Send + Sync {
    /// A short stable name for reports ("bfdsu", "ffd", …).
    fn name(&self) -> &'static str;

    /// Runs the algorithm.
    ///
    /// # Errors
    ///
    /// * [`PlacementError::Infeasible`] when a necessary feasibility
    ///   condition fails,
    /// * [`PlacementError::AttemptsExhausted`] when the restart budget runs
    ///   out without a feasible placement.
    fn place(
        &self,
        problem: &PlacementProblem,
        rng: &mut dyn RngCore,
    ) -> Result<PlacementOutcome, PlacementError>;
}

/// A successful placement run: the placement found and the execution cost.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlacementOutcome {
    placement: Placement,
    iterations: u64,
}

impl PlacementOutcome {
    /// Creates an outcome (used by [`Placer`] implementations).
    #[must_use]
    pub fn new(placement: Placement, iterations: u64) -> Self {
        Self {
            placement,
            iterations,
        }
    }

    /// The feasible placement.
    #[must_use]
    pub fn placement(&self) -> &Placement {
        &self.placement
    }

    /// Number of full algorithm executions until the first feasible
    /// solution (the paper's Fig. 10 metric).
    #[must_use]
    pub fn iterations(&self) -> u64 {
        self.iterations
    }

    /// Consumes the outcome, returning the placement.
    #[must_use]
    pub fn into_placement(self) -> Placement {
        self.placement
    }
}

impl fmt::Display for PlacementOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} (in {} iterations)", self.placement, self.iterations)
    }
}

/// Runs `attempt` up to `max_attempts` times, returning the first feasible
/// placement together with the attempt count. Shared by the randomized
/// algorithms ([`crate::Bfdsu`], [`crate::Nah`]), implementing the paper's
/// "go back to Begin" restart (Algorithm 1, line 9).
pub(crate) fn run_with_restarts(
    problem: &PlacementProblem,
    max_attempts: u64,
    mut attempt: impl FnMut() -> Option<Placement>,
) -> Result<PlacementOutcome, PlacementError> {
    problem.check_necessary_feasibility()?;
    for iteration in 1..=max_attempts {
        if let Some(placement) = attempt() {
            return Ok(PlacementOutcome::new(placement, iteration));
        }
    }
    Err(PlacementError::AttemptsExhausted {
        attempts: max_attempts,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use nfv_model::{Capacity, ComputeNode, Demand, NodeId, ServiceRate, Vnf, VnfId, VnfKind};

    fn tiny_problem() -> PlacementProblem {
        PlacementProblem::new(
            vec![ComputeNode::new(
                NodeId::new(0),
                Capacity::new(10.0).unwrap(),
            )],
            vec![Vnf::builder(VnfId::new(0), VnfKind::Nat)
                .demand_per_instance(Demand::new(5.0).unwrap())
                .service_rate(ServiceRate::new(1.0).unwrap())
                .build()
                .unwrap()],
        )
        .unwrap()
    }

    #[test]
    fn restarts_count_attempts() {
        let problem = tiny_problem();
        let mut calls = 0;
        let outcome = run_with_restarts(&problem, 10, || {
            calls += 1;
            if calls < 3 {
                None
            } else {
                Some(Placement::new(&problem, vec![NodeId::new(0)]).unwrap())
            }
        })
        .unwrap();
        assert_eq!(outcome.iterations(), 3);
    }

    #[test]
    fn exhausted_budget_is_an_error() {
        let problem = tiny_problem();
        let err = run_with_restarts(&problem, 5, || None).unwrap_err();
        assert_eq!(err, PlacementError::AttemptsExhausted { attempts: 5 });
    }

    #[test]
    fn infeasible_problems_fail_fast() {
        let problem = PlacementProblem::new(
            vec![ComputeNode::new(
                NodeId::new(0),
                Capacity::new(1.0).unwrap(),
            )],
            vec![Vnf::builder(VnfId::new(0), VnfKind::Nat)
                .demand_per_instance(Demand::new(5.0).unwrap())
                .service_rate(ServiceRate::new(1.0).unwrap())
                .build()
                .unwrap()],
        )
        .unwrap();
        let mut calls = 0;
        let err = run_with_restarts(&problem, 5, || {
            calls += 1;
            None
        })
        .unwrap_err();
        assert!(matches!(err, PlacementError::Infeasible { .. }));
        assert_eq!(
            calls, 0,
            "attempts must not run for provably infeasible input"
        );
    }
}
