//! Scheduling experiments: Figs. 11–16 and the tail statistics.
//!
//! Setup mirrors §V.C: `n` requests with `λ_r ∈ [1, 100]` pps are scheduled
//! onto `m` service instances; both algorithms run on the same 1000 random
//! draws and the per-run average response time `W` (Eq. (15)) is averaged.
//! As in the paper, `μ_f` is scaled with the offered load "to eliminate its
//! dominant influence": we calibrate `μ` per draw so that the *most loaded
//! instance across the compared algorithms* sits at a fixed utilization
//! headroom — every compared schedule is stable and differences in `W`
//! reflect balance quality alone. The job-rejection experiments instead fix
//! `μ` from the total load (a perfectly balanced schedule would sit at the
//! configured utilization), then replay each schedule through admission
//! control and count drops.

use nfv_metrics::{enhancement_ratio, Summary};
use nfv_model::{ArrivalRate, DeliveryProbability, ServiceRate};
use nfv_parallel::{derive_seed, par_map};
use nfv_scheduling::{Cga, Rckk, Scheduler};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::experiments::Sweep;
use crate::CoreError;

/// One evaluation point of the scheduling experiments.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SchedulingPoint {
    /// Number of requests `n = |R_f|`.
    pub requests: usize,
    /// Number of service instances `m = M_f`.
    pub instances: usize,
    /// Delivery probability `P` shared by all requests.
    pub delivery: f64,
    /// Arrival rates drawn uniformly from this range (pps).
    pub arrival_range: (f64, f64),
    /// For response-time experiments: how close to saturation the most
    /// loaded instance across compared algorithms is calibrated. μ is set
    /// to `worst makespan / (√P · (1 − gap))`, giving that instance an
    /// effective (loss-inflated) utilization of `(1 − gap)/√P`: just under
    /// saturation everywhere, and strictly tighter when the network is
    /// lossy — so loss raises both the response time and RCKK's
    /// enhancement ratio, the paper's Fig. 11 vs 12 ordering. Stability
    /// requires `gap > 1 − √P`.
    pub saturation_gap: f64,
    /// For rejection experiments: utilization of a perfectly balanced
    /// schedule under the fixed μ *at the reference request count*.
    pub balanced_utilization: f64,
    /// For rejection experiments: the request count at which the fixed
    /// capacity is sized. Below it the system has headroom; beyond it the
    /// load exceeds capacity and even a perfect schedule must reject.
    pub reference_requests: usize,
}

impl SchedulingPoint {
    /// The paper's base configuration: 50 requests on 5 instances,
    /// `λ ∈ [1, 100]`, `P = 0.98`.
    #[must_use]
    pub fn base() -> Self {
        Self {
            requests: 50,
            instances: 5,
            delivery: 0.98,
            arrival_range: (1.0, 100.0),
            saturation_gap: 0.015,
            balanced_utilization: 0.97,
            reference_requests: 175,
        }
    }
}

/// Per-algorithm response-time outcome at one point: the distribution of
/// per-run `W` over all repetitions.
#[derive(Debug, Clone, PartialEq)]
pub struct ResponseOutcome {
    /// Algorithm name.
    pub name: String,
    /// Per-repetition average response times `W` (Eq. (15)), seconds.
    pub w: Summary,
}

/// The two schedulers the paper compares, in presentation order.
#[must_use]
pub fn standard_schedulers() -> Vec<Box<dyn Scheduler>> {
    vec![Box::new(Rckk::new()), Box::new(Cga::new())]
}

fn draw_rates(point: &SchedulingPoint, rng: &mut StdRng) -> Vec<ArrivalRate> {
    let (lo, hi) = point.arrival_range;
    (0..point.requests)
        .map(|_| ArrivalRate::new(rng.gen_range(lo..=hi)).expect("range is positive"))
        .collect()
}

/// Runs the response-time experiment at one point: per repetition, all
/// schedulers see the same rates, μ is calibrated to the worst makespan
/// across them, and each scheduler's `W` is recorded.
///
/// # Errors
///
/// Returns [`CoreError::Scheduling`] if a schedule cannot be constructed
/// (empty inputs), which indicates an invalid point.
pub fn run_response_point(
    point: &SchedulingPoint,
    schedulers: &[Box<dyn Scheduler>],
    repetitions: u64,
    base_seed: u64,
) -> Result<Vec<ResponseOutcome>, CoreError> {
    let delivery =
        DeliveryProbability::new(point.delivery).map_err(|_| CoreError::Inconsistent {
            reason: "invalid delivery probability",
        })?;
    if !(point.saturation_gap < 1.0 && point.saturation_gap > 1.0 - point.delivery.sqrt()) {
        return Err(CoreError::Inconsistent {
            reason: "saturation gap must exceed 1 - sqrt(P) for stability and stay below 1",
        });
    }
    let mut outcomes: Vec<ResponseOutcome> = schedulers
        .iter()
        .map(|s| ResponseOutcome {
            name: s.name().to_owned(),
            w: Summary::new(),
        })
        .collect();

    // Repetitions are independent draws, so they run on the deterministic
    // worker pool with per-trial derived seeds; per-trial `W` vectors are
    // folded back in trial order, so the summaries are bit-identical at
    // any thread count.
    let trials = par_map(
        (0..repetitions).collect(),
        |_, rep| -> Result<Vec<f64>, CoreError> {
            let mut rng = StdRng::seed_from_u64(derive_seed(base_seed, rep));
            let rates = draw_rates(point, &mut rng);
            let schedules: Vec<_> = schedulers
                .iter()
                .map(|s| s.schedule(&rates, point.instances))
                .collect::<Result<_, _>>()?;
            // Calibrate μ so the most loaded instance across the compared
            // schedules sits exactly `saturation_gap` below saturation after
            // loss inflation. This is the paper's "scale μ_f ... to eliminate
            // its dominant influence": every point runs equally close to
            // capacity, where the M/M/1 delay growth the model captures
            // actually bites, and retransmissions (the 1/P factor) make the
            // lossy setting strictly slower.
            let worst_makespan = schedules
                .iter()
                .map(|s| s.makespan())
                .fold(0.0f64, f64::max);
            let mu = ServiceRate::new(
                worst_makespan / (point.delivery.sqrt() * (1.0 - point.saturation_gap)),
            )
            .map_err(|_| CoreError::Inconsistent {
                reason: "degenerate service rate",
            })?;
            schedules
                .iter()
                .map(|schedule| Ok(schedule.average_response_time(mu, delivery)?))
                .collect()
        },
    )?;
    for trial in trials {
        for (outcome, w) in outcomes.iter_mut().zip(trial?) {
            outcome.w.push(w);
        }
    }
    Ok(outcomes)
}

/// Runs the job-rejection experiment at one point: μ is fixed from the
/// total offered load, each schedule is replayed through admission control
/// and the mean rejection rate is returned per algorithm.
///
/// # Errors
///
/// Returns [`CoreError::Scheduling`] for invalid points.
pub fn run_rejection_point(
    point: &SchedulingPoint,
    schedulers: &[Box<dyn Scheduler>],
    repetitions: u64,
    base_seed: u64,
) -> Result<Vec<(String, f64)>, CoreError> {
    let delivery =
        DeliveryProbability::new(point.delivery).map_err(|_| CoreError::Inconsistent {
            reason: "invalid delivery probability",
        })?;
    let mut rejection: Vec<Summary> = schedulers.iter().map(|_| Summary::new()).collect();

    // Same parallel layout as `run_response_point`: per-trial derived seeds
    // plus in-order folding keep the result independent of thread count.
    let trials = par_map(
        (0..repetitions).collect(),
        |_, rep| -> Result<Vec<f64>, CoreError> {
            let mut rng = StdRng::seed_from_u64(derive_seed(base_seed, rep));
            let rates = draw_rates(point, &mut rng);
            // The service capacity is *fixed*, sized from the expected load at
            // `reference_requests`: a balanced schedule at the reference count
            // sits at external utilization `balanced_utilization`, so sweeping
            // the request count sweeps the offered load across (and past) the
            // capacity — rejections grow with the request count, as in the
            // paper's Figs. 15–16. Loss inflates the effective load by `1/P`,
            // so a lossier network rejects more at every point (Fig. 15 vs 16).
            let mean_rate = (point.arrival_range.0 + point.arrival_range.1) / 2.0;
            let mu = ServiceRate::new(
                mean_rate * point.reference_requests as f64
                    / point.instances as f64
                    / point.balanced_utilization,
            )
            .map_err(|_| CoreError::Inconsistent {
                reason: "degenerate service rate",
            })?;
            schedulers
                .iter()
                .map(|scheduler| {
                    let schedule = scheduler.schedule(&rates, point.instances)?;
                    let (report, _) = schedule.rejection_report(mu, delivery);
                    Ok(report.rejection_rate())
                })
                .collect()
        },
    )?;
    for trial in trials {
        for (summary, rate) in rejection.iter_mut().zip(trial?) {
            summary.push(rate);
        }
    }
    Ok(schedulers
        .iter()
        .zip(rejection)
        .map(|(s, summary)| (s.name().to_owned(), summary.mean()))
        .collect())
}

/// Figs. 11 (P = 0.98) / 12 (P = 1.00): average response time of 5
/// instances as requests scale 15→250, plus the enhancement ratio
/// `(W_CGA − W_RCKK)/W_CGA` as a third series.
///
/// # Errors
///
/// Propagates invalid-point errors.
pub fn fig11_12_response_vs_requests(
    delivery: f64,
    repetitions: u64,
    base_seed: u64,
) -> Result<Sweep, CoreError> {
    let schedulers = standard_schedulers();
    let mut sweep = Sweep::new(
        "requests",
        vec!["rckk".into(), "cga".into(), "enhancement%".into()],
    );
    for requests in [15, 25, 50, 75, 100, 150, 200, 250] {
        let point = SchedulingPoint {
            requests,
            delivery,
            ..SchedulingPoint::base()
        };
        let outcomes = run_response_point(&point, &schedulers, repetitions, base_seed)?;
        let rckk = outcomes[0].w.mean();
        let cga = outcomes[1].w.mean();
        sweep.push(
            requests as f64,
            vec![rckk, cga, enhancement_ratio(cga, rckk) * 100.0],
        );
    }
    Ok(sweep)
}

/// Figs. 13 (P = 0.98) / 14 (P = 1.00): average response time as instances
/// scale 2→10 with 50 requests, plus the enhancement ratio.
///
/// # Errors
///
/// Propagates invalid-point errors.
pub fn fig13_14_response_vs_instances(
    delivery: f64,
    repetitions: u64,
    base_seed: u64,
) -> Result<Sweep, CoreError> {
    let schedulers = standard_schedulers();
    let mut sweep = Sweep::new(
        "instances",
        vec!["rckk".into(), "cga".into(), "enhancement%".into()],
    );
    for instances in [2, 3, 4, 5, 6, 7, 8, 9, 10] {
        let point = SchedulingPoint {
            instances,
            delivery,
            ..SchedulingPoint::base()
        };
        let outcomes = run_response_point(&point, &schedulers, repetitions, base_seed)?;
        let rckk = outcomes[0].w.mean();
        let cga = outcomes[1].w.mean();
        sweep.push(
            instances as f64,
            vec![rckk, cga, enhancement_ratio(cga, rckk) * 100.0],
        );
    }
    Ok(sweep)
}

/// The tail statistics of §V.C: 99th-percentile of the per-run `W` over
/// all repetitions, as requests scale 10→200 (P = 0.98, 5 instances).
///
/// # Errors
///
/// Propagates invalid-point errors.
pub fn tail_p99_vs_requests(repetitions: u64, base_seed: u64) -> Result<Sweep, CoreError> {
    let schedulers = standard_schedulers();
    let mut sweep = Sweep::new(
        "requests",
        vec!["rckk_p99".into(), "cga_p99".into(), "enhancement%".into()],
    );
    for requests in [10, 25, 50, 100, 150, 200] {
        let point = SchedulingPoint {
            requests,
            ..SchedulingPoint::base()
        };
        let mut outcomes = run_response_point(&point, &schedulers, repetitions, base_seed)?;
        let rckk = outcomes[0].w.p99();
        let cga = outcomes[1].w.p99();
        sweep.push(
            requests as f64,
            vec![rckk, cga, enhancement_ratio(cga, rckk) * 100.0],
        );
    }
    Ok(sweep)
}

/// Extension (paper future work): the price of online scheduling.
/// Requests arrive one at a time and the online least-loaded dispatcher
/// must assign them irrevocably; the offline RCKK sees the whole set.
/// Reports both mean response times and the online price
/// `(W_online − W_rckk)/W_rckk` as requests scale (5 instances,
/// P = 0.98).
///
/// # Errors
///
/// Propagates invalid-point errors.
pub fn online_price_vs_requests(repetitions: u64, base_seed: u64) -> Result<Sweep, CoreError> {
    let schedulers: Vec<Box<dyn Scheduler>> = vec![
        Box::new(Rckk::new()),
        Box::new(nfv_scheduling::OnlineLeastLoaded::new()),
    ];
    let mut sweep = Sweep::new(
        "requests",
        vec!["rckk".into(), "online".into(), "price%".into()],
    );
    for requests in [15, 25, 50, 75, 100, 150, 200, 250] {
        let point = SchedulingPoint {
            requests,
            ..SchedulingPoint::base()
        };
        let outcomes = run_response_point(&point, &schedulers, repetitions, base_seed)?;
        let rckk = outcomes[0].w.mean();
        let online = outcomes[1].w.mean();
        sweep.push(
            requests as f64,
            vec![rckk, online, (online / rckk - 1.0) * 100.0],
        );
    }
    Ok(sweep)
}

/// Figs. 15 (P = 0.997) / 16 (P = 0.984): average job rejection rate (%)
/// as requests scale, on 5 instances.
///
/// # Errors
///
/// Propagates invalid-point errors.
pub fn fig15_16_rejection_vs_requests(
    delivery: f64,
    repetitions: u64,
    base_seed: u64,
) -> Result<Sweep, CoreError> {
    let schedulers = standard_schedulers();
    let mut sweep = Sweep::new("requests", vec!["rckk".into(), "cga".into()]);
    for requests in [15, 25, 50, 75, 100, 150, 200, 250] {
        let point = SchedulingPoint {
            requests,
            delivery,
            ..SchedulingPoint::base()
        };
        let rates = run_rejection_point(&point, &schedulers, repetitions, base_seed)?;
        sweep.push(
            requests as f64,
            rates.iter().map(|(_, r)| r * 100.0).collect(),
        );
    }
    Ok(sweep)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rckk_beats_cga_on_response_time() {
        let point = SchedulingPoint {
            requests: 25,
            ..SchedulingPoint::base()
        };
        let outcomes = run_response_point(&point, &standard_schedulers(), 50, 3).unwrap();
        let rckk = outcomes.iter().find(|o| o.name == "rckk").unwrap().w.mean();
        let cga = outcomes.iter().find(|o| o.name == "cga").unwrap().w.mean();
        assert!(rckk <= cga, "rckk {rckk} > cga {cga}");
    }

    #[test]
    fn response_runs_are_deterministic() {
        let point = SchedulingPoint::base();
        let a = run_response_point(&point, &standard_schedulers(), 5, 9).unwrap();
        let b = run_response_point(&point, &standard_schedulers(), 5, 9).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn rckk_rejects_less_than_cga() {
        let point = SchedulingPoint {
            requests: 50,
            delivery: 0.984,
            ..SchedulingPoint::base()
        };
        let rates = run_rejection_point(&point, &standard_schedulers(), 50, 5).unwrap();
        let rckk = rates.iter().find(|(n, _)| n == "rckk").unwrap().1;
        let cga = rates.iter().find(|(n, _)| n == "cga").unwrap().1;
        assert!(rckk <= cga, "rckk {rckk} > cga {cga}");
    }

    #[test]
    fn lower_delivery_probability_raises_latency() {
        let schedulers = standard_schedulers();
        let lossy = SchedulingPoint {
            delivery: 0.98,
            ..SchedulingPoint::base()
        };
        let clean = SchedulingPoint {
            delivery: 1.0,
            ..SchedulingPoint::base()
        };
        let w_lossy = run_response_point(&lossy, &schedulers, 20, 1).unwrap()[0]
            .w
            .mean();
        let w_clean = run_response_point(&clean, &schedulers, 20, 1).unwrap()[0]
            .w
            .mean();
        assert!(w_lossy > w_clean, "lossy {w_lossy} <= clean {w_clean}");
    }

    #[test]
    fn online_price_is_nonnegative_on_average() {
        let sweep = online_price_vs_requests(30, 4).unwrap();
        assert_eq!(sweep.rows().len(), 8);
        let mean_price = sweep.series_mean("price%").unwrap();
        assert!(mean_price >= -1.0, "offline lost to online: {mean_price}");
    }

    #[test]
    fn sweeps_have_expected_dimensions() {
        let sweep = fig11_12_response_vs_requests(1.0, 3, 2).unwrap();
        assert_eq!(sweep.rows().len(), 8);
        assert_eq!(sweep.series().len(), 3);
        let sweep = fig15_16_rejection_vs_requests(0.997, 3, 2).unwrap();
        assert_eq!(sweep.series().len(), 2);
    }
}
