//! Combined moment + quantile summaries.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{OnlineStats, SampleSet};

/// A summary that retains samples for exact quantiles *and* keeps streaming
/// moments, the one-stop accumulator used by the experiment harness for each
/// (algorithm, sweep-point) cell.
///
/// # Examples
///
/// ```
/// use nfv_metrics::Summary;
/// let mut s = Summary::new();
/// s.extend([1.0, 2.0, 3.0]);
/// assert_eq!(s.mean(), 2.0);
/// assert_eq!(s.percentile(0.5), 2.0);
/// assert_eq!(s.count(), 3);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    stats: OnlineStats,
    samples: SampleSet,
}

impl Summary {
    /// Creates an empty summary.
    #[must_use]
    pub fn new() -> Self {
        Self {
            stats: OnlineStats::new(),
            samples: SampleSet::new(),
        }
    }

    /// Adds one observation (non-finite values are ignored).
    pub fn push(&mut self, x: f64) {
        self.stats.push(x);
        self.samples.push(x);
    }

    /// Number of recorded observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.stats.count()
    }

    /// Whether no observation has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.stats.is_empty()
    }

    /// Arithmetic mean.
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.stats.mean()
    }

    /// Sample standard deviation.
    #[must_use]
    pub fn std_dev(&self) -> f64 {
        self.stats.std_dev()
    }

    /// Half-width of the ~95% confidence interval for the mean.
    #[must_use]
    pub fn ci95_half_width(&self) -> f64 {
        self.stats.ci95_half_width()
    }

    /// Exact `q`-quantile over the retained samples.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    #[must_use]
    pub fn percentile(&mut self, q: f64) -> f64 {
        self.samples.percentile(q)
    }

    /// The 99th percentile.
    #[must_use]
    pub fn p99(&mut self) -> f64 {
        self.samples.p99()
    }

    /// Smallest observation; `None` when empty.
    #[must_use]
    pub fn min(&self) -> Option<f64> {
        self.stats.min()
    }

    /// Largest observation; `None` when empty.
    #[must_use]
    pub fn max(&self) -> Option<f64> {
        self.stats.max()
    }

    /// The underlying streaming statistics.
    #[must_use]
    pub fn stats(&self) -> &OnlineStats {
        &self.stats
    }

    /// The underlying retained samples.
    #[must_use]
    pub fn samples(&self) -> &SampleSet {
        &self.samples
    }

    /// Batch-means ~95% confidence interval for the mean; see
    /// [`SampleSet::batch_means_ci`].
    #[must_use]
    pub fn batch_means_ci(&self, batches: usize) -> Option<(f64, f64)> {
        self.samples.batch_means_ci(batches)
    }

    /// Merges another summary into this one: streaming moments via the
    /// parallel Welford combination ([`OnlineStats::merge`]), retained
    /// samples by in-order append ([`SampleSet::merge`]).
    pub fn merge(&mut self, other: &Summary) {
        self.stats.merge(&other.stats);
        self.samples.merge(&other.samples);
    }
}

impl Extend<f64> for Summary {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for x in iter {
            self.push(x);
        }
    }
}

impl FromIterator<f64> for Summary {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut s = Self::new();
        s.extend(iter);
        s
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            write!(f, "no samples")
        } else {
            write!(
                f,
                "n={} mean={:.6} +/-{:.6}",
                self.count(),
                self.mean(),
                self.ci95_half_width()
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn moments_and_quantiles_agree_on_count() {
        let mut s: Summary = [5.0, 1.0, 3.0].into_iter().collect();
        assert_eq!(s.count(), 3);
        assert_eq!(s.samples().len(), 3);
        assert_eq!(s.mean(), 3.0);
        assert_eq!(s.percentile(0.5), 3.0);
        assert_eq!(s.min(), Some(1.0));
        assert_eq!(s.max(), Some(5.0));
    }

    #[test]
    fn empty_summary_displays_gracefully() {
        let s = Summary::new();
        assert!(s.is_empty());
        assert_eq!(s.to_string(), "no samples");
    }

    #[test]
    fn ci_shrinks_with_more_samples() {
        let small: Summary = (0..10).map(f64::from).collect();
        let large: Summary = (0..1000).map(|i| f64::from(i % 10)).collect();
        assert!(large.ci95_half_width() < small.ci95_half_width());
    }
}
