//! Controller policies and tuning knobs.

use nfv_model::VnfId;
use nfv_search::{Engine, FitnessWeights};

/// What to do when an arrival cannot be admitted without driving some
/// instance of its chain to `ρ ≥ 1`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[non_exhaustive]
pub enum ShedPolicy {
    /// Refuse the arriving request (classic admission control); the
    /// default.
    #[default]
    RejectArrival,
    /// Try once per saturated hop to evict the largest-rate request from
    /// the chosen instance, admitting the newcomer if the eviction frees
    /// enough headroom *and* strictly lowers the instance's merged rate;
    /// otherwise fall back to rejecting the arrival. Evicted requests
    /// leave the whole system and are counted as shed.
    EvictLargest,
}

/// Bounds on a periodic re-optimization pass.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReoptConfig {
    /// Hysteresis: the relative predicted-latency gain
    /// `(L_now − L_target) / L_now` a full re-balance must promise before
    /// any migration is performed. `0.0` re-balances on every tick.
    pub min_gain: f64,
    /// Maximum number of request migrations applied per tick. When the
    /// RCKK plan exceeds the budget, the moves with the greatest marginal
    /// predicted-latency reduction are chosen greedily. A budget covering
    /// the whole plan (e.g. `usize::MAX`) adopts the full RCKK assignment
    /// (the "offline oracle").
    pub max_migrations: usize,
}

impl ReoptConfig {
    /// A bounded default: re-balance on a predicted gain of at least 1%,
    /// moving at most 8 requests per tick.
    #[must_use]
    pub fn bounded() -> Self {
        Self {
            min_gain: 0.01,
            max_migrations: 8,
        }
    }

    /// The unbounded oracle: adopt the freshly computed RCKK assignment
    /// wholesale on every tick.
    #[must_use]
    pub fn oracle() -> Self {
        Self {
            min_gain: 0.0,
            max_migrations: usize::MAX,
        }
    }
}

/// Bounds on the placement re-optimization (re-placement) phase: on each
/// tick the controller may grow or shrink per-VNF instance counts toward a
/// ρ-headroom target and relocate instances via the incremental BFDSU
/// delta-placement, all under a per-tick operation budget `K`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReplaceConfig {
    /// High watermark: a VNF grows when its balanced per-instance
    /// utilization `Λ_f / (m_f · μ_f)` exceeds this, targeting the
    /// smallest count that brings it back under (`⌈Λ/(headroom·μ)⌉`).
    pub headroom: f64,
    /// Low watermark: a VNF shrinks only when its balanced per-instance
    /// utilization falls below this *and* fewer instances would still keep
    /// it under `headroom`. The gap between the watermarks is the
    /// hysteresis band that prevents grow/shrink flapping.
    pub shrink_headroom: f64,
    /// Per-tick budget `K` on instance operations: every instance added,
    /// every instance retired and every instance relocated to another node
    /// costs one unit.
    pub max_instance_ops: usize,
    /// Hysteresis on plans that add instances or relocate them: the
    /// balanced predicted-latency gain must be at least this relative
    /// fraction, or the whole plan is aborted. Pure-shrink plans are
    /// exempt (they trade latency for capacity by design, gated by the low
    /// watermark instead).
    pub min_gain: f64,
    /// Seed for the per-tick delta-placement RNG. Each tick draws from
    /// `StdRng::seed_from_u64(seed ^ tick_count)`, so runs are
    /// bit-identical at any thread count.
    pub seed: u64,
}

impl ReplaceConfig {
    /// A bounded default: grow above 90% balanced utilization, shrink
    /// below 50%, at most 6 instance operations per tick, 1% minimum
    /// predicted gain.
    #[must_use]
    pub fn bounded() -> Self {
        Self {
            headroom: 0.9,
            shrink_headroom: 0.5,
            max_instance_ops: 6,
            min_gain: 0.01,
            seed: 0xC1A0,
        }
    }
}

/// Emergency re-placement on a node failure — the out-of-tick recovery
/// path. When a [`NodeDown`] arrives, the controller immediately re-runs
/// the incremental BFDSU over the *surviving* nodes (the dark node's
/// capacity is treated as zero), relocating the stranded VNFs and growing
/// replacement instances toward the ρ-headroom targets, all bounded by a
/// per-event operation cap. Without this config, recovery waits for the
/// next periodic tick.
///
/// [`NodeDown`]: nfv_workload::churn::ChurnEvent::NodeDown
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EmergencyConfig {
    /// ρ-headroom for replacement instance targets: each VNF aims for the
    /// smallest count keeping `Λ_f / (m_f · μ_f)` under this, where `Λ_f`
    /// includes the retry backlog that will re-offer once capacity
    /// returns.
    pub headroom: f64,
    /// Brownout admission: while *any* node is dark, arrivals (and
    /// retries) are admitted only up to this fraction of `μ` per instance
    /// instead of strict stability, keeping slack for failover traffic.
    pub brownout_headroom: f64,
    /// Per-event budget on emergency instance operations (adds +
    /// relocations).
    pub max_instance_ops: usize,
    /// Seed for the per-event delta-placement RNG; each emergency pass
    /// draws from `StdRng::seed_from_u64(seed ^ node_downs_so_far)`.
    pub seed: u64,
}

impl EmergencyConfig {
    /// A bounded default: 90% replacement headroom, 85% brownout
    /// admission, at most 16 instance operations per node failure — a
    /// deliberately larger budget than a routine tick's
    /// ([`ReplaceConfig::bounded`](crate::ReplaceConfig::bounded)),
    /// because a dark node strands every VNF it hosted at once.
    #[must_use]
    pub fn bounded() -> Self {
        Self {
            headroom: 0.9,
            brownout_headroom: 0.85,
            max_instance_ops: 16,
            seed: 0xE4E7,
        }
    }
}

/// Deterministic retry/backoff queue for shed and rejected arrivals — the
/// graceful-degradation ladder for the capacity-lost regime. Refused
/// traffic is re-offered with exponential backoff and seeded jitter
/// (virtual time only, no wall clock) until it is admitted or its retry
/// budget runs out.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryConfig {
    /// Delay before the first re-offer, seconds of virtual time.
    pub base_backoff: f64,
    /// Multiplier applied to the delay on each failed attempt.
    pub factor: f64,
    /// Upper bound on the un-jittered delay, seconds.
    pub max_backoff: f64,
    /// Retry budget: attempts beyond this are abandoned for good.
    pub max_attempts: u32,
    /// Queue capacity; a full queue abandons further entrants.
    pub max_queue: usize,
    /// Relative jitter amplitude in `[0, 1)`: each delay is scaled by a
    /// deterministic factor in `[1 − jitter, 1 + jitter)` derived from
    /// the seed, the request id and the attempt number.
    pub jitter: f64,
    /// Seed of the jitter hash.
    pub seed: u64,
}

impl RetryConfig {
    /// A bounded default: first re-offer after 2 s, doubling up to 30 s,
    /// at most 6 attempts, 256 queued requests, ±20% jitter.
    #[must_use]
    pub fn bounded() -> Self {
        Self {
            base_backoff: 2.0,
            factor: 2.0,
            max_backoff: 30.0,
            max_attempts: 6,
            max_queue: 256,
            jitter: 0.2,
            seed: 0xB0FF,
        }
    }
}

/// Background anytime refinement of the VNF→node placement. On *quiet*
/// ticks — no node currently dark and no node outage or recovery since the
/// last tick — the controller runs a bounded number of generations of the
/// `nfv-search` metaheuristic (GA or PSO), warm-started from the live
/// assignment, and adopts the searched placement through the usual
/// hysteresis gate when it promises enough objective gain within the move
/// budget. Requires a cluster, like [`ReplaceConfig`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RefinerConfig {
    /// The search engine refining the placement.
    pub engine: Engine,
    /// Individuals (or particles) per generation.
    pub population: usize,
    /// Generations run per quiet tick. Each generation is wrapped in a
    /// `search-generation` telemetry span.
    pub generations: usize,
    /// Hysteresis: the relative search-objective gain
    /// `(f_now − f_best) / f_now` the bounded plan must promise before any
    /// VNF is relocated; plans below it journal a `ReoptRejected`.
    pub min_gain: f64,
    /// Budget on VNF relocations per committed plan. When the searched
    /// assignment differs in more genes, single moves are applied greedily
    /// by marginal objective gain up to this budget.
    pub max_moves: usize,
    /// Base seed of the per-tick search; tick `t` searches with
    /// `seed ^ t`, so runs are bit-identical at any thread count.
    pub seed: u64,
    /// Objective weights of the refiner's search. Unlike the offline
    /// searcher, which reproduces the paper's pure consolidation objective
    /// (zero [`FitnessWeights::spread`]), a live cluster pays for packed
    /// nodes in admission headroom and queueing delay — so the bounded
    /// default raises `spread` until evacuating a node only pays when it
    /// does not create a hot spot.
    pub weights: FitnessWeights,
}

impl RefinerConfig {
    /// A bounded default: 24 individuals, 12 GA generations per quiet
    /// tick, 1% minimum objective gain, at most 4 relocations per plan,
    /// and a headroom-guarded objective (`spread` = 4: consolidation must
    /// not raise the hottest node's utilization by more than 0.25 per node
    /// freed).
    #[must_use]
    pub fn bounded() -> Self {
        Self {
            engine: Engine::Ga,
            population: 24,
            generations: 12,
            min_gain: 0.01,
            max_moves: 4,
            seed: 0x5EEC,
            weights: FitnessWeights {
                spread: 4.0,
                ..FitnessWeights::default()
            },
        }
    }
}

/// Complete controller configuration.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ControllerConfig {
    /// Load-shedding behaviour on saturated arrivals.
    pub shed: ShedPolicy,
    /// Re-optimization policy; `None` ignores [`ReoptimizeTick`] events
    /// (pure online dispatch).
    ///
    /// [`ReoptimizeTick`]: nfv_workload::churn::ChurnEvent::ReoptimizeTick
    pub reopt: Option<ReoptConfig>,
    /// Placement re-optimization policy; `None` keeps the instance counts
    /// and node mapping frozen at `t = 0` (scheduling-only ticks). Takes
    /// effect only when the controller was built with a cluster
    /// ([`Controller::with_cluster`](crate::Controller::with_cluster)).
    pub replace: Option<ReplaceConfig>,
    /// Emergency re-placement on node failures; `None` leaves recovery to
    /// the next periodic tick. Requires a cluster, like `replace`.
    pub emergency: Option<EmergencyConfig>,
    /// Retry/backoff queue for shed and rejected arrivals; `None` loses
    /// refused traffic for good.
    pub retry: Option<RetryConfig>,
    /// Background placement refinement on quiet ticks; `None` leaves the
    /// node mapping to the re-placement phase alone. Requires a cluster,
    /// like `replace`.
    pub refiner: Option<RefinerConfig>,
}

impl ControllerConfig {
    /// Pure online least-loaded dispatch: no re-optimization, strict
    /// admission control.
    #[must_use]
    pub fn online_only() -> Self {
        Self {
            shed: ShedPolicy::RejectArrival,
            reopt: None,
            replace: None,
            emergency: None,
            retry: None,
            refiner: None,
        }
    }

    /// Online dispatch plus bounded periodic re-optimization
    /// ([`ReoptConfig::bounded`]).
    #[must_use]
    pub fn periodic_reopt() -> Self {
        Self {
            reopt: Some(ReoptConfig::bounded()),
            ..Self::online_only()
        }
    }

    /// Online dispatch plus full re-balancing on every tick
    /// ([`ReoptConfig::oracle`]).
    #[must_use]
    pub fn offline_oracle() -> Self {
        Self {
            reopt: Some(ReoptConfig::oracle()),
            ..Self::online_only()
        }
    }

    /// Joint re-optimization: bounded RCKK scheduling *and* bounded BFDSU
    /// re-placement on every tick ([`ReoptConfig::bounded`] +
    /// [`ReplaceConfig::bounded`]) — the online analogue of the paper's
    /// joint placement-and-scheduling pipeline.
    #[must_use]
    pub fn joint_reopt() -> Self {
        Self {
            reopt: Some(ReoptConfig::bounded()),
            replace: Some(ReplaceConfig::bounded()),
            ..Self::online_only()
        }
    }

    /// The full robustness ladder: joint re-optimization plus emergency
    /// re-placement on node failures ([`EmergencyConfig::bounded`]) and a
    /// retry/backoff queue for refused arrivals
    /// ([`RetryConfig::bounded`]).
    #[must_use]
    pub fn resilient() -> Self {
        Self {
            emergency: Some(EmergencyConfig::bounded()),
            retry: Some(RetryConfig::bounded()),
            ..Self::joint_reopt()
        }
    }

    /// The resilient ladder plus background placement refinement on quiet
    /// ticks ([`RefinerConfig::bounded`]): the anytime GA keeps improving
    /// the node mapping while the cluster is healthy.
    #[must_use]
    pub fn refined() -> Self {
        Self {
            refiner: Some(RefinerConfig::bounded()),
            ..Self::resilient()
        }
    }
}

/// Why an arrival was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum RejectReason {
    /// Admitting the request would have driven an instance of this VNF to
    /// `ρ ≥ 1` and the shed policy could not make room.
    WouldOverload {
        /// The saturated hop of the request's chain.
        vnf: VnfId,
    },
    /// Every instance of this VNF is currently down.
    NoInstanceUp {
        /// The unavailable hop of the request's chain.
        vnf: VnfId,
    },
    /// The request's chain references a VNF the controller doesn't manage.
    UnknownVnf {
        /// The unknown hop.
        vnf: VnfId,
    },
    /// A request with the same id is already active.
    DuplicateId,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_differ_only_in_reopt() {
        assert_eq!(ControllerConfig::online_only().reopt, None);
        let bounded = ControllerConfig::periodic_reopt().reopt.unwrap();
        assert!(bounded.min_gain > 0.0);
        assert!(bounded.max_migrations < usize::MAX);
        let oracle = ControllerConfig::offline_oracle().reopt.unwrap();
        assert_eq!(oracle.min_gain, 0.0);
        assert_eq!(oracle.max_migrations, usize::MAX);
    }

    #[test]
    fn joint_preset_adds_replacement_on_top_of_periodic() {
        let joint = ControllerConfig::joint_reopt();
        assert_eq!(joint.reopt, ControllerConfig::periodic_reopt().reopt);
        let replace = joint.replace.unwrap();
        assert!(
            replace.shrink_headroom < replace.headroom,
            "hysteresis band"
        );
        assert!(replace.headroom < 1.0, "grow before saturation");
        assert!(replace.max_instance_ops >= 1);
        // The scheduling-only presets never re-place.
        assert_eq!(ControllerConfig::periodic_reopt().replace, None);
        assert_eq!(ControllerConfig::offline_oracle().replace, None);
    }

    #[test]
    fn resilient_preset_layers_recovery_on_top_of_joint() {
        let resilient = ControllerConfig::resilient();
        assert_eq!(resilient.reopt, ControllerConfig::joint_reopt().reopt);
        assert_eq!(resilient.replace, ControllerConfig::joint_reopt().replace);
        let emergency = resilient.emergency.unwrap();
        assert!(emergency.brownout_headroom <= emergency.headroom);
        assert!(emergency.headroom < 1.0);
        assert!(emergency.max_instance_ops >= 1);
        let retry = resilient.retry.unwrap();
        assert!(retry.base_backoff > 0.0);
        assert!(retry.factor >= 1.0);
        assert!(retry.base_backoff <= retry.max_backoff);
        assert!(retry.max_attempts >= 1);
        assert!((0.0..1.0).contains(&retry.jitter));
        // Everything below the resilient tier stays recovery-free.
        assert_eq!(ControllerConfig::joint_reopt().emergency, None);
        assert_eq!(ControllerConfig::joint_reopt().retry, None);
    }

    #[test]
    fn refined_preset_layers_search_on_top_of_resilient() {
        let refined = ControllerConfig::refined();
        assert_eq!(refined.reopt, ControllerConfig::resilient().reopt);
        assert_eq!(refined.replace, ControllerConfig::resilient().replace);
        assert_eq!(refined.emergency, ControllerConfig::resilient().emergency);
        assert_eq!(refined.retry, ControllerConfig::resilient().retry);
        let refiner = refined.refiner.unwrap();
        assert_eq!(refiner.engine, Engine::Ga);
        assert!(refiner.population >= 2);
        assert!(refiner.generations >= 1);
        assert!(refiner.min_gain > 0.0, "hysteresis stays armed");
        assert!(refiner.max_moves >= 1);
        // Every lower tier leaves the searcher off.
        assert_eq!(ControllerConfig::resilient().refiner, None);
        assert_eq!(ControllerConfig::joint_reopt().refiner, None);
    }

    #[test]
    fn default_is_online_only() {
        assert_eq!(ControllerConfig::default(), ControllerConfig::online_only());
    }
}
