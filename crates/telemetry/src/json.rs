//! A minimal hand-rolled JSON layer for the journal sinks.
//!
//! The vendored `serde` stand-in provides only the trait markers — no
//! serializers (see `vendor/README.md`) — so the journal encodes and
//! decodes its own flat objects. The subset is deliberately tiny: one
//! non-nested object per line, string and numeric fields only. Numbers
//! are written with Rust's shortest-round-trip formatting, so a decoded
//! `f64` is bit-identical to the encoded one; non-finite values (which
//! plain JSON cannot carry) are encoded as the strings `"inf"`, `"-inf"`
//! and `"nan"`.

use std::fmt::Write as _;

/// Builder for one flat JSON object.
///
/// # Examples
///
/// ```
/// use nfv_telemetry::json::JsonObject;
/// let mut obj = JsonObject::new();
/// obj.field_str("event", "Admit").field_u64("request", 7);
/// assert_eq!(obj.finish(), r#"{"event":"Admit","request":7}"#);
/// ```
#[derive(Debug, Default)]
pub struct JsonObject {
    buf: String,
}

impl JsonObject {
    /// Starts an empty object.
    #[must_use]
    pub fn new() -> Self {
        Self { buf: String::new() }
    }

    fn key(&mut self, key: &str) -> &mut Self {
        if self.buf.is_empty() {
            self.buf.push('{');
        } else {
            self.buf.push(',');
        }
        self.buf.push('"');
        escape_into(&mut self.buf, key);
        self.buf.push_str("\":");
        self
    }

    /// Appends a string field.
    pub fn field_str(&mut self, key: &str, value: &str) -> &mut Self {
        self.key(key);
        self.buf.push('"');
        escape_into(&mut self.buf, value);
        self.buf.push('"');
        self
    }

    /// Appends an unsigned integer field.
    pub fn field_u64(&mut self, key: &str, value: u64) -> &mut Self {
        self.key(key);
        let _ = write!(self.buf, "{value}");
        self
    }

    /// Appends a float field with shortest-round-trip formatting.
    /// Non-finite values become the strings `"inf"`, `"-inf"`, `"nan"`.
    pub fn field_f64(&mut self, key: &str, value: f64) -> &mut Self {
        self.key(key);
        if value.is_finite() {
            let _ = write!(self.buf, "{value}");
        } else if value.is_nan() {
            self.buf.push_str("\"nan\"");
        } else if value > 0.0 {
            self.buf.push_str("\"inf\"");
        } else {
            self.buf.push_str("\"-inf\"");
        }
        self
    }

    /// Closes the object and returns the rendered text.
    #[must_use]
    pub fn finish(self) -> String {
        let mut buf = self.buf;
        if buf.is_empty() {
            buf.push('{');
        }
        buf.push('}');
        buf
    }
}

pub(crate) fn escape_into(buf: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => buf.push_str("\\\""),
            '\\' => buf.push_str("\\\\"),
            '\n' => buf.push_str("\\n"),
            '\r' => buf.push_str("\\r"),
            '\t' => buf.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(buf, "\\u{:04x}", c as u32);
            }
            c => buf.push(c),
        }
    }
}

/// One decoded field value: a string, or the raw text of a non-string
/// scalar (number, `true`/`false`/`null`). Keeping the raw text lets
/// callers parse integers exactly instead of routing them through `f64`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JsonValue {
    /// A decoded (unescaped) string.
    Str(String),
    /// The raw text of a number or keyword.
    Raw(String),
}

/// A malformed journal line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What the parser objected to.
    pub message: &'static str,
    /// Byte offset of the objection.
    pub at: usize,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "invalid journal JSON at byte {}: {}",
            self.at, self.message
        )
    }
}

impl std::error::Error for JsonError {}

/// Parses one flat JSON object into its `(key, value)` fields, in
/// document order. Nested objects/arrays are rejected — the journal
/// never emits them.
///
/// # Errors
///
/// [`JsonError`] describing the first malformed byte.
///
/// # Examples
///
/// ```
/// use nfv_telemetry::json::{parse_object, JsonValue};
/// let fields = parse_object(r#"{"event":"Admit","request":7}"#).unwrap();
/// assert_eq!(fields[0].1, JsonValue::Str("Admit".into()));
/// assert_eq!(fields[1].1, JsonValue::Raw("7".into()));
/// ```
pub fn parse_object(input: &str) -> Result<Vec<(String, JsonValue)>, JsonError> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    let err = |message, at| JsonError { message, at };
    let skip_ws = |pos: &mut usize| {
        while *pos < bytes.len() && bytes[*pos].is_ascii_whitespace() {
            *pos += 1;
        }
    };
    skip_ws(&mut pos);
    if pos >= bytes.len() || bytes[pos] != b'{' {
        return Err(err("expected '{'", pos));
    }
    pos += 1;
    let mut fields = Vec::new();
    skip_ws(&mut pos);
    if pos < bytes.len() && bytes[pos] == b'}' {
        return finish_parse(input, pos + 1, fields);
    }
    loop {
        skip_ws(&mut pos);
        let key = parse_string(input, &mut pos)?;
        skip_ws(&mut pos);
        if pos >= bytes.len() || bytes[pos] != b':' {
            return Err(err("expected ':'", pos));
        }
        pos += 1;
        skip_ws(&mut pos);
        let value = if pos < bytes.len() && bytes[pos] == b'"' {
            JsonValue::Str(parse_string(input, &mut pos)?)
        } else {
            let start = pos;
            while pos < bytes.len() && !matches!(bytes[pos], b',' | b'}') {
                if matches!(bytes[pos], b'{' | b'[') {
                    return Err(err("nested values are not supported", pos));
                }
                pos += 1;
            }
            let raw = input[start..pos].trim();
            if raw.is_empty() {
                return Err(err("empty value", start));
            }
            JsonValue::Raw(raw.to_string())
        };
        fields.push((key, value));
        skip_ws(&mut pos);
        match bytes.get(pos) {
            Some(b',') => pos += 1,
            Some(b'}') => return finish_parse(input, pos + 1, fields),
            _ => return Err(err("expected ',' or '}'", pos)),
        }
    }
}

fn finish_parse(
    input: &str,
    pos: usize,
    fields: Vec<(String, JsonValue)>,
) -> Result<Vec<(String, JsonValue)>, JsonError> {
    if input[pos..].trim().is_empty() {
        Ok(fields)
    } else {
        Err(JsonError {
            message: "trailing garbage after object",
            at: pos,
        })
    }
}

fn parse_string(input: &str, pos: &mut usize) -> Result<String, JsonError> {
    let bytes = input.as_bytes();
    if *pos >= bytes.len() || bytes[*pos] != b'"' {
        return Err(JsonError {
            message: "expected '\"'",
            at: *pos,
        });
    }
    *pos += 1;
    let mut out = String::new();
    let mut chars = input[*pos..].char_indices();
    while let Some((i, c)) = chars.next() {
        match c {
            '"' => {
                *pos += i + 1;
                return Ok(out);
            }
            '\\' => match chars.next() {
                Some((_, '"')) => out.push('"'),
                Some((_, '\\')) => out.push('\\'),
                Some((_, '/')) => out.push('/'),
                Some((_, 'n')) => out.push('\n'),
                Some((_, 'r')) => out.push('\r'),
                Some((_, 't')) => out.push('\t'),
                Some((j, 'u')) => {
                    let hex = input[*pos..].get(j + 1..j + 5).ok_or(JsonError {
                        message: "truncated \\u escape",
                        at: *pos + j,
                    })?;
                    let code = u32::from_str_radix(hex, 16).map_err(|_| JsonError {
                        message: "bad \\u escape",
                        at: *pos + j,
                    })?;
                    out.push(char::from_u32(code).ok_or(JsonError {
                        message: "bad \\u code point",
                        at: *pos + j,
                    })?);
                    for _ in 0..4 {
                        chars.next();
                    }
                }
                _ => {
                    return Err(JsonError {
                        message: "bad escape",
                        at: *pos + i,
                    })
                }
            },
            c => out.push(c),
        }
    }
    Err(JsonError {
        message: "unterminated string",
        at: *pos,
    })
}

/// Looks up a string field.
#[must_use]
pub fn get_str<'a>(fields: &'a [(String, JsonValue)], key: &str) -> Option<&'a str> {
    fields.iter().find_map(|(k, v)| match v {
        JsonValue::Str(s) if k == key => Some(s.as_str()),
        _ => None,
    })
}

/// Looks up an unsigned integer field (exact, not via `f64`).
#[must_use]
pub fn get_u64(fields: &[(String, JsonValue)], key: &str) -> Option<u64> {
    fields.iter().find_map(|(k, v)| match v {
        JsonValue::Raw(raw) if k == key => raw.parse().ok(),
        _ => None,
    })
}

/// Looks up a float field; the strings `"inf"`, `"-inf"` and `"nan"`
/// decode to the corresponding non-finite values.
#[must_use]
pub fn get_f64(fields: &[(String, JsonValue)], key: &str) -> Option<f64> {
    fields.iter().find_map(|(k, v)| {
        if k != key {
            return None;
        }
        match v {
            JsonValue::Raw(raw) => raw.parse().ok(),
            JsonValue::Str(s) => match s.as_str() {
                "inf" => Some(f64::INFINITY),
                "-inf" => Some(f64::NEG_INFINITY),
                "nan" => Some(f64::NAN),
                _ => None,
            },
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_renders_flat_objects() {
        let mut obj = JsonObject::new();
        obj.field_str("a", "x\"y\\z\n")
            .field_u64("b", u64::MAX)
            .field_f64("c", 0.1);
        assert_eq!(
            obj.finish(),
            r#"{"a":"x\"y\\z\n","b":18446744073709551615,"c":0.1}"#
        );
        assert_eq!(JsonObject::new().finish(), "{}");
    }

    #[test]
    fn floats_round_trip_exactly() {
        for x in [
            0.1,
            1.0 / 3.0,
            1e-300,
            123_456.789_012_345,
            f64::MIN_POSITIVE,
        ] {
            let mut obj = JsonObject::new();
            obj.field_f64("x", x);
            let fields = parse_object(&obj.finish()).unwrap();
            assert_eq!(get_f64(&fields, "x").unwrap().to_bits(), x.to_bits());
        }
    }

    #[test]
    fn non_finite_floats_become_tagged_strings() {
        let mut obj = JsonObject::new();
        obj.field_f64("a", f64::INFINITY)
            .field_f64("b", f64::NEG_INFINITY)
            .field_f64("c", f64::NAN);
        let text = obj.finish();
        assert_eq!(text, r#"{"a":"inf","b":"-inf","c":"nan"}"#);
        let fields = parse_object(&text).unwrap();
        assert_eq!(get_f64(&fields, "a"), Some(f64::INFINITY));
        assert_eq!(get_f64(&fields, "b"), Some(f64::NEG_INFINITY));
        assert!(get_f64(&fields, "c").unwrap().is_nan());
    }

    #[test]
    fn parser_round_trips_escapes_and_integers() {
        let mut obj = JsonObject::new();
        obj.field_str("s", "line1\nline2\ttab \"quoted\" \\slash")
            .field_u64("n", 9_007_199_254_740_993); // above 2^53: lossy via f64
        let fields = parse_object(&obj.finish()).unwrap();
        assert_eq!(
            get_str(&fields, "s"),
            Some("line1\nline2\ttab \"quoted\" \\slash")
        );
        assert_eq!(get_u64(&fields, "n"), Some(9_007_199_254_740_993));
    }

    #[test]
    fn parser_handles_unicode_escapes_and_whitespace() {
        let fields = parse_object(" { \"k\" : \"a\\u0007b\" , \"n\" : 3 } ").unwrap();
        assert_eq!(get_str(&fields, "k"), Some("a\u{7}b"));
        assert_eq!(get_u64(&fields, "n"), Some(3));
        assert!(parse_object("{}").unwrap().is_empty());
    }

    #[test]
    fn parser_rejects_malformed_lines() {
        for bad in [
            "",
            "[1]",
            "{\"a\":}",
            "{\"a\":1",
            "{\"a\" 1}",
            "{\"a\":{\"b\":1}}",
            "{\"a\":1}x",
            "{\"a\":\"unterminated}",
        ] {
            assert!(parse_object(bad).is_err(), "accepted {bad:?}");
        }
    }
}
