//! Two-phase cross-shard tenant handoff with conservation accounting.
//!
//! Rebalancing moves a whole tenant — controller, channel, telemetry —
//! from the most-loaded shard to the least-loaded one. The move is two
//! deterministic phases, one epoch apart:
//!
//! 1. **Retire** (end of epoch `E`): the tenant's slot leaves its source
//!    shard. Its counter snapshot is taken and the admission conservation
//!    law (`admitted + retry_admitted == active + departed + shed`) is
//!    verified before the tenant goes into transit.
//! 2. **Install** (start of epoch `E + 2`): the slot joins the target
//!    shard. The counters are re-verified against the retire snapshot —
//!    a tenant in transit must process nothing — and conservation is
//!    checked again. The tenant's stream, stalled while parked, resumes
//!    pumping into the new shard.
//!
//! The rebalance latency is therefore exactly one epoch of virtual time,
//! and the migration cost is the state carried across the boundary: the
//! tenant's active requests plus its pending retries.

use nfv_controller::ControllerReport;
use nfv_workload::TenantId;

use crate::shard::{Shard, TenantSlot};
use crate::FleetError;

/// One completed cross-shard migration.
#[derive(Debug, Clone, PartialEq)]
pub struct MigrationRecord {
    /// The tenant moved.
    pub tenant: TenantId,
    /// Source shard id.
    pub from: usize,
    /// Target shard id.
    pub to: usize,
    /// The epoch at whose end the tenant left the source shard.
    pub retired_epoch: u64,
    /// The epoch at whose start the tenant joined the target shard.
    pub installed_epoch: u64,
    /// Active requests carried across the boundary.
    pub carried_active: u64,
    /// Pending retry entries carried across the boundary.
    pub carried_retry: u64,
    /// Virtual seconds between retire and install (one epoch).
    pub latency: f64,
}

/// A tenant in transit between shards.
#[derive(Debug)]
struct Parked {
    slot: TenantSlot,
    snapshot: ControllerReport,
    record: MigrationRecord,
}

/// The ownership layer: tracks the (at most one) tenant in transit and
/// the completed migration history.
#[derive(Debug, Default)]
pub struct HandoffLayer {
    parked: Option<Parked>,
    records: Vec<MigrationRecord>,
}

/// Checks the admission conservation law on one tenant's counters.
fn check_conservation(
    tenant: TenantId,
    phase: &'static str,
    report: &ControllerReport,
) -> Result<(), FleetError> {
    if report.admitted + report.retry_admitted == report.active + report.departed + report.shed {
        Ok(())
    } else {
        Err(FleetError::ConservationViolated { tenant, phase })
    }
}

impl HandoffLayer {
    /// Whether no tenant is currently in transit.
    #[must_use]
    pub fn idle(&self) -> bool {
        self.parked.is_none()
    }

    /// The parked tenant's counter snapshot, for fleet-wide totals while
    /// it is in transit.
    #[must_use]
    pub fn parked_report(&self) -> Option<&ControllerReport> {
        self.parked.as_ref().map(|p| &p.snapshot)
    }

    /// Completed migrations, oldest first.
    #[must_use]
    pub fn records(&self) -> &[MigrationRecord] {
        &self.records
    }

    /// Phase 1 at the end of `epoch`: pick the most-loaded shard (by
    /// cumulative events processed; lowest id on ties), the least-loaded
    /// shard likewise, and move the source's busiest tenant into transit.
    /// No-op (`Ok(false)`) when the fleet is already balanced, the source
    /// holds a single tenant, or a tenant is already parked.
    ///
    /// # Errors
    ///
    /// [`FleetError::ConservationViolated`] if the retiring tenant's
    /// counters do not balance.
    pub fn initiate(
        &mut self,
        shards: &mut [Shard],
        epoch: u64,
        epoch_len: f64,
    ) -> Result<bool, FleetError> {
        if !self.idle() || shards.len() < 2 {
            return Ok(false);
        }
        let busiest = |best: Option<usize>, (id, s): (usize, &Shard)| match best {
            Some(b) if shards[b].processed() >= s.processed() => Some(b),
            _ => Some(id),
        };
        let from = shards
            .iter()
            .enumerate()
            .filter(|(_, s)| s.tenants() > 1)
            .fold(None, busiest);
        let Some(from) = from else {
            return Ok(false);
        };
        let to = shards
            .iter()
            .enumerate()
            .map(|(id, s)| (s.processed(), id))
            .min() // lowest processed, lowest id on ties
            .map(|(_, id)| id)
            .unwrap_or(from);
        if from == to || shards[from].processed() == shards[to].processed() {
            return Ok(false);
        }
        // Busiest tenant of the source shard, lowest id on ties (slots
        // are tenant-id sorted, so the first maximum is the lowest id).
        let tenant = {
            let slots = shards[from].slots();
            let mut best = slots[0].tenant();
            let mut best_processed = slots[0].processed();
            for slot in &slots[1..] {
                if slot.processed() > best_processed {
                    best = slot.tenant();
                    best_processed = slot.processed();
                }
            }
            best
        };
        let Some(slot) = shards[from].retire(tenant) else {
            // The busiest tenant was just read off the source shard's
            // slots, so a miss means the ownership view desynced (a fault
            // path retired it underneath us). Typed error, never a panic.
            return Err(FleetError::HandoffDesynced {
                tenant,
                shard: from,
            });
        };
        let snapshot = slot.report();
        check_conservation(tenant, "retire", &snapshot)?;
        let record = MigrationRecord {
            tenant,
            from,
            to,
            retired_epoch: epoch,
            installed_epoch: epoch + 2,
            carried_active: snapshot.active,
            carried_retry: snapshot.retry_pending,
            latency: epoch_len,
        };
        self.parked = Some(Parked {
            slot,
            snapshot,
            record,
        });
        Ok(true)
    }

    /// Phase 2 at the start of `epoch`: if the parked tenant is due,
    /// verify it crossed the boundary untouched and install it on its
    /// target shard. Returns the tenant installed, if any.
    ///
    /// # Errors
    ///
    /// [`FleetError::ConservationViolated`] if the counters moved while
    /// parked or no longer balance.
    pub fn install_due(
        &mut self,
        shards: &mut [Shard],
        epoch: u64,
    ) -> Result<Option<TenantId>, FleetError> {
        let Some(parked) = self.parked.take_if(|p| p.record.installed_epoch == epoch) else {
            return Ok(None);
        };
        let tenant = parked.record.tenant;
        let now = parked.slot.report();
        if now != parked.snapshot {
            return Err(FleetError::ConservationViolated {
                tenant,
                phase: "transit",
            });
        }
        check_conservation(tenant, "install", &now)?;
        shards[parked.record.to].install(parked.slot);
        self.records.push(parked.record);
        Ok(Some(tenant))
    }
}
