//! The retry/backoff admission queue: refused arrivals wait here for
//! another chance.
//!
//! Everything is virtual-time and seeded. The backoff delay of attempt
//! `n` is `min(base · factor^n, max) · (1 + jitter · (2u − 1))` with `u`
//! a deterministic uniform draw hashed from `(seed, request id, n)` — no
//! ambient randomness, so same-seed runs re-offer at bit-identical times
//! regardless of thread count.

use std::collections::BTreeMap;

use nfv_model::{Request, VnfId};

use crate::RetryConfig;

#[derive(Debug, Clone, PartialEq)]
struct Entry {
    attempt: u32,
    request: Request,
}

/// A virtual-time priority queue of pending re-offers, ordered by due
/// time (enqueue order breaks exact ties).
///
/// Keys are `(due_time.to_bits(), sequence)`: for non-negative finite
/// times the IEEE-754 bit pattern orders exactly like the number, which
/// keeps the map's order total without any float comparator.
#[derive(Debug, Clone, PartialEq, Default)]
pub(crate) struct RetryQueue {
    entries: BTreeMap<(u64, u64), Entry>,
    seq: u64,
}

impl RetryQueue {
    /// Number of requests waiting for a re-offer.
    pub(crate) fn len(&self) -> usize {
        self.entries.len()
    }

    /// Enqueues a re-offer of `request` as attempt number `attempt`
    /// (0-based), due one backoff delay after `now`. Returns `false` —
    /// without enqueuing — when the retry budget is exhausted or the
    /// queue is full; the request is then abandoned for good.
    pub(crate) fn schedule(
        &mut self,
        config: &RetryConfig,
        request: Request,
        attempt: u32,
        now: f64,
    ) -> bool {
        if attempt >= config.max_attempts || self.entries.len() >= config.max_queue {
            return false;
        }
        let due = now + backoff_delay(config, request.id().as_usize() as u64, attempt);
        let key = (due.to_bits(), self.seq);
        self.seq += 1;
        self.entries.insert(key, Entry { attempt, request });
        true
    }

    /// Removes and returns the earliest entry due at or before `upto` as
    /// `(due_time, attempt, request)`, or `None` when nothing is due yet.
    pub(crate) fn pop_due(&mut self, upto: f64) -> Option<(f64, u32, Request)> {
        let (&(bits, seq), _) = self.entries.first_key_value()?;
        let due = f64::from_bits(bits);
        if due > upto {
            return None;
        }
        let entry = self
            .entries
            .remove(&(bits, seq))
            .expect("first key was just observed");
        Some((due, entry.attempt, entry.request))
    }

    /// Total loss-inflated rate of the queued requests whose chain
    /// traverses `vnf` — backlog the re-placement targets provision for,
    /// since this traffic re-offers as soon as capacity returns.
    pub(crate) fn pending_rate(&self, vnf: VnfId) -> f64 {
        self.entries
            .values()
            .filter(|e| e.request.uses(vnf))
            .map(|e| e.request.effective_rate().value())
            .sum()
    }
}

/// The (jittered) backoff delay of the 0-based `attempt` for request
/// `id`.
fn backoff_delay(config: &RetryConfig, id: u64, attempt: u32) -> f64 {
    let exponent = i32::try_from(attempt).unwrap_or(i32::MAX);
    let base = (config.base_backoff * config.factor.powi(exponent)).min(config.max_backoff);
    let u = unit_hash(
        config
            .seed
            .wrapping_add(id.wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .wrapping_add(u64::from(attempt)),
    );
    base * (1.0 + config.jitter * (2.0 * u - 1.0))
}

/// SplitMix64 finalizer mapped to a uniform draw in `[0, 1)`.
fn unit_hash(mut x: u64) -> f64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    (x >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use nfv_model::{ArrivalRate, DeliveryProbability, RequestId, ServiceChain};

    fn request(id: u32) -> Request {
        Request::new(
            RequestId::new(id),
            ServiceChain::single(VnfId::new(0)),
            ArrivalRate::new(1.0).unwrap(),
            DeliveryProbability::PERFECT,
        )
    }

    fn config() -> RetryConfig {
        RetryConfig::bounded()
    }

    #[test]
    fn backoff_grows_exponentially_and_caps() {
        let c = RetryConfig {
            jitter: 0.0,
            ..config()
        };
        let d0 = backoff_delay(&c, 1, 0);
        let d1 = backoff_delay(&c, 1, 1);
        let d2 = backoff_delay(&c, 1, 2);
        assert!((d0 - c.base_backoff).abs() < 1e-12);
        assert!((d1 - c.base_backoff * c.factor).abs() < 1e-12);
        assert!((d2 - c.base_backoff * c.factor * c.factor).abs() < 1e-12);
        let late = backoff_delay(&c, 1, 30);
        assert!((late - c.max_backoff).abs() < 1e-12, "delay saturates");
    }

    #[test]
    fn jitter_is_bounded_and_deterministic() {
        let c = config();
        for id in 0..50u64 {
            for attempt in 0..4u32 {
                let d = backoff_delay(&c, id, attempt);
                let nominal = (c.base_backoff * c.factor.powi(attempt as i32)).min(c.max_backoff);
                assert!(d >= nominal * (1.0 - c.jitter) - 1e-12);
                assert!(d <= nominal * (1.0 + c.jitter) + 1e-12);
                assert_eq!(d, backoff_delay(&c, id, attempt), "pure function");
            }
        }
        // Different requests jitter differently (with overwhelming
        // probability for any sane hash).
        assert_ne!(backoff_delay(&c, 1, 0), backoff_delay(&c, 2, 0));
    }

    #[test]
    fn pop_due_returns_entries_in_due_order() {
        let c = RetryConfig {
            jitter: 0.0,
            ..config()
        };
        let mut q = RetryQueue::default();
        // Attempt 1 (4 s) scheduled before attempt 0 (2 s): the earlier
        // due time still pops first.
        assert!(q.schedule(&c, request(1), 1, 0.0));
        assert!(q.schedule(&c, request(2), 0, 0.0));
        assert_eq!(q.len(), 2);
        assert!(q.pop_due(1.0).is_none(), "nothing due yet");
        let (due, attempt, r) = q.pop_due(10.0).unwrap();
        assert_eq!((attempt, r.id()), (0, RequestId::new(2)));
        assert!((due - 2.0).abs() < 1e-12);
        let (due, attempt, r) = q.pop_due(10.0).unwrap();
        assert_eq!((attempt, r.id()), (1, RequestId::new(1)));
        assert!((due - 4.0).abs() < 1e-12);
        assert_eq!(q.len(), 0);
    }

    #[test]
    fn budget_and_capacity_refuse_entrants() {
        let c = RetryConfig {
            max_attempts: 2,
            max_queue: 2,
            ..config()
        };
        let mut q = RetryQueue::default();
        assert!(!q.schedule(&c, request(1), 2, 0.0), "budget exhausted");
        assert!(q.schedule(&c, request(1), 0, 0.0));
        assert!(q.schedule(&c, request(2), 0, 0.0));
        assert!(!q.schedule(&c, request(3), 0, 0.0), "queue full");
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn pending_rate_sums_only_traversing_requests() {
        let c = config();
        let mut q = RetryQueue::default();
        q.schedule(&c, request(1), 0, 0.0);
        q.schedule(&c, request(2), 0, 0.0);
        assert!((q.pending_rate(VnfId::new(0)) - 2.0).abs() < 1e-12);
        assert_eq!(q.pending_rate(VnfId::new(1)), 0.0);
    }
}
