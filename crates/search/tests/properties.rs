//! Property tests of the anytime searcher: feasibility of everything it
//! emits and monotonicity of the best-so-far objective.

use nfv_model::{Capacity, ComputeNode, Demand, NodeId, ServiceRate, Vnf, VnfId, VnfKind};
use nfv_placement::{Placement, PlacementProblem};
use nfv_search::{search, SearchConfig, SearchRun};
use proptest::prelude::*;

/// A feasibility-guaranteed instance: node capacities cover the total
/// demand with slack and every VNF fits alone on the largest node.
fn instance(nodes: usize, demands: &[f64]) -> PlacementProblem {
    let total: f64 = demands.iter().sum();
    let cap = (total / nodes as f64) * 2.5 + demands.iter().fold(0.0f64, |a, &b| a.max(b));
    let nodes = (0..nodes)
        .map(|i| ComputeNode::new(NodeId::new(i as u32), Capacity::new(cap).unwrap()))
        .collect();
    let vnfs = demands
        .iter()
        .enumerate()
        .map(|(i, &d)| {
            Vnf::builder(VnfId::new(i as u32), VnfKind::Custom(i as u16))
                .demand_per_instance(Demand::new(d).unwrap())
                .service_rate(ServiceRate::new(100.0).unwrap())
                .build()
                .unwrap()
        })
        .collect();
    PlacementProblem::new(nodes, vnfs).unwrap()
}

proptest! {
    /// Every placement the searcher hands back — GA or PSO, any seed —
    /// passes the placement validator.
    #[test]
    fn emitted_placements_always_validate(
        seed in 0u64..5_000,
        nodes in 2usize..6,
        demands in proptest::collection::vec(5.0f64..80.0, 2..9),
        engine in 0usize..2,
    ) {
        let problem = instance(nodes, &demands);
        let mut config = if engine == 0 { SearchConfig::ga(seed) } else { SearchConfig::pso(seed) };
        config.population = 8;
        let outcome = search(&problem, &config, 4).unwrap();
        Placement::validate(&problem, outcome.best_assignment()).unwrap();
        outcome.best_placement(&problem).unwrap();
    }

    /// The best-so-far objective never worsens from one generation to the
    /// next, both in the live run and in the recorded history.
    #[test]
    fn best_so_far_is_monotone_non_increasing(
        seed in 0u64..5_000,
        nodes in 2usize..6,
        demands in proptest::collection::vec(5.0f64..80.0, 2..9),
        engine in 0usize..2,
    ) {
        let problem = instance(nodes, &demands);
        let mut config = if engine == 0 { SearchConfig::ga(seed) } else { SearchConfig::pso(seed) };
        config.population = 8;
        let mut run = SearchRun::new(&problem, &config).unwrap();
        let mut last = run.best_fitness();
        for _ in 0..6 {
            let best = run.step();
            prop_assert!(best <= last, "{best} after {last}");
            last = best;
        }
        let outcome = run.into_outcome();
        for pair in outcome.history().windows(2) {
            prop_assert!(pair[1] <= pair[0]);
        }
    }
}
