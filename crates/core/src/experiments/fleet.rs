//! The fleet experiment: hundreds of tenant controllers in one process.
//!
//! The paper's evaluation is one cluster; the fleet experiment asks what
//! happens when 8, 64, or 256 independent tenant optimizations share a
//! process and a thread pool ([`nfv_fleet::run`]): how much state the
//! cross-shard rebalancer moves, how long a handoff parks a tenant in
//! virtual time, and — measured by the bench harness, not here — how
//! many events per wall-clock second the sharded loop sustains.
//!
//! Everything this module reports is virtual-time or counter data, so
//! the sweep is deterministic: same seed, same table, at any thread
//! count (pinned by the `thread_invariance` tests).

use nfv_fleet::{FleetError, FleetOutcome, FleetSpec};

use super::Sweep;

/// The fleet sizes of the experiment: `(tenants, shards)` at 8, 64, and
/// 256 tenants.
#[must_use]
pub fn fleet_sizes() -> Vec<(usize, usize)> {
    vec![(8, 2), (64, 8), (256, 16)]
}

/// The spec used for one fleet point: a deliberately small per-tenant
/// workload (the fleet axis is the tenant count, not the tenant size)
/// with an aggressive rebalance cadence so every point exercises the
/// handoff path.
#[must_use]
pub fn fleet_spec(tenants: usize, shards: usize, seed: u64) -> FleetSpec {
    FleetSpec {
        tenants,
        shards,
        vnfs: 3,
        requests: 8,
        horizon: 30.0,
        arrival_rate: 0.4,
        mean_holding: 8.0,
        tick_period: 15.0,
        epoch: 6.0,
        channel_capacity: 32,
        rebalance_every: 1,
        seed,
        telemetry: true,
        // Tighter than the smoke default (0.05s): the fleet points run
        // per-tenant balanced latencies of ~2–14ms, so a 10ms SLO keeps
        // the violation counter live in the experiment tables.
        slo_latency: 0.01,
        ..FleetSpec::smoke()
    }
}

/// The shard count paired with `tenants` in [`fleet_sizes`], or the
/// same 16-tenants-per-shard proportion (minimum 2 shards) for sizes
/// outside the standard sweep.
#[must_use]
pub fn shards_for(tenants: usize) -> usize {
    fleet_sizes()
        .into_iter()
        .find_map(|(t, s)| (t == tenants).then_some(s))
        .unwrap_or_else(|| (tenants / 16).max(2))
}

/// Runs one fleet point.
///
/// # Errors
///
/// Propagates any [`FleetError`] from the loop (spec validation,
/// workload generation, shard panics, conservation violations).
pub fn run_fleet_point(
    tenants: usize,
    shards: usize,
    seed: u64,
) -> Result<FleetOutcome, FleetError> {
    nfv_fleet::run(&fleet_spec(tenants, shards, seed))
}

/// Runs one fleet point with the observability plane toggled — the
/// `false` side is the "plain" baseline the bench harness prices the
/// plane against.
///
/// # Errors
///
/// Propagates any [`FleetError`] from the loop.
pub fn run_fleet_point_observed(
    tenants: usize,
    shards: usize,
    seed: u64,
    observability: bool,
) -> Result<FleetOutcome, FleetError> {
    nfv_fleet::run(&FleetSpec {
        observability,
        ..fleet_spec(tenants, shards, seed)
    })
}

/// Sweeps the fleet sizes and tabulates the deterministic columns:
/// events processed, admissions, sheds, completed migrations, total
/// migration cost (requests + retries carried across shards), and the
/// mean rebalance latency in virtual seconds.
///
/// # Errors
///
/// Propagates the first failing point's [`FleetError`].
pub fn fleet_sweep(seed: u64) -> Result<Sweep, FleetError> {
    let mut sweep = Sweep::new(
        "tenants",
        vec![
            "shards".into(),
            "events".into(),
            "admitted".into(),
            "shed".into(),
            "migrations".into(),
            "migration cost (reqs)".into(),
            "rebalance latency (s)".into(),
        ],
    );
    for (tenants, shards) in fleet_sizes() {
        let outcome = run_fleet_point(tenants, shards, seed)?;
        let report = &outcome.report;
        sweep.push(
            tenants as f64,
            vec![
                shards as f64,
                report.events as f64,
                report.admitted as f64,
                report.shed as f64,
                report.migrations as f64,
                report.migration_cost as f64,
                report.mean_rebalance_latency,
            ],
        );
    }
    Ok(sweep)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smallest_point_migrates_and_conserves() {
        let outcome = run_fleet_point(8, 2, 7).unwrap();
        let report = &outcome.report;
        assert!(report.events > 0);
        assert!(
            report.migrations > 0,
            "the fleet point must exercise handoff"
        );
        assert_eq!(
            report.admitted + report.retry_admitted,
            report.active + report.departed + report.shed
        );
        assert!(report.mean_rebalance_latency > 0.0);
        assert!(!outcome.artifacts.journal_jsonl().is_empty());
    }

    #[test]
    fn sweep_rows_match_the_size_grid() {
        // Only the smallest point: the sweep itself is exercised by the
        // figures path and the thread-invariance pins.
        let outcome = run_fleet_point(8, 2, 3).unwrap();
        assert_eq!(outcome.report.tenants, 8);
        assert_eq!(outcome.report.shards, 2);
        assert_eq!(fleet_sizes().len(), 3);
        assert_eq!(fleet_sizes()[2], (256, 16));
    }
}
