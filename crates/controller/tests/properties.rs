//! Cross-crate invariants tying the controller to the offline pipeline.

use nfv_controller::{Controller, ControllerConfig, ControllerState, ReoptConfig, ShedPolicy};
use nfv_model::{ArrivalRate, Capacity, ComputeNode, DeliveryProbability, NodeId, RequestId};
use nfv_placement::{Bfdsu, Placement, PlacementProblem, Placer};
use nfv_scheduling::{OnlineDispatcher, Rckk, Scheduler};
use nfv_workload::churn::ChurnTraceBuilder;
use nfv_workload::{Scenario, ScenarioBuilder, ServiceRatePolicy};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn scenario(seed: u64) -> Scenario {
    ScenarioBuilder::new()
        .vnfs(5)
        .requests(40)
        .service_rate_policy(ServiceRatePolicy::ScaledToLoad {
            target_utilization: 0.6,
        })
        .seed(seed)
        .build()
        .unwrap()
}

/// With no churn and re-optimization disabled, the controller is exactly
/// an online least-loaded dispatcher per VNF: replaying each VNF's
/// requests (arrival = id order) through [`OnlineDispatcher`] with their
/// loss-inflated rates reproduces the controller's assignment.
#[test]
fn pure_arrival_run_matches_online_least_loaded() {
    for seed in [11u64, 12, 13] {
        let s = scenario(seed);
        let trace = ChurnTraceBuilder::new().horizon(10.0).build(&s).unwrap();
        let mut controller = Controller::new(&s, ControllerConfig::online_only());
        let report = controller.run_trace(&trace);
        assert_eq!(report.rejected, 0, "scenario must have admission headroom");

        for vnf in s.vnfs() {
            let mut dispatcher = OnlineDispatcher::new(vnf.instances() as usize).unwrap();
            for request in s.requests().iter().filter(|r| r.uses(vnf.id())) {
                let expected = dispatcher.dispatch(request.effective_rate());
                assert_eq!(
                    controller.state().home_of(vnf.id(), request.id()),
                    Some(expected),
                    "seed {seed}, {} on {}",
                    request.id(),
                    vnf.id(),
                );
            }
        }
    }
}

/// Zero churn plus a single (forced) re-optimization tick lands every VNF
/// on exactly the assignment the offline RCKK scheduler computes from the
/// same raw rates.
#[test]
fn zero_churn_single_tick_matches_offline_rckk() {
    for seed in [21u64, 22, 23] {
        let s = scenario(seed);
        let trace = ChurnTraceBuilder::new()
            .horizon(10.0)
            .tick_period(5.0)
            .build(&s)
            .unwrap();
        // Force the plan through regardless of predicted gain so the test
        // checks the *assignment*, not the hysteresis.
        let config = ControllerConfig {
            shed: ShedPolicy::RejectArrival,
            reopt: Some(ReoptConfig {
                min_gain: f64::NEG_INFINITY,
                max_migrations: usize::MAX,
            }),
            ..ControllerConfig::online_only()
        };
        let mut controller = Controller::new(&s, config);
        let report = controller.run_trace(&trace);
        assert_eq!(report.rejected, 0);
        assert!(report.reopts_applied >= 1 || report.reopts_skipped >= 1);

        for vnf in s.vnfs() {
            let requests: Vec<_> = s.requests().iter().filter(|r| r.uses(vnf.id())).collect();
            if requests.is_empty() {
                continue;
            }
            let rates: Vec<_> = requests.iter().map(|r| r.arrival_rate()).collect();
            let schedule = Rckk::new()
                .schedule(&rates, vnf.instances() as usize)
                .unwrap();
            for (i, request) in requests.iter().enumerate() {
                assert_eq!(
                    controller.state().home_of(vnf.id(), request.id()),
                    Some(schedule.instance_of(i)),
                    "seed {seed}, {} on {}",
                    request.id(),
                    vnf.id(),
                );
            }
        }
    }
}

/// Two controller runs over traces built from the same seed produce
/// identical reports, snapshot for snapshot and byte for byte.
#[test]
fn same_seed_runs_are_identical() {
    let run = || {
        let s = scenario(31);
        let trace = ChurnTraceBuilder::new()
            .horizon(120.0)
            .arrival_rate(0.6)
            .mean_holding(25.0)
            .tick_period(30.0)
            .outage_rate(0.02)
            .mean_outage(8.0)
            .seed(7)
            .build(&s)
            .unwrap();
        let mut controller = Controller::new(&s, ControllerConfig::periodic_reopt());
        let report = controller.run_trace(&trace);
        (report, controller.snapshots().to_vec())
    };
    let (report_a, snaps_a) = run();
    let (report_b, snaps_b) = run();
    assert_eq!(report_a, report_b);
    assert_eq!(snaps_a, snaps_b);
    assert_eq!(report_a.render(), report_b.render());
}

/// Replaying a *foreign* trace — one generated for a bigger scenario
/// with more VNFs, more instances per VNF, and node-level outages the
/// cluster-free controller has never heard of — must never panic: the
/// unknown coordinates surface as typed rejections and stale-event
/// counts, and admission conservation still balances.
#[test]
fn foreign_trace_replay_is_rejected_typed_not_a_panic() {
    let small = scenario(61);
    let big = ScenarioBuilder::new()
        .vnfs(12)
        .requests(120)
        .service_rate_policy(ServiceRatePolicy::ScaledToLoad {
            target_utilization: 0.6,
        })
        .seed(62)
        .build()
        .unwrap();
    let trace = ChurnTraceBuilder::new()
        .horizon(80.0)
        .arrival_rate(1.0)
        .mean_holding(15.0)
        .tick_period(20.0)
        .outage_rate(0.08)
        .mean_outage(5.0)
        .node_fleet(4)
        .node_mtbf(40.0)
        .node_mttr(10.0)
        .seed(63)
        .build(&big)
        .unwrap();
    let mut controller = Controller::new(&small, ControllerConfig::periodic_reopt());
    for event in trace.events() {
        controller.handle(event);
    }
    let report = controller.report();
    // Chains crossing VNFs the small scenario does not deploy are
    // refused with `RejectReason::UnknownVnf`, not an index panic.
    assert!(report.rejected > 0, "foreign chains must be refused");
    // Outages naming unknown instances/nodes are counted stale.
    assert!(report.stale_outage_events > 0, "foreign outages are stale");
    assert_eq!(
        report.admitted + report.retry_admitted,
        report.active + report.departed + report.shed,
        "conservation must survive a foreign trace"
    );
}

/// A node fleet roomy enough that placement never fails for capacity
/// reasons, plus an initial BFDSU placement of the scenario's fleet.
fn cluster_for(s: &Scenario, nodes: usize) -> (Vec<ComputeNode>, Placement) {
    let total: f64 = s.vnfs().iter().map(|v| v.total_demand().value()).sum();
    let fleet: Vec<ComputeNode> = (0..nodes)
        .map(|i| ComputeNode::new(NodeId::new(i as u32), Capacity::new(total * 2.0).unwrap()))
        .collect();
    let problem = PlacementProblem::new(fleet.clone(), s.vnfs().to_vec()).unwrap();
    let mut rng = StdRng::seed_from_u64(7);
    let placement = Bfdsu::new()
        .place(&problem, &mut rng)
        .unwrap()
        .into_placement();
    (fleet, placement)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Any interleaving of arrivals, departures, instance outages, and
    /// (possibly overlapping) node outages keeps every admitted request
    /// homed on exactly one *up* instance per chain hop, and failover /
    /// shedding never double-counts: admissions (first-offer + retry)
    /// always balance active + departed + shed exactly.
    #[test]
    fn outage_interleavings_keep_requests_on_up_instances(seed in 0u64..512) {
        let s = scenario(47);
        let trace = ChurnTraceBuilder::new()
            .horizon(120.0)
            .arrival_rate(0.8)
            .mean_holding(20.0)
            .tick_period(30.0)
            .outage_rate(0.05)
            .mean_outage(6.0)
            .node_fleet(4)
            .node_mtbf(60.0)
            .node_mttr(15.0)
            .seed(seed)
            .build(&s)
            .unwrap();
        let (nodes, placement) = cluster_for(&s, 4);
        let mut controller =
            Controller::with_cluster(&s, nodes, &placement, ControllerConfig::resilient())
                .unwrap();
        // Chain of every request the run can ever hold: the base
        // population plus the trace's churn arrivals.
        let mut chains: std::collections::BTreeMap<RequestId, Vec<nfv_model::VnfId>> = s
            .requests()
            .iter()
            .map(|r| (r.id(), r.chain().as_slice().to_vec()))
            .collect();
        for event in trace.events() {
            if let nfv_workload::churn::ChurnEvent::Arrival(r) = event.event() {
                chains.insert(r.id(), r.chain().as_slice().to_vec());
            }
        }
        for event in trace.events() {
            controller.handle(event);
            let state = controller.state();
            let mut active: std::collections::BTreeSet<RequestId> =
                std::collections::BTreeSet::new();
            let mut homed = 0u64;
            for vnf in s.vnfs() {
                for id in state.active_ids(vnf.id()) {
                    let home = state.home_of(vnf.id(), id);
                    prop_assert!(home.is_some(), "{id} on {} has a home", vnf.id());
                    prop_assert!(
                        state.is_up(vnf.id(), home.unwrap()),
                        "{id} rides a down instance of {} after {event:?}",
                        vnf.id(),
                    );
                    active.insert(id);
                    homed += 1;
                }
            }
            // Every active request occupies exactly one instance per hop
            // of its chain — no hop dropped, none double-homed (homes are
            // map entries, so two homes on one VNF are impossible; the
            // count ties each id to *all* of its hops exactly once).
            let hops: u64 = active
                .iter()
                .map(|id| chains.get(id).expect("trace request").len() as u64)
                .sum();
            prop_assert_eq!(homed, hops, "hop occupancy mismatch after {:?}", event);
            let report = controller.report();
            prop_assert_eq!(report.active, active.len() as u64);
            prop_assert_eq!(
                report.admitted + report.retry_admitted,
                report.active + report.departed + report.shed,
                "conservation broken after {:?}",
                event,
            );
        }
    }

    /// `add_request` followed by `remove_request` restores the ledger
    /// bit-for-bit, including the cached f64 sums, even on top of a
    /// populated state.
    #[test]
    fn add_then_remove_restores_ledger(
        rate in 0.01f64..5.0,
        delivery in 0.5f64..1.0,
        vnf_pick in 0usize..64,
        instance_pick in 0usize..64,
    ) {
        let s = scenario(41);
        let mut state = ControllerState::new(&s);
        for request in s.requests() {
            for &vnf in request.chain() {
                let k = state.least_loaded_up(vnf).unwrap();
                state
                    .add_request(vnf, k, request.id(), request.arrival_rate(), request.delivery())
                    .unwrap();
            }
        }
        let before = state.clone();

        let vnf = s.vnfs()[vnf_pick % s.vnfs().len()].id();
        let k = instance_pick % state.instances(vnf);
        let id = RequestId::new(55_555);
        state
            .add_request(
                vnf,
                k,
                id,
                ArrivalRate::new(rate).unwrap(),
                DeliveryProbability::new(delivery).unwrap(),
            )
            .unwrap();
        prop_assert_eq!(state.home_of(vnf, id), Some(k));
        prop_assert_eq!(state.remove_request(vnf, id), Some(k));
        prop_assert_eq!(state, before);
    }

    /// The try-apply-measure-undo discipline of the re-placement phase
    /// relies on every ledger mutation having an exact inverse: a random
    /// interleaving of up/down toggles, request moves between instances,
    /// and instance additions, undone in reverse order, restores the
    /// ledger `==` bit-for-bit (cached f64 sums included).
    #[test]
    fn interleaved_mutations_undo_to_identity(
        // Each op is packed into one word: kind in the low bits, then
        // three 16-bit operand fields (the vendored proptest has no tuple
        // strategy inside `vec`).
        packed in prop::collection::vec(0u64..u64::MAX, 1..40),
    ) {
        let ops: Vec<(u8, usize, usize, usize)> = packed
            .iter()
            .map(|&w| {
                (
                    (w % 3) as u8,
                    ((w >> 2) & 0xFFFF) as usize,
                    ((w >> 18) & 0xFFFF) as usize,
                    ((w >> 34) & 0xFFFF) as usize,
                )
            })
            .collect();
        let s = scenario(43);
        let mut state = ControllerState::new(&s);
        for request in s.requests() {
            for &vnf in request.chain() {
                let k = state.least_loaded_up(vnf).unwrap();
                state
                    .add_request(vnf, k, request.id(), request.arrival_rate(), request.delivery())
                    .unwrap();
            }
        }
        let before = state.clone();

        enum Undo {
            SetUp(nfv_model::VnfId, usize, bool),
            MoveBack(nfv_model::VnfId, RequestId, usize),
            Retire(nfv_model::VnfId),
        }
        let mut undo: Vec<Undo> = Vec::new();
        for &(kind, a, b, c) in &ops {
            let vnf = s.vnfs()[a % s.vnfs().len()].id();
            match kind {
                0 => {
                    // Toggle an instance's up flag.
                    let k = b % state.instances(vnf);
                    let was = state.is_up(vnf, k);
                    state.set_up(vnf, k, !was);
                    undo.push(Undo::SetUp(vnf, k, was));
                }
                1 => {
                    // Move one request of the VNF to another instance
                    // (exactly what re-placement drains do).
                    let ids = state.active_ids(vnf);
                    if ids.is_empty() {
                        continue;
                    }
                    let id = ids[b % ids.len()];
                    let origin = state.home_of(vnf, id).unwrap();
                    let target = c % state.instances(vnf);
                    if target == origin {
                        continue;
                    }
                    let request = s.requests().iter().find(|r| r.id() == id).unwrap();
                    state.remove_request(vnf, id);
                    state
                        .add_request(vnf, target, id, request.arrival_rate(), request.delivery())
                        .unwrap();
                    undo.push(Undo::MoveBack(vnf, id, origin));
                }
                _ => {
                    state.add_instance(vnf).unwrap();
                    undo.push(Undo::Retire(vnf));
                }
            }
            // The incrementally maintained balanced-latency aggregate must
            // track every mutation bit for bit against the from-scratch
            // oracle (the hysteresis probes compare raw floats, so "close"
            // is not good enough).
            prop_assert_eq!(
                state.balanced_latency().to_bits(),
                state.balanced_latency_from_scratch().to_bits()
            );
        }
        for op in undo.into_iter().rev() {
            match op {
                Undo::SetUp(vnf, k, was) => state.set_up(vnf, k, was),
                Undo::MoveBack(vnf, id, origin) => {
                    let request = s.requests().iter().find(|r| r.id() == id).unwrap();
                    state.remove_request(vnf, id);
                    state
                        .add_request(vnf, origin, id, request.arrival_rate(), request.delivery())
                        .unwrap();
                }
                Undo::Retire(vnf) => {
                    state.retire_instance(vnf).unwrap();
                }
            }
        }
        prop_assert_eq!(
            state.balanced_latency().to_bits(),
            state.balanced_latency_from_scratch().to_bits()
        );
        prop_assert_eq!(state, before);
    }
}
