//! Churn experiment: online control-plane policies under a streaming
//! trace.
//!
//! The offline experiments ask how good an assignment the pipeline finds
//! for a frozen request set; this one asks how well it can be *kept* while
//! the set churns. One scenario and one seeded [`ChurnTrace`] are replayed
//! through three controller policies:
//!
//! * **online-only** — least-loaded dispatch with strict admission
//!   control, never migrating;
//! * **periodic-reopt** — the same dispatch, plus a bounded RCKK re-balance
//!   on every tick ([`ReoptConfig::bounded`]: hysteresis on the predicted
//!   latency gain, a per-tick migration budget);
//! * **offline-oracle** — adopts the full fresh RCKK assignment on every
//!   tick, an upper bound on re-balancing aggressiveness (and migration
//!   churn).
//!
//! The interesting ordering, which the `figures churn` subcommand asserts
//! by printing it: periodic-reopt recovers most of the oracle's latency
//! advantage over pure online dispatch while migrating far less.

use nfv_controller::{Controller, ControllerConfig, ControllerReport};
use nfv_metrics::Table;
use nfv_parallel::par_map;
use nfv_workload::churn::{ChurnTrace, ChurnTraceBuilder};
use nfv_workload::{Scenario, ScenarioBuilder, ServiceRatePolicy};
use serde::{Deserialize, Serialize};

use crate::CoreError;

/// Parameters of one churn run (scenario shape + trace dynamics).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChurnPoint {
    /// Number of VNF types in the scenario.
    pub vnfs: usize,
    /// Base request population present at `t = 0`.
    pub base_requests: usize,
    /// Utilization a perfectly balanced base population would induce.
    pub target_utilization: f64,
    /// Virtual-time horizon of the trace, seconds.
    pub horizon: f64,
    /// Poisson rate of churn arrivals, requests per second.
    pub arrival_rate: f64,
    /// Mean exponential holding time of every request, seconds.
    pub mean_holding: f64,
    /// Re-optimization tick period, seconds.
    pub tick_period: f64,
    /// Poisson rate of instance outages, outages per second.
    pub outage_rate: f64,
    /// Mean exponential outage duration, seconds.
    pub mean_outage: f64,
}

impl ChurnPoint {
    /// The default configuration: a moderately loaded fleet under heavy
    /// request churn with occasional instance outages.
    #[must_use]
    pub fn base() -> Self {
        Self {
            vnfs: 6,
            base_requests: 60,
            target_utilization: 0.85,
            horizon: 300.0,
            arrival_rate: 2.0,
            mean_holding: 30.0,
            tick_period: 25.0,
            outage_rate: 0.01,
            mean_outage: 10.0,
        }
    }
}

/// One policy's end-of-run result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChurnOutcome {
    /// Policy name (`online-only`, `periodic-reopt`, `offline-oracle`).
    pub policy: String,
    /// The controller's final report at the horizon.
    pub report: ControllerReport,
}

/// The three policies' results over the same scenario and trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChurnComparison {
    /// The run parameters.
    pub point: ChurnPoint,
    /// Base seed used for scenario and trace generation.
    pub seed: u64,
    /// One outcome per policy, in `[online-only, periodic-reopt,
    /// offline-oracle]` order.
    pub outcomes: Vec<ChurnOutcome>,
}

impl ChurnComparison {
    /// The outcome of one policy by name.
    #[must_use]
    pub fn outcome(&self, policy: &str) -> Option<&ChurnOutcome> {
        self.outcomes.iter().find(|o| o.policy == policy)
    }

    /// Renders the comparison as a plain-text table: one row per policy
    /// with time-weighted mean response time, migrations by cause,
    /// rejection rate and shed count.
    #[must_use]
    pub fn to_table(&self) -> Table {
        let mut table = Table::new(vec![
            "policy",
            "mean W (ms)",
            "migrations",
            "  failover",
            "  reopt",
            "rejected (%)",
            "shed",
            "reopts applied/skipped",
        ]);
        for outcome in &self.outcomes {
            let r = &outcome.report;
            table.row(vec![
                outcome.policy.clone(),
                format!("{:.4}", r.mean_latency * 1e3),
                format!("{}", r.migrated()),
                format!("{}", r.migrated_failover),
                format!("{}", r.migrated_reopt),
                format!("{:.2}", r.rejection_rate() * 100.0),
                format!("{}", r.shed),
                format!("{}/{}", r.reopts_applied, r.reopts_skipped),
            ]);
        }
        table
    }
}

/// Builds the scenario and trace for a point. Exposed so benches and
/// examples replay exactly the experiment's inputs.
pub fn setup(point: &ChurnPoint, seed: u64) -> Result<(Scenario, ChurnTrace), CoreError> {
    let scenario = ScenarioBuilder::new()
        .vnfs(point.vnfs)
        .requests(point.base_requests)
        .service_rate_policy(ServiceRatePolicy::ScaledToLoad {
            target_utilization: point.target_utilization,
        })
        .seed(seed)
        .build()?;
    let trace = ChurnTraceBuilder::new()
        .horizon(point.horizon)
        .arrival_rate(point.arrival_rate)
        .mean_holding(point.mean_holding)
        .tick_period(point.tick_period)
        .outage_rate(point.outage_rate)
        .mean_outage(point.mean_outage)
        .seed(seed.wrapping_add(1))
        .build(&scenario)?;
    Ok((scenario, trace))
}

/// Replays one seeded trace through the three policies.
pub fn run(point: &ChurnPoint, seed: u64) -> Result<ChurnComparison, CoreError> {
    let (scenario, trace) = setup(point, seed)?;
    let policies = vec![
        ("online-only", ControllerConfig::online_only()),
        ("periodic-reopt", ControllerConfig::periodic_reopt()),
        ("offline-oracle", ControllerConfig::offline_oracle()),
    ];
    // The three policies replay the same borrowed trace independently, so
    // they fan out on the worker pool; results come back in policy order.
    let outcomes = par_map(policies, |_, (name, config)| {
        let mut controller = Controller::new(&scenario, config);
        let report = controller.run_trace(&trace);
        ChurnOutcome {
            policy: name.to_string(),
            report,
        }
    })
    .map_err(CoreError::from)?;
    Ok(ChurnComparison {
        point: *point,
        seed,
        outcomes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn three_policies_share_the_trace() {
        let comparison = run(&ChurnPoint::base(), 1).unwrap();
        assert_eq!(comparison.outcomes.len(), 3);
        let online = &comparison.outcome("online-only").unwrap().report;
        let oracle = &comparison.outcome("offline-oracle").unwrap().report;
        // Same trace: every policy sees the same offered load.
        for outcome in &comparison.outcomes {
            assert_eq!(
                outcome.report.admitted + outcome.report.rejected,
                online.admitted + online.rejected
            );
            assert!(outcome.report.peak_utilization < 1.0);
        }
        assert_eq!(online.migrated_reopt, 0);
        assert!(oracle.reopts_applied > 0);
    }

    #[test]
    fn reopt_recovers_latency_with_bounded_migrations() {
        let comparison = run(&ChurnPoint::base(), 1).unwrap();
        let online = &comparison.outcome("online-only").unwrap().report;
        let reopt = &comparison.outcome("periodic-reopt").unwrap().report;
        let oracle = &comparison.outcome("offline-oracle").unwrap().report;
        assert!(
            reopt.mean_latency < online.mean_latency,
            "periodic reopt must beat pure online dispatch: {} vs {}",
            reopt.mean_latency,
            online.mean_latency
        );
        assert!(
            reopt.migrated() < oracle.migrated(),
            "bounded reopt must migrate less than the oracle: {} vs {}",
            reopt.migrated(),
            oracle.migrated()
        );
    }

    #[test]
    fn same_seed_comparisons_are_identical() {
        let a = run(&ChurnPoint::base(), 3).unwrap();
        let b = run(&ChurnPoint::base(), 3).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.to_table().to_string(), b.to_table().to_string());
    }
}
