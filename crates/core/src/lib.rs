//! Joint optimization of VNF chain placement and request scheduling.
//!
//! This crate is the top of the workspace: it wires the substrates —
//! workload generation ([`nfv_workload`]), topologies ([`nfv_topology`]),
//! queueing analytics ([`nfv_queueing`]), placement ([`nfv_placement`]) and
//! scheduling ([`nfv_scheduling`]) — into the two-phase pipeline of
//! *"Joint Optimization of Chain Placement and Request Scheduling for
//! Network Function Virtualization"* (ICDCS 2017):
//!
//! 1. **Placement** (default [`nfv_placement::Bfdsu`]): assign every VNF
//!    with all its service instances to a computing node, maximizing the
//!    average utilization of nodes in service (Eq. (13)/(14));
//! 2. **Scheduling** (default [`nfv_scheduling::Rckk`]): for each VNF,
//!    distribute its requests over its `M_f` instances, minimizing the
//!    average M/M/1 response time (Eq. (15)).
//!
//! The combined [`JointSolution`] evaluates the paper's joint objective
//! Eq. (16): per request, the sum of response times at its assigned
//! instances plus `(#nodes traversed − 1) · L` of inter-node communication
//! latency.
//!
//! The [`experiments`] module contains the parameterized runners that
//! regenerate every figure of the paper's evaluation (see `EXPERIMENTS.md`
//! at the workspace root and the `nfv-bench` crate's `figures` binary).
//!
//! # Examples
//!
//! ```
//! use nfv_core::JointOptimizer;
//! use nfv_topology::builders;
//! use nfv_workload::ScenarioBuilder;
//! use rand::SeedableRng;
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let scenario = ScenarioBuilder::new().vnfs(6).requests(40).seed(1).build()?;
//! let topology = builders::star()
//!     .hosts(8)
//!     .capacity_range(1000.0, 5000.0, 7)
//!     .build()?;
//! let mut rng = rand::rngs::StdRng::seed_from_u64(42);
//! let solution = JointOptimizer::new().optimize(&scenario, &topology, &mut rng)?;
//! println!("nodes in service: {}", solution.placement().nodes_in_service());
//! println!("avg total latency: {:.6}s", solution.objective()?.average_total_latency());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
pub mod experiments;
mod objective;
mod optimizer;
mod solution;

pub use error::CoreError;
pub use objective::JointObjective;
pub use optimizer::JointOptimizer;
pub use solution::JointSolution;
