#!/usr/bin/env bash
# Tier-1 gate: formatting, lints, and the full test suite.
# Usage: ./ci.sh
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo clippy (workspace, all targets, deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo test (facade + workspace) =="
cargo test -q
cargo test -q --workspace

echo "== thread-count invariance (experiment results at 1/2/8 threads) =="
cargo test -q -p nfv-core --test thread_invariance

echo "== node-failure domains (total-loss, overlap, stale accounting, outage interleavings) =="
cargo test -q -p nfv-controller --test node_failure
cargo test -q -p nfv-controller --test properties outage_interleavings

echo "== queueing formula guards (rho >= 1 stays an error, never a number) =="
cargo test -q -p nfv-queueing rho_

echo "== cargo build --release =="
cargo build --release

echo "== churn figure (joint re-placement must beat scheduling-only when saturated) =="
cargo run -q --release -p nfv-bench --bin figures -- churn

echo "== resilience figure (emergency re-placement + retries must beat tick-only recovery) =="
cargo run -q --release -p nfv-bench --bin figures -- resilience

echo "ci: all green"
