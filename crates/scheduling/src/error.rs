//! Error type for scheduling.

use std::error::Error;
use std::fmt;

use nfv_queueing::QueueingError;

/// Error returned when a schedule cannot be constructed or evaluated.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SchedulingError {
    /// No service instances to schedule onto (`M_f = 0`).
    NoInstances,
    /// No requests to schedule (`R_f = ∅`).
    NoRequests,
    /// An assignment referenced an instance index `≥ M_f`.
    InstanceOutOfRange {
        /// The offending instance index.
        instance: usize,
        /// The number of instances `M_f`.
        instances: usize,
    },
    /// A schedule evaluation hit an unstable instance (`ρ ≥ 1`); admission
    /// control (see [`nfv_queueing::admission`]) is the intended remedy.
    Queueing(QueueingError),
}

impl fmt::Display for SchedulingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::NoInstances => write!(f, "no service instances to schedule onto"),
            Self::NoRequests => write!(f, "no requests to schedule"),
            Self::InstanceOutOfRange {
                instance,
                instances,
            } => {
                write!(
                    f,
                    "instance index {instance} out of range for {instances} instances"
                )
            }
            Self::Queueing(err) => write!(f, "queueing evaluation failed: {err}"),
        }
    }
}

impl Error for SchedulingError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            Self::Queueing(err) => Some(err),
            _ => None,
        }
    }
}

impl From<QueueingError> for SchedulingError {
    fn from(err: QueueingError) -> Self {
        Self::Queueing(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queueing_errors_chain() {
        let err: SchedulingError = QueueingError::Unstable {
            arrival: 10.0,
            service: 5.0,
        }
        .into();
        assert!(err.source().is_some());
        assert!(err.to_string().contains("unstable"));
    }

    #[test]
    fn display_is_concise() {
        assert_eq!(
            SchedulingError::NoRequests.to_string(),
            "no requests to schedule"
        );
    }
}
