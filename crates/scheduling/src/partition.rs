//! Internal Karmarkar–Karp partition machinery shared by [`crate::Rckk`],
//! [`crate::KkForward`] and [`crate::Ckk`].

use std::cmp::Ordering;

/// A (normalized) `m`-way partial partition: position `i` carries the
/// normalized rate sum `values[i]` and the set of request indices
/// `sets[i]` currently assigned to that position. Values are kept sorted in
/// descending order, with the smallest (always 0 after normalization) last
/// — exactly the representation of Algorithm 2 in the paper.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct Partition {
    values: Vec<f64>,
    sets: Vec<Vec<usize>>,
}

impl Partition {
    /// The initial partition of one request: `(λ_r, 0, …, 0)` with the
    /// request alone in the first position's set.
    pub(crate) fn singleton(rate: f64, request: usize, positions: usize) -> Self {
        debug_assert!(positions >= 1);
        let mut values = vec![0.0; positions];
        values[0] = rate;
        let mut sets = vec![Vec::new(); positions];
        sets[0].push(request);
        Self { values, sets }
    }

    /// The partition's largest (first-position) value, the sort key of the
    /// `Partition_list`.
    pub(crate) fn first(&self) -> f64 {
        self.values[0]
    }

    /// Number of positions `m`.
    pub(crate) fn positions(&self) -> usize {
        self.values.len()
    }

    /// The (normalized) value at position `i`.
    pub(crate) fn value_at(&self, i: usize) -> f64 {
        self.values[i]
    }

    /// Combines two partitions position-wise through `pairing`, where
    /// position `i` of the result takes `a[i] + b[pairing[i]]`, then resorts
    /// descending and normalizes by subtracting the smallest value
    /// (Algorithm 2, steps 3–5).
    pub(crate) fn combine_with_pairing(&self, other: &Self, pairing: &[usize]) -> Self {
        debug_assert_eq!(self.positions(), other.positions());
        debug_assert_eq!(pairing.len(), self.positions());
        let mut merged: Vec<(f64, Vec<usize>)> = (0..self.positions())
            .map(|i| {
                let j = pairing[i];
                let mut set = self.sets[i].clone();
                set.extend_from_slice(&other.sets[j]);
                (self.values[i] + other.values[j], set)
            })
            .collect();
        merged.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(Ordering::Equal));
        let floor = merged.last().map_or(0.0, |(v, _)| *v);
        let (values, sets): (Vec<f64>, Vec<Vec<usize>>) =
            merged.into_iter().map(|(v, s)| (v - floor, s)).unzip();
        Self { values, sets }
    }

    /// Reverse-order combination (the paper's RCKK step): largest against
    /// smallest, `new[i] = a[i] + b[m−1−i]`.
    pub(crate) fn combine_reverse(&self, other: &Self) -> Self {
        let m = self.positions();
        let pairing: Vec<usize> = (0..m).map(|i| m - 1 - i).collect();
        self.combine_with_pairing(other, &pairing)
    }

    /// Forward-order combination (ablation): largest against largest,
    /// `new[i] = a[i] + b[i]`.
    pub(crate) fn combine_forward(&self, other: &Self) -> Self {
        let m = self.positions();
        let pairing: Vec<usize> = (0..m).collect();
        self.combine_with_pairing(other, &pairing)
    }

    /// Consumes the final partition, producing the per-request instance
    /// assignment (`assignment[r] = k`) for `n` requests.
    pub(crate) fn into_assignment(self, requests: usize) -> Vec<usize> {
        let mut assignment = vec![0usize; requests];
        for (instance, set) in self.sets.into_iter().enumerate() {
            for request in set {
                assignment[request] = instance;
            }
        }
        assignment
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singleton_layout() {
        let p = Partition::singleton(5.0, 3, 4);
        assert_eq!(p.first(), 5.0);
        assert_eq!(p.positions(), 4);
        assert_eq!(p.into_assignment(4), vec![0, 0, 0, 0]);
    }

    #[test]
    fn reverse_combination_balances() {
        // (8,0) + (5,0) reversed: (8+0, 0+5) = (8,5) -> normalized (3,0).
        let a = Partition::singleton(8.0, 0, 2);
        let b = Partition::singleton(5.0, 1, 2);
        let c = a.combine_reverse(&b);
        assert_eq!(c.first(), 3.0);
        // Request 0 in the heavy position, request 1 in the light one.
        let assignment = c.into_assignment(2);
        assert_ne!(assignment[0], assignment[1]);
    }

    #[test]
    fn forward_combination_stacks() {
        // (8,0) + (5,0) forward: (13, 0) -> normalized (13, 0).
        let a = Partition::singleton(8.0, 0, 2);
        let b = Partition::singleton(5.0, 1, 2);
        let c = a.combine_forward(&b);
        assert_eq!(c.first(), 13.0);
        let assignment = c.into_assignment(2);
        assert_eq!(assignment[0], assignment[1]);
    }

    #[test]
    fn normalization_keeps_smallest_at_zero() {
        let a = Partition::singleton(10.0, 0, 3);
        let b = Partition::singleton(4.0, 1, 3);
        let c = a.combine_reverse(&b);
        assert_eq!(*c.values.last().unwrap(), 0.0);
        assert!(c.values.windows(2).all(|w| w[0] >= w[1]));
    }

    #[test]
    fn sets_follow_their_values_through_sorting() {
        // Three-way: a=(9,0,0) with req0; b=(7,0,0) with req1.
        // Reverse: (9+0, 0+0, 0+7) = (9,0,7) -> sorted (9,7,0) -> (9-0,7-0,0).
        let a = Partition::singleton(9.0, 0, 3);
        let b = Partition::singleton(7.0, 1, 3);
        let c = a.combine_reverse(&b);
        assert_eq!(c.values, vec![9.0, 7.0, 0.0]);
        let assignment = c.clone().into_assignment(2);
        // req0 sits in position 0, req1 in position 1.
        assert_eq!(assignment, vec![0, 1]);
    }
}
