//! Regression test for the deterministic parallel sweep engine: every
//! experiment runner must produce bit-identical results at any thread
//! count, because per-trial seeds are derived from `(base seed, trial
//! index)` and per-trial results are folded back in input order.
//!
//! The test drives the process-wide default thread count through 1, 2 and
//! 8 and pins byte-identical CSV/table renderings. It must run in its own
//! test binary (this file) so no concurrently running test observes the
//! temporary thread-count overrides.

use std::sync::Mutex;

use nfv_core::experiments::{
    anytime, chaos, churn, fleet, joint, placement, resilience, scheduling, validation,
};
use nfv_parallel::set_default_threads;
use nfv_search::{search, SearchConfig};

/// Serializes the tests in this binary: they all mutate the process-wide
/// default thread count, so they must not interleave.
static THREAD_COUNT_LOCK: Mutex<()> = Mutex::new(());

/// Runs `f` once per thread count and asserts all renderings match the
/// serial one byte for byte.
fn assert_invariant<F: Fn() -> String>(what: &str, f: F) {
    let _guard = THREAD_COUNT_LOCK
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner());
    set_default_threads(1);
    let serial = f();
    for threads in [2usize, 8] {
        set_default_threads(threads);
        let parallel = f();
        assert_eq!(
            serial, parallel,
            "{what} differs between 1 and {threads} threads"
        );
    }
    set_default_threads(0);
}

#[test]
fn placement_sweep_is_thread_count_invariant() {
    assert_invariant("placement fig5 sweep", || {
        placement::fig5_utilization_vs_requests(3, 42)
            .unwrap()
            .to_csv()
    });
}

#[test]
fn scheduling_sweeps_are_thread_count_invariant() {
    assert_invariant("scheduling fig11 sweep", || {
        scheduling::fig11_12_response_vs_requests(0.98, 20, 42)
            .unwrap()
            .to_csv()
    });
    assert_invariant("scheduling fig15 sweep", || {
        scheduling::fig15_16_rejection_vs_requests(0.98, 20, 42)
            .unwrap()
            .to_csv()
    });
}

#[test]
fn joint_comparison_is_thread_count_invariant() {
    assert_invariant("joint comparison", || {
        format!(
            "{:?}",
            joint::run_comparison(&joint::JointConfig::base(), 3, 42).unwrap()
        )
    });
}

#[test]
fn validation_rows_are_thread_count_invariant() {
    assert_invariant("single-station validation", || {
        format!(
            "{:?}",
            validation::validate_single_station(50.0, 100.0, 1.0, 42).unwrap()
        )
    });
}

#[test]
fn churn_comparison_is_thread_count_invariant() {
    assert_invariant("churn comparison", || {
        churn::run(&churn::ChurnPoint::base(), 42)
            .unwrap()
            .to_table()
            .to_string()
    });
    // The saturated point exercises the bounded re-placement phase (grows,
    // shrinks and relocations), so pin it too.
    assert_invariant("saturated churn comparison", || {
        churn::run(&churn::ChurnPoint::saturated(), 42)
            .unwrap()
            .to_table()
            .to_string()
    });
}

#[test]
fn resilience_comparison_is_thread_count_invariant() {
    // Node outages, emergency re-placement and the seeded retry queue are
    // all virtual-time driven, so the four-policy comparison must render
    // bit-identically at any thread count.
    assert_invariant("resilience comparison", || {
        resilience::run(&resilience::ResiliencePoint::base(), 42)
            .unwrap()
            .to_table()
            .to_string()
    });
    // The racked point fails correlated pairs of nodes together.
    assert_invariant("racked resilience comparison", || {
        resilience::run(&resilience::ResiliencePoint::racked(), 42)
            .unwrap()
            .to_table()
            .to_string()
    });
}

#[test]
fn search_engines_are_thread_count_invariant() {
    // The population evaluation fans out over the worker pool with
    // per-individual RNG streams derived from `(seed, generation·pop +
    // i)`, so the full trajectory — best assignment, fitness history and
    // evaluation count — must render bit-identically at 1, 2 and 8
    // threads.
    for (name, config) in [("ga", SearchConfig::ga(42)), ("pso", SearchConfig::pso(42))] {
        assert_invariant(&format!("{name} search on the Pareto instance"), || {
            let problem = anytime::bench_problem(42).unwrap();
            let outcome = search(&problem, &config, 15).unwrap();
            format!(
                "{:?}\n{:?}\n{}",
                outcome.best_assignment(),
                outcome.history(),
                outcome.evaluations()
            )
        });
    }
}

#[test]
fn anytime_experiments_are_thread_count_invariant() {
    assert_invariant("anytime quality-vs-generations sweep", || {
        anytime::quality_vs_generations(2, 42).unwrap().to_csv()
    });
    // The refiner replay runs searches *inside* the controller tick loop
    // while the two policies themselves replay on the worker pool.
    assert_invariant("refiner churn replay", || {
        anytime::refiner_replay(42).unwrap().to_table().to_string()
    });
}

#[test]
fn fleet_experiment_is_thread_count_invariant() {
    // The fleet loop alternates a serial pump phase with a parallel drain
    // phase over the worker pool; shards fold back in shard-id order and
    // journals merge in shard order, so every report, every epoch record,
    // every migration and the merged journal must be byte-identical at 1,
    // 2 and 8 threads. The spec leaves `threads: 0` so the loop picks up
    // the process-wide default this harness drives.
    assert_invariant("fleet point (8 tenants / 2 shards) + journal", || {
        let outcome = fleet::run_fleet_point(8, 2, 42).unwrap();
        format!(
            "{:?}\n{:?}\n{:?}\n{:?}\n{}",
            outcome.report,
            outcome.epoch_records,
            outcome.migrations,
            outcome.tenant_reports,
            outcome.artifacts.journal_jsonl()
        )
    });
    // The acceptance-scale point: 256 tenants in one process.
    assert_invariant("fleet point (256 tenants / 16 shards) + journal", || {
        let outcome = fleet::run_fleet_point(256, 16, 42).unwrap();
        format!(
            "{:?}\n{:?}\n{}",
            outcome.report,
            outcome.migrations,
            outcome.artifacts.journal_jsonl()
        )
    });
    // And the figure table the sweep renders.
    assert_invariant("fleet sweep table", || {
        fleet::fleet_sweep(42).unwrap().to_table(2).to_string()
    });
}

#[test]
fn chaos_recovery_is_thread_count_invariant_and_byte_identical() {
    // The acceptance pin for crash recovery: a fleet run disturbed by a
    // seeded plan of recoverable faults — shard-worker panics mid-drain,
    // tenant crashes at epoch boundaries, channel drops/duplicates, and
    // injected conservation corruption — repaired through epoch
    // checkpoints + event replay, must (a) be bit-identical at 1, 2 and
    // 8 threads, chaos journal included, and (b) produce a byte-identical
    // merged journal, fleet report, and epoch records to the undisturbed
    // run at every thread count.
    use nfv_fleet::{run, run_with_faults, FaultPlan, FaultRates};
    let spec = chaos::chaos_spec(42);
    let plan = FaultPlan::seeded(
        42,
        spec.epochs() as usize,
        spec.shards,
        spec.tenants as u32,
        &FaultRates::recoverable(0.3),
    );
    assert_invariant("faulted fleet run at seed 42 + recovery", || {
        let baseline = run(&spec).unwrap();
        let faulted = run_with_faults(&spec, &plan).unwrap();
        assert!(
            faulted.recovery.faults_injected > 0,
            "the seeded plan must actually disturb the run: {:?}",
            faulted.recovery
        );
        assert_eq!(faulted.report, baseline.report, "fleet report");
        assert_eq!(
            faulted.epoch_records, baseline.epoch_records,
            "epoch records"
        );
        assert_eq!(
            faulted.tenant_reports, baseline.tenant_reports,
            "tenant reports"
        );
        assert_eq!(
            faulted.artifacts.journal_jsonl(),
            baseline.artifacts.journal_jsonl(),
            "merged journal byte-identical under recovery"
        );
        format!(
            "{:?}\n{:?}\n{:?}\n{}\n{}",
            faulted.report,
            faulted.epoch_records,
            faulted.recovery,
            faulted.artifacts.journal_jsonl(),
            faulted.chaos_artifacts.journal_jsonl()
        )
    });
    // And the figure table the chaos sweep renders.
    assert_invariant("chaos sweep table", || {
        chaos::chaos_sweep(42).unwrap().to_table(3).to_string()
    });
}

#[test]
fn observability_registry_dumps_are_thread_count_invariant() {
    // The acceptance pin for the observability plane: per-shard
    // registries merge in shard-id order, so the fleet registry's text,
    // Prometheus and JSON dumps — and the per-tenant latency
    // percentiles and SLO counter derived alongside them — must be
    // byte-identical at 1, 2 and 8 threads.
    assert_invariant("fleet registry dump (8 tenants / 2 shards)", || {
        let outcome = fleet::run_fleet_point(8, 2, 42).unwrap();
        format!(
            "{}\n{}\n{}\n{:?}\n{}",
            outcome.registry.to_text(),
            outcome.registry.to_prometheus(),
            outcome.registry.to_json(),
            outcome.report.tenant_latency,
            outcome.report.slo_violations
        )
    });
    assert_invariant("fleet registry dump (256 tenants / 16 shards)", || {
        let outcome = fleet::run_fleet_point(256, 16, 42).unwrap();
        format!(
            "{}\n{:?}\n{}",
            outcome.registry.to_text(),
            outcome.report.tenant_latency,
            outcome.report.slo_violations
        )
    });
    // The chaos point adds the flight recorder: quarantine postmortems
    // must dump byte-identically too.
    assert_invariant("quarantine postmortem dumps", || {
        chaos::quarantine_postmortems(42)
            .unwrap()
            .iter()
            .map(nfv_telemetry::Postmortem::render)
            .collect::<Vec<_>>()
            .join("\n")
    });
}

#[test]
fn telemetry_is_inert_and_invariant_across_thread_counts() {
    // The instrumented runs must (a) return results byte-identical to the
    // plain runs — telemetry is a strict observer — and (b) merge the
    // per-policy journals into the same byte-identical JSONL at 1, 2 and
    // 8 threads, because artifacts are folded in policy order regardless
    // of which worker replayed which policy.
    assert_invariant("instrumented churn comparison + journal", || {
        let plain = churn::run(&churn::ChurnPoint::base(), 42).unwrap();
        let (instrumented, artifacts) =
            churn::run_instrumented(&churn::ChurnPoint::base(), 42).unwrap();
        assert_eq!(plain, instrumented, "telemetry on vs off");
        format!(
            "{}\n{}\n{}",
            instrumented.to_table(),
            artifacts.journal_jsonl(),
            artifacts.series.to_csv()
        )
    });
    assert_invariant("instrumented resilience comparison + journal", || {
        let plain = resilience::run(&resilience::ResiliencePoint::base(), 42).unwrap();
        let (instrumented, artifacts) =
            resilience::run_instrumented(&resilience::ResiliencePoint::base(), 42).unwrap();
        assert_eq!(plain, instrumented, "telemetry on vs off");
        format!(
            "{}\n{}\n{}",
            instrumented.to_table(),
            artifacts.journal_jsonl(),
            artifacts.series.to_csv()
        )
    });
}
