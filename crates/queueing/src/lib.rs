//! Open Jackson network analytics for NFV service chains.
//!
//! This crate implements §III.B of *"Joint Optimization of Chain Placement
//! and Request Scheduling for NFV"* (ICDCS 2017). Each service instance of a
//! VNF is an M/M/1 station ([`Mm1Queue`]); flows of multiple requests merging
//! at a shared instance sum their rates (Kleinrock approximation,
//! [`InstanceLoad`]); packets lost end-to-end with probability `1 − P_r` are
//! retransmitted, inflating every per-request rate from `λ_r` to `λ_r / P_r`
//! (Burke's theorem applied to the loss feedback loop, Eq. (7)); and a
//! request's expected response time is the sum of the per-visit M/M/1
//! response times along its chain, scaled by the expected number of
//! end-to-end transmission rounds `1 / P_r` ([`ChainResponse`], Eqs.
//! (11)–(12)).
//!
//! Instances that would be pushed to `ρ ≥ 1` are handled by the
//! [`admission`] module: an admission controller drops whole requests to
//! keep every station strictly stable, yielding the paper's *job rejection
//! rate* metric.
//!
//! # Examples
//!
//! Analytics for two requests sharing one instance:
//!
//! ```
//! use nfv_model::{ArrivalRate, DeliveryProbability, ServiceRate};
//! use nfv_queueing::InstanceLoad;
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut load = InstanceLoad::new(ServiceRate::new(100.0)?);
//! load.add_request(ArrivalRate::new(20.0)?, DeliveryProbability::new(0.98)?);
//! load.add_request(ArrivalRate::new(30.0)?, DeliveryProbability::new(1.0)?);
//! let q = load.queue()?; // stable M/M/1 with Λ = 20/0.98 + 30
//! assert!(q.utilization().value() < 1.0);
//! assert!(q.mean_response_time() > 0.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod admission;
mod chain;
mod error;
mod instance;
mod mm1;
mod network;

pub use chain::ChainResponse;
pub use error::QueueingError;
pub use instance::InstanceLoad;
pub use mm1::Mm1Queue;
pub use network::{JacksonNetwork, SolvedNetwork};
