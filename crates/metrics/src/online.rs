//! Streaming moment estimation.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Streaming count / mean / variance / extrema using Welford's numerically
/// stable online algorithm; O(1) memory regardless of stream length.
///
/// # Examples
///
/// ```
/// use nfv_metrics::OnlineStats;
/// let mut stats = OnlineStats::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     stats.push(x);
/// }
/// assert_eq!(stats.mean(), 5.0);
/// assert_eq!(stats.population_variance(), 4.0);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        Self {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation. Non-finite values are ignored (and not
    /// counted), so a single diverged run cannot poison a whole sweep.
    pub fn push(&mut self, x: f64) {
        if !x.is_finite() {
            return;
        }
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of (finite) observations.
    #[must_use]
    pub const fn count(&self) -> u64 {
        self.count
    }

    /// Whether no observation has been recorded.
    #[must_use]
    pub const fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Arithmetic mean; 0 for an empty accumulator.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (divides by `n`); 0 with fewer than 2 samples.
    #[must_use]
    pub fn population_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Sample variance (divides by `n − 1`); 0 with fewer than 2 samples.
    #[must_use]
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation.
    #[must_use]
    pub fn std_dev(&self) -> f64 {
        self.sample_variance().sqrt()
    }

    /// Standard error of the mean, `s/√n`.
    #[must_use]
    pub fn std_error(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.std_dev() / (self.count as f64).sqrt()
        }
    }

    /// Half-width of the ~95% normal-approximation confidence interval for
    /// the mean (`1.96 · s/√n`). For the 1000-repetition experiments of the
    /// paper the normal approximation is accurate.
    #[must_use]
    pub fn ci95_half_width(&self) -> f64 {
        1.96 * self.std_error()
    }

    /// Smallest observation; `None` when empty.
    #[must_use]
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observation; `None` when empty.
    #[must_use]
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        self.m2 +=
            other.m2 + delta * delta * (self.count as f64 * other.count as f64) / total as f64;
        self.mean += delta * other.count as f64 / total as f64;
        self.count = total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl Extend<f64> for OnlineStats {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for x in iter {
            self.push(x);
        }
    }
}

impl FromIterator<f64> for OnlineStats {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut stats = Self::new();
        stats.extend(iter);
        stats
    }
}

impl fmt::Display for OnlineStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.count == 0 {
            write!(f, "no samples")
        } else {
            write!(
                f,
                "n={} mean={:.6} sd={:.6}",
                self.count,
                self.mean(),
                self.std_dev()
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_stats_are_harmless() {
        let stats = OnlineStats::new();
        assert!(stats.is_empty());
        assert_eq!(stats.mean(), 0.0);
        assert_eq!(stats.std_dev(), 0.0);
        assert_eq!(stats.min(), None);
        assert_eq!(stats.max(), None);
        assert_eq!(stats.to_string(), "no samples");
    }

    #[test]
    fn single_sample() {
        let stats: OnlineStats = [42.0].into_iter().collect();
        assert_eq!(stats.count(), 1);
        assert_eq!(stats.mean(), 42.0);
        assert_eq!(stats.sample_variance(), 0.0);
        assert_eq!(stats.min(), Some(42.0));
        assert_eq!(stats.max(), Some(42.0));
    }

    #[test]
    fn ignores_non_finite() {
        let stats: OnlineStats = [1.0, f64::NAN, 3.0, f64::INFINITY].into_iter().collect();
        assert_eq!(stats.count(), 2);
        assert_eq!(stats.mean(), 2.0);
    }

    #[test]
    fn known_variance() {
        let stats: OnlineStats = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
            .into_iter()
            .collect();
        assert_eq!(stats.population_variance(), 4.0);
        assert!((stats.sample_variance() - 32.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn merge_of_empty_sides() {
        let full: OnlineStats = [1.0, 2.0].into_iter().collect();
        let mut a = OnlineStats::new();
        a.merge(&full);
        assert_eq!(a, full);
        let mut b = full;
        b.merge(&OnlineStats::new());
        assert_eq!(b, full);
    }

    proptest! {
        #[test]
        fn merge_equals_sequential(xs in prop::collection::vec(-1e6..1e6f64, 0..60), split in 0usize..60) {
            let split = split.min(xs.len());
            let seq: OnlineStats = xs.iter().copied().collect();
            let mut left: OnlineStats = xs[..split].iter().copied().collect();
            let right: OnlineStats = xs[split..].iter().copied().collect();
            left.merge(&right);
            prop_assert_eq!(left.count(), seq.count());
            prop_assert!((left.mean() - seq.mean()).abs() < 1e-6);
            prop_assert!((left.sample_variance() - seq.sample_variance()).abs() < 1e-3);
        }

        #[test]
        fn mean_within_extrema(xs in prop::collection::vec(-1e9..1e9f64, 1..50)) {
            let stats: OnlineStats = xs.iter().copied().collect();
            let (min, max) = (stats.min().unwrap(), stats.max().unwrap());
            prop_assert!(stats.mean() >= min - 1e-9 && stats.mean() <= max + 1e-9);
        }
    }
}
