//! Datacenter network topology substrate.
//!
//! The paper models the datacenter as a connected graph `G = (V, E)` where
//! `V` is the set of computing nodes and edges connect them through switch
//! nodes with ample capacity (§III.A). Placement and scheduling consume only
//! two things from the topology:
//!
//! * the computing nodes with their capacities `A_v`, and
//! * the communication latency `L` (propagation + transmission) between two
//!   computing nodes, which prices inter-node chain hops in the joint
//!   objective (Eq. (16)).
//!
//! This crate provides a [`Topology`] graph over compute and switch vertices,
//! parametric generators for the standard datacenter fabrics
//! ([`builders`]) covering the paper's 4–50 node sweep, and shortest-path /
//! latency queries ([`Topology::hop_count`], [`Topology::latency_between`]).
//!
//! # Examples
//!
//! ```
//! use nfv_topology::{builders, LinkDelay};
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let topo = builders::leaf_spine()
//!     .leaves(2)
//!     .spines(2)
//!     .hosts_per_leaf(4)
//!     .uniform_capacity(1000.0)
//!     .link_delay(LinkDelay::from_micros(50.0))
//!     .build()?;
//! assert_eq!(topo.compute_nodes().len(), 8);
//! assert!(topo.is_connected());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod builders;
mod delay;
mod error;
mod graph;

pub use delay::LinkDelay;
pub use error::TopologyError;
pub use graph::{Topology, Vertex, VertexKind};
