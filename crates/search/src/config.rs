//! Engine selection and search knobs.

use nfv_model::NodeId;
use serde::{Deserialize, Serialize};

use crate::FitnessWeights;

/// Which population-based engine drives the search.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Engine {
    /// Genetic algorithm: tournament selection, uniform crossover,
    /// per-gene mutation, capacity repair, elitism.
    Ga,
    /// Discrete particle swarm: per-gene reassignment probabilities
    /// toward the global best, the personal best, or a random node.
    Pso,
}

impl Engine {
    /// Stable display name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Engine::Ga => "ga",
            Engine::Pso => "pso",
        }
    }
}

/// Configuration of one search run. The defaults ([`SearchConfig::ga`],
/// [`SearchConfig::pso`]) are tuned for the paper-scale instances
/// (4–20 nodes, 5–30 VNFs); generation counts are passed separately so
/// the same configuration serves both the offline anytime runner and the
/// controller's bounded background refiner.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SearchConfig {
    /// The engine to run.
    pub engine: Engine,
    /// Individuals (or particles) per generation.
    pub population: usize,
    /// Base seed; offspring `i` of generation `g` derives its private
    /// stream from `derive_seed(seed, g·population + i)`.
    pub seed: u64,
    /// GA: tournament size of each parent selection.
    pub tournament: usize,
    /// GA: probability that a child is a uniform crossover of two
    /// parents (otherwise it clones the first parent before mutation).
    pub crossover_rate: f64,
    /// GA: per-gene probability of mutating to a random node.
    pub mutation_rate: f64,
    /// PSO: per-gene probability of snapping to the global best.
    pub social: f64,
    /// PSO: per-gene probability of snapping to the personal best.
    pub cognitive: f64,
    /// PSO: per-gene probability of re-drawing a random node (the
    /// exploration residue of the velocity; the rest is inertia).
    pub wander: f64,
    /// Weights of the balanced packing/latency objective.
    pub weights: FitnessWeights,
    /// Optional warm start: individual 0 of generation 0 starts from this
    /// assignment (the refiner seeds it with the live placement).
    pub initial: Option<Vec<NodeId>>,
}

impl SearchConfig {
    /// Default genetic-algorithm configuration.
    #[must_use]
    pub fn ga(seed: u64) -> Self {
        Self {
            engine: Engine::Ga,
            population: 32,
            seed,
            tournament: 3,
            crossover_rate: 0.9,
            mutation_rate: 0.15,
            social: 0.0,
            cognitive: 0.0,
            wander: 0.0,
            weights: FitnessWeights::default(),
            initial: None,
        }
    }

    /// Default particle-swarm configuration.
    #[must_use]
    pub fn pso(seed: u64) -> Self {
        Self {
            engine: Engine::Pso,
            population: 32,
            seed,
            tournament: 0,
            crossover_rate: 0.0,
            mutation_rate: 0.0,
            social: 0.3,
            cognitive: 0.3,
            wander: 0.05,
            weights: FitnessWeights::default(),
            initial: None,
        }
    }

    /// The same configuration warm-started from `assignment`.
    #[must_use]
    pub fn with_initial(mut self, assignment: Vec<NodeId>) -> Self {
        self.initial = Some(assignment);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engine_names_are_stable() {
        assert_eq!(Engine::Ga.name(), "ga");
        assert_eq!(Engine::Pso.name(), "pso");
    }

    #[test]
    fn presets_pick_their_engine() {
        assert_eq!(SearchConfig::ga(1).engine, Engine::Ga);
        assert_eq!(SearchConfig::pso(1).engine, Engine::Pso);
        let warm = SearchConfig::ga(1).with_initial(vec![NodeId::new(0)]);
        assert_eq!(warm.initial.as_deref(), Some(&[NodeId::new(0)][..]));
    }
}
