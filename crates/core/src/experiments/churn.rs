//! Churn experiment: online control-plane policies under a streaming
//! trace.
//!
//! The offline experiments ask how good an assignment the pipeline finds
//! for a frozen request set; this one asks how well it can be *kept* while
//! the set churns. One scenario and one seeded [`ChurnTrace`] are replayed
//! through four controller policies:
//!
//! * **online-only** — least-loaded dispatch with strict admission
//!   control, never migrating;
//! * **periodic-reopt** — the same dispatch, plus a bounded RCKK re-balance
//!   on every tick ([`ReoptConfig::bounded`]: hysteresis on the predicted
//!   latency gain, a per-tick migration budget);
//! * **offline-oracle** — adopts the full fresh RCKK assignment on every
//!   tick, an upper bound on re-balancing aggressiveness (and migration
//!   churn);
//! * **joint-reopt** — periodic-reopt plus the bounded BFDSU re-placement
//!   phase ([`ReplaceConfig::bounded`]): instance counts follow the live
//!   load via a ρ-headroom rule and the physical placement is repacked
//!   incrementally, at most `K` instance operations per tick. The only
//!   policy that knows the physical cluster
//!   ([`Controller::with_cluster`]); the scheduling-only policies keep the
//!   `t = 0` instance counts frozen.
//!
//! The interesting ordering, which the `figures churn` subcommand asserts
//! by printing it: at the moderate [`ChurnPoint::base`] load,
//! periodic-reopt recovers most of the oracle's latency advantage over
//! pure online dispatch while migrating far less; at the
//! [`ChurnPoint::saturated`] load — offered load ~3x what the frozen
//! fleet can serve — every scheduling-only policy pins near `ρ = 1` and
//! joint-reopt beats them outright by growing instances, under its
//! per-tick op budget, into the cluster's capacity headroom.

use nfv_controller::{Controller, ControllerConfig, ControllerReport};
use nfv_metrics::Table;
use nfv_model::ComputeNode;
use nfv_parallel::par_map;
use nfv_placement::{Bfd, Bfdsu, Placement, PlacementProblem, Placer};
use nfv_telemetry::{Telemetry, TelemetryArtifacts};
use nfv_topology::builders;
use nfv_workload::churn::{ChurnTrace, ChurnTraceBuilder};
use nfv_workload::{Scenario, ScenarioBuilder, ServiceRatePolicy};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::CoreError;

/// Parameters of one churn run (scenario shape + trace dynamics).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChurnPoint {
    /// Number of VNF types in the scenario.
    pub vnfs: usize,
    /// Base request population present at `t = 0`.
    pub base_requests: usize,
    /// Utilization a perfectly balanced base population would induce.
    pub target_utilization: f64,
    /// Virtual-time horizon of the trace, seconds.
    pub horizon: f64,
    /// Poisson rate of churn arrivals, requests per second.
    pub arrival_rate: f64,
    /// Mean exponential holding time of every request, seconds.
    pub mean_holding: f64,
    /// Re-optimization tick period, seconds.
    pub tick_period: f64,
    /// Poisson rate of instance outages, outages per second.
    pub outage_rate: f64,
    /// Mean exponential outage duration, seconds.
    pub mean_outage: f64,
    /// Number of computing nodes in the physical cluster (joint-reopt
    /// only; the scheduling-only policies never see the substrate).
    pub nodes: usize,
    /// Fraction of the total node capacity the `t = 0` fleet demands.
    /// Kept well below 1 so the re-placement phase has headroom to grow
    /// instances into.
    pub fill: f64,
}

impl ChurnPoint {
    /// The default configuration: a moderately loaded fleet under heavy
    /// request churn with occasional instance outages. The frozen fleet
    /// can absorb most of this load, so scheduling-only re-optimization is
    /// the main lever.
    #[must_use]
    pub fn base() -> Self {
        Self {
            vnfs: 6,
            base_requests: 60,
            target_utilization: 0.85,
            horizon: 300.0,
            arrival_rate: 2.0,
            mean_holding: 30.0,
            tick_period: 25.0,
            outage_rate: 0.01,
            mean_outage: 10.0,
            nodes: 10,
            fill: 0.45,
        }
    }

    /// A saturating configuration: the steady-state offered load is about
    /// three times what the `t = 0` fleet can serve, so scheduling-only
    /// policies pin every instance near `ρ = 1` and reject heavily while
    /// joint-reopt grows instances into the cluster's capacity headroom
    /// (`fill = 0.25` leaves ~4x room). This is the point where placement
    /// re-optimization, not request scheduling, is the binding lever.
    #[must_use]
    pub fn saturated() -> Self {
        Self {
            arrival_rate: 4.0,
            tick_period: 15.0,
            fill: 0.25,
            ..Self::base()
        }
    }
}

/// One policy's end-of-run result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChurnOutcome {
    /// Policy name (`online-only`, `periodic-reopt`, `offline-oracle`,
    /// `joint-reopt`).
    pub policy: String,
    /// The controller's final report at the horizon.
    pub report: ControllerReport,
}

/// The four policies' results over the same scenario and trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChurnComparison {
    /// The run parameters.
    pub point: ChurnPoint,
    /// Base seed used for scenario and trace generation.
    pub seed: u64,
    /// One outcome per policy, in `[online-only, periodic-reopt,
    /// offline-oracle, joint-reopt]` order.
    pub outcomes: Vec<ChurnOutcome>,
}

impl ChurnComparison {
    /// The outcome of one policy by name.
    #[must_use]
    pub fn outcome(&self, policy: &str) -> Option<&ChurnOutcome> {
        self.outcomes.iter().find(|o| o.policy == policy)
    }

    /// Renders the comparison as a plain-text table: one row per policy
    /// with time-weighted mean response time, migrations by cause,
    /// rejection rate and shed count.
    #[must_use]
    pub fn to_table(&self) -> Table {
        let mut table = Table::new(vec![
            "policy",
            "mean W (ms)",
            "migrations",
            "  failover",
            "  reopt",
            "  replace",
            "rejected (%)",
            "shed",
            "reopts applied/skipped",
            "inst +/-/moved",
            "replaces applied/aborted",
        ]);
        for outcome in &self.outcomes {
            let r = &outcome.report;
            table.row(vec![
                outcome.policy.clone(),
                format!("{:.4}", r.mean_latency * 1e3),
                format!("{}", r.migrated()),
                format!("{}", r.migrated_failover),
                format!("{}", r.migrated_reopt),
                format!("{}", r.migrated_replace),
                format!("{:.2}", r.rejection_rate() * 100.0),
                format!("{}", r.shed),
                format!("{}/{}", r.reopts_applied, r.reopts_skipped),
                format!(
                    "{}/{}/{}",
                    r.instances_added, r.instances_retired, r.relocations
                ),
                format!("{}/{}", r.replaces_applied, r.replaces_aborted),
            ]);
        }
        table
    }
}

/// Builds the scenario and trace for a point. Exposed so benches and
/// examples replay exactly the experiment's inputs.
pub fn setup(point: &ChurnPoint, seed: u64) -> Result<(Scenario, ChurnTrace), CoreError> {
    let scenario = ScenarioBuilder::new()
        .vnfs(point.vnfs)
        .requests(point.base_requests)
        .service_rate_policy(ServiceRatePolicy::ScaledToLoad {
            target_utilization: point.target_utilization,
        })
        .seed(seed)
        .build()?;
    let trace = ChurnTraceBuilder::new()
        .horizon(point.horizon)
        .arrival_rate(point.arrival_rate)
        .mean_holding(point.mean_holding)
        .tick_period(point.tick_period)
        .outage_rate(point.outage_rate)
        .mean_outage(point.mean_outage)
        .seed(seed.wrapping_add(1))
        .build(&scenario)?;
    Ok((scenario, trace))
}

/// Materializes the physical cluster for the joint policy: a random
/// connected topology with workload-scaled capacities (redrawn until the
/// deterministic BFD probe certifies feasibility, exactly as the placement
/// experiments do) plus an initial BFDSU placement of the `t = 0` fleet.
pub fn setup_cluster(
    point: &ChurnPoint,
    seed: u64,
    scenario: &Scenario,
) -> Result<(Vec<ComputeNode>, Placement), CoreError> {
    let total_demand = scenario.total_demand().value();
    let max_demand = scenario
        .vnfs()
        .iter()
        .map(|v| v.total_demand().value())
        .fold(0.0f64, f64::max);
    let (lo, hi) =
        crate::experiments::capacity_bounds(total_demand, max_demand, point.nodes, point.fill);
    let mut chosen = None;
    let mut fallback = None;
    for redraw in 0..20u64 {
        let topology = builders::random_connected()
            .nodes(point.nodes)
            .seed(seed)
            .capacity_range(lo, hi, seed ^ 0xC1D5 ^ (redraw << 48))
            .build()?;
        let problem =
            PlacementProblem::new(topology.compute_nodes().to_vec(), scenario.vnfs().to_vec())?;
        let mut probe_rng = StdRng::seed_from_u64(0);
        if Bfd::new().place(&problem, &mut probe_rng).is_ok() {
            chosen = Some(problem);
            break;
        }
        fallback = Some(problem);
    }
    let problem = chosen.or(fallback).expect("at least one draw was made");
    let mut rng = StdRng::seed_from_u64(seed ^ 0x0B1D);
    let placement = Bfdsu::new().place(&problem, &mut rng)?.into_placement();
    Ok((problem.nodes().to_vec(), placement))
}

/// Replays one seeded trace through the four policies.
pub fn run(point: &ChurnPoint, seed: u64) -> Result<ChurnComparison, CoreError> {
    run_inner(point, seed, false).map(|(comparison, _)| comparison)
}

/// [`run`] with telemetry: each policy replays under its own enabled
/// session, and the artifacts are merged in policy order (so the merged
/// journal is identical at any thread count).
pub fn run_instrumented(
    point: &ChurnPoint,
    seed: u64,
) -> Result<(ChurnComparison, TelemetryArtifacts), CoreError> {
    run_inner(point, seed, true)
}

fn run_inner(
    point: &ChurnPoint,
    seed: u64,
    instrument: bool,
) -> Result<(ChurnComparison, TelemetryArtifacts), CoreError> {
    let (scenario, trace) = setup(point, seed)?;
    let (nodes, placement) = setup_cluster(point, seed, &scenario)?;
    let controllers: Vec<(&str, Controller)> = vec![
        (
            "online-only",
            Controller::new(&scenario, ControllerConfig::online_only()),
        ),
        (
            "periodic-reopt",
            Controller::new(&scenario, ControllerConfig::periodic_reopt()),
        ),
        (
            "offline-oracle",
            Controller::new(&scenario, ControllerConfig::offline_oracle()),
        ),
        (
            "joint-reopt",
            Controller::with_cluster(
                &scenario,
                nodes,
                &placement,
                ControllerConfig::joint_reopt(),
            )?,
        ),
    ];
    // The four policies replay the same borrowed trace independently, so
    // they fan out on the worker pool; results come back in policy order.
    let results = par_map(controllers, |_, (name, mut controller)| {
        let mut tel = if instrument {
            Telemetry::enabled()
        } else {
            Telemetry::disabled()
        };
        let report = controller.run_trace_traced(&trace, &mut tel);
        (
            ChurnOutcome {
                policy: name.to_string(),
                report,
            },
            tel.finish(),
        )
    })
    .map_err(CoreError::from)?;
    let mut outcomes = Vec::with_capacity(results.len());
    let mut artifacts = TelemetryArtifacts::default();
    for (outcome, worker_artifacts) in results {
        outcomes.push(outcome);
        artifacts.merge(worker_artifacts);
    }
    Ok((
        ChurnComparison {
            point: *point,
            seed,
            outcomes,
        },
        artifacts,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_policies_share_the_trace() {
        let comparison = run(&ChurnPoint::base(), 1).unwrap();
        assert_eq!(comparison.outcomes.len(), 4);
        let online = &comparison.outcome("online-only").unwrap().report;
        let oracle = &comparison.outcome("offline-oracle").unwrap().report;
        let joint = &comparison.outcome("joint-reopt").unwrap().report;
        // Same trace: every policy sees the same offered load.
        for outcome in &comparison.outcomes {
            assert_eq!(
                outcome.report.admitted + outcome.report.rejected,
                online.admitted + online.rejected
            );
            assert!(outcome.report.peak_utilization < 1.0);
        }
        assert_eq!(online.migrated_reopt, 0);
        assert!(oracle.reopts_applied > 0);
        // Only the joint policy touches instance counts.
        for outcome in &comparison.outcomes {
            if outcome.policy != "joint-reopt" {
                assert_eq!(outcome.report.instance_ops(), 0);
            }
        }
        assert!(
            joint.replaces_applied > 0,
            "churn must trigger re-placement"
        );
        assert!(joint.instances_added > 0, "the load doubles mid-run");
    }

    #[test]
    fn joint_reopt_beats_scheduling_only_under_saturation() {
        let comparison = run(&ChurnPoint::saturated(), 1).unwrap();
        let reopt = &comparison.outcome("periodic-reopt").unwrap().report;
        let joint = &comparison.outcome("joint-reopt").unwrap().report;
        assert!(
            joint.mean_latency < reopt.mean_latency,
            "growing instances under load must beat a frozen fleet: {} vs {}",
            joint.mean_latency,
            reopt.mean_latency
        );
        assert!(
            joint.rejection_rate() <= reopt.rejection_rate(),
            "extra capacity must not reject more"
        );
    }

    #[test]
    fn joint_instance_ops_stay_within_budget_each_tick() {
        let point = ChurnPoint::saturated();
        let (scenario, trace) = setup(&point, 1).unwrap();
        let (nodes, placement) = setup_cluster(&point, 1, &scenario).unwrap();
        let config = ControllerConfig::joint_reopt();
        let k = config.replace.unwrap().max_instance_ops as u64;
        let mut controller =
            Controller::with_cluster(&scenario, nodes, &placement, config).unwrap();
        controller.run_trace(&trace);
        assert!(!controller.snapshots().is_empty());
        let mut prev = 0u64;
        for snapshot in controller.snapshots() {
            let ops = snapshot.instance_ops();
            assert!(
                ops - prev <= k,
                "tick at t={} performed {} instance ops, budget is {k}",
                snapshot.time,
                ops - prev
            );
            prev = ops;
        }
    }

    #[test]
    fn reopt_recovers_latency_with_bounded_migrations() {
        let comparison = run(&ChurnPoint::base(), 1).unwrap();
        let online = &comparison.outcome("online-only").unwrap().report;
        let reopt = &comparison.outcome("periodic-reopt").unwrap().report;
        let oracle = &comparison.outcome("offline-oracle").unwrap().report;
        assert!(
            reopt.mean_latency < online.mean_latency,
            "periodic reopt must beat pure online dispatch: {} vs {}",
            reopt.mean_latency,
            online.mean_latency
        );
        assert!(
            reopt.migrated() < oracle.migrated(),
            "bounded reopt must migrate less than the oracle: {} vs {}",
            reopt.migrated(),
            oracle.migrated()
        );
    }

    #[test]
    fn same_seed_comparisons_are_identical() {
        let a = run(&ChurnPoint::base(), 3).unwrap();
        let b = run(&ChurnPoint::base(), 3).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.to_table().to_string(), b.to_table().to_string());
    }

    #[test]
    fn instrumented_run_is_a_strict_observer() {
        let plain = run(&ChurnPoint::base(), 3).unwrap();
        let (instrumented, artifacts) = run_instrumented(&ChurnPoint::base(), 3).unwrap();
        assert_eq!(plain, instrumented, "telemetry must not change results");
        assert!(!artifacts.events.is_empty());
        // Four policies each sample every tick.
        let ticks: u64 = instrumented.outcomes.iter().map(|o| o.report.ticks).sum();
        assert_eq!(artifacts.series.len() as u64, ticks);
        for (i, event) in artifacts.events.iter().enumerate() {
            assert_eq!(event.seq, i as u64, "merged journal seq stays dense");
        }
    }
}
