//! The chaos experiment: recovery under seeded control-plane faults.
//!
//! The fleet's crash-recovery contract is that a run disturbed by
//! *recoverable* faults — shard-worker panics, tenant crashes, channel
//! drops/duplicates, live-state corruption — repaired through epoch
//! checkpoints and event replay, is **byte-identical** to the
//! undisturbed run. This experiment sweeps the per-epoch fault rate and
//! scores what that contract costs: checkpoints taken, restores
//! performed, events replayed to catch restored tenants up (the replay
//! overhead), the mean catch-up replay per restore (the virtual-time
//! analogue of recovery time), and the fraction of tenant-epochs that
//! ran undisturbed (availability). The `identical` column *verifies*
//! the contract inline: 1 when the faulted run's report, epoch records,
//! and merged journal match the fault-free baseline byte for byte.
//!
//! Everything here is counter data from deterministic runs, so the
//! sweep is reproducible at any thread count.

use nfv_fleet::{
    run_with_faults, FaultKind, FaultPlan, FaultRates, FleetError, FleetOutcome, FleetSpec,
};
use nfv_telemetry::Postmortem;

use super::fleet::fleet_spec;
use super::Sweep;

/// The per-epoch fault rates the sweep walks, from fault-free to a rate
/// where most epochs disturb several tenants.
#[must_use]
pub fn chaos_rates() -> Vec<f64> {
    vec![0.0, 0.05, 0.15, 0.3, 0.6]
}

/// The fleet spec the chaos sweep disturbs: the smallest fleet point (8
/// tenants on 2 shards) so the sweep stays cheap while still exercising
/// multi-shard recovery and the handoff path.
#[must_use]
pub fn chaos_spec(seed: u64) -> FleetSpec {
    fleet_spec(8, 2, seed)
}

/// One scored point of the chaos sweep.
#[derive(Debug)]
pub struct ChaosPoint {
    /// The per-epoch fault rate of the plan.
    pub rate: f64,
    /// The faulted (recovered) outcome.
    pub outcome: FleetOutcome,
    /// Whether the recovered run matches the fault-free baseline byte
    /// for byte (report, epoch records, tenant reports, merged journal).
    pub identical: bool,
    /// Fraction of tenant-epochs that ran without needing recovery.
    pub availability: f64,
    /// Events replayed per restore (shard or tenant); `0.0` when nothing
    /// was restored.
    pub replay_per_restore: f64,
}

impl ChaosPoint {
    fn score(rate: f64, outcome: FleetOutcome, baseline: &FleetOutcome) -> Self {
        let identical = outcome.report == baseline.report
            && outcome.epoch_records == baseline.epoch_records
            && outcome.tenant_reports == baseline.tenant_reports
            && outcome.artifacts.journal_jsonl() == baseline.artifacts.journal_jsonl();
        let recovery = &outcome.recovery;
        let tenant_epochs = (outcome.report.tenants as u64 * outcome.report.epochs).max(1);
        let disturbed =
            (recovery.shard_restores + recovery.tenant_restores + recovery.tenants_quarantined)
                .min(tenant_epochs);
        let availability = 1.0 - disturbed as f64 / tenant_epochs as f64;
        let restores = recovery.shard_restores + recovery.tenant_restores;
        let replay_per_restore = if restores == 0 {
            0.0
        } else {
            recovery.events_replayed as f64 / restores as f64
        };
        Self {
            rate,
            outcome,
            identical,
            availability,
            replay_per_restore,
        }
    }
}

/// Runs one chaos point: a seeded recoverable fault plan at `rate`
/// against the chaos spec, scored against the given fault-free baseline.
///
/// # Errors
///
/// Propagates any [`FleetError`] from the faulted run.
pub fn run_chaos_point(
    rate: f64,
    seed: u64,
    baseline: &FleetOutcome,
) -> Result<ChaosPoint, FleetError> {
    let spec = chaos_spec(seed);
    let plan = FaultPlan::seeded(
        seed,
        spec.epochs() as usize,
        spec.shards,
        spec.tenants as u32,
        &FaultRates::recoverable(rate),
    );
    let outcome = run_with_faults(&spec, &plan)?;
    Ok(ChaosPoint::score(rate, outcome, baseline))
}

/// Sweeps the fault rates and tabulates the recovery columns: faults
/// fired, checkpoints taken, restores performed (shard + tenant),
/// events replayed, mean replay per restore, availability, and the
/// inline byte-identity verdict.
///
/// # Errors
///
/// Propagates the first failing point's [`FleetError`].
pub fn chaos_sweep(seed: u64) -> Result<Sweep, FleetError> {
    let baseline = nfv_fleet::run(&chaos_spec(seed))?;
    let mut sweep = Sweep::new(
        "fault rate",
        vec![
            "faults fired".into(),
            "checkpoints".into(),
            "restores".into(),
            "events replayed".into(),
            "replay/restore".into(),
            "availability".into(),
            "identical".into(),
            "postmortem_events".into(),
        ],
    );
    for rate in chaos_rates() {
        let point = run_chaos_point(rate, seed, &baseline)?;
        let recovery = &point.outcome.recovery;
        let postmortem_events: usize = point
            .outcome
            .postmortems
            .iter()
            .map(Postmortem::event_count)
            .sum();
        sweep.push(
            rate,
            vec![
                recovery.faults_injected as f64,
                recovery.checkpoints as f64,
                (recovery.shard_restores + recovery.tenant_restores) as f64,
                recovery.events_replayed as f64,
                point.replay_per_restore,
                point.availability,
                f64::from(u8::from(point.identical)),
                postmortem_events as f64,
            ],
        );
    }
    Ok(sweep)
}

/// Forces unrecoverable faults (corrupt checkpoints) and returns the
/// flight-recorder postmortems the resulting quarantines dumped.
/// Recoverable sweep plans can never quarantine — their corrupt-
/// checkpoint and wedge rates are pinned to zero — so this is the
/// experiment that exercises the flight-recorder path end to end. A
/// fault naming a tenant that is parked (in transit) at its epoch never
/// fires, so the number of postmortems equals the number of quarantines,
/// not the number of planned faults.
///
/// # Errors
///
/// Propagates any [`FleetError`] from the faulted run.
pub fn quarantine_postmortems(seed: u64) -> Result<Vec<Postmortem>, FleetError> {
    let spec = chaos_spec(seed);
    let plan = FaultPlan::none()
        .with_fault(1, FaultKind::CorruptCheckpoint { tenant: 1 })
        .with_fault(2, FaultKind::CorruptCheckpoint { tenant: 3 });
    let outcome = run_with_faults(&spec, &plan)?;
    debug_assert_eq!(
        outcome.postmortems.len() as u64,
        outcome.recovery.tenants_quarantined,
        "one flight-recorder dump per quarantine"
    );
    Ok(outcome.postmortems)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn faulted_points_recover_byte_identically() {
        let baseline = nfv_fleet::run(&chaos_spec(42)).unwrap();
        let point = run_chaos_point(0.3, 42, &baseline).unwrap();
        assert!(
            point.outcome.recovery.faults_injected > 0,
            "rate 0.3 must fire: {:?}",
            point.outcome.recovery
        );
        assert!(point.identical, "recovery must be transparent");
        assert!(
            point.availability < 1.0,
            "fired faults disturb tenant-epochs"
        );
        assert!(point.availability > 0.0);
    }

    #[test]
    fn zero_rate_point_is_the_baseline() {
        let baseline = nfv_fleet::run(&chaos_spec(9)).unwrap();
        let point = run_chaos_point(0.0, 9, &baseline).unwrap();
        assert!(point.identical);
        assert_eq!(point.outcome.recovery, Default::default());
        assert_eq!(point.availability, 1.0);
        assert_eq!(point.replay_per_restore, 0.0);
    }

    #[test]
    fn sweep_has_one_row_per_rate_and_all_rows_identical() {
        let sweep = chaos_sweep(42).unwrap();
        assert_eq!(sweep.rows().len(), chaos_rates().len());
        let identical = sweep.series_values("identical").unwrap();
        assert!(
            identical.iter().all(|&v| v == 1.0),
            "every recoverable point must match the baseline: {identical:?}"
        );
        let faults = sweep.series_values("faults fired").unwrap();
        assert!(faults.last().copied().unwrap_or(0.0) > 0.0);
        // Recoverable plans never quarantine, so the flight recorder
        // stays empty across the whole sweep.
        let postmortems = sweep.series_values("postmortem_events").unwrap();
        assert!(postmortems.iter().all(|&v| v == 0.0), "{postmortems:?}");
    }

    #[test]
    fn quarantines_dump_nonempty_deterministic_postmortems() {
        let a = quarantine_postmortems(42).unwrap();
        let b = quarantine_postmortems(42).unwrap();
        assert!(!a.is_empty(), "at least one fault fires and quarantines");
        for postmortem in &a {
            assert_eq!(postmortem.cause, "corrupt_checkpoint");
            assert!(!postmortem.render().is_empty());
        }
        assert_eq!(
            a.iter().map(Postmortem::render).collect::<Vec<_>>(),
            b.iter().map(Postmortem::render).collect::<Vec<_>>(),
            "flight-recorder dumps are deterministic"
        );
    }
}
