//! Admission control and the job rejection rate.
//!
//! When the offered arrival rate at a service instance would reach its
//! service rate, the admission-control mechanism drops whole requests to
//! keep the instance stable (paper §I and §III.B). The fraction of requests
//! dropped among all requests is the *job rejection rate*, one of the
//! paper's headline metrics (Figs. 15–16).

use std::fmt;

use nfv_model::{ArrivalRate, DeliveryProbability, ServiceRate};
use serde::{Deserialize, Serialize};

use crate::InstanceLoad;

/// Admission controller for the `M_f` service instances of a single VNF.
///
/// Requests are offered in order with a target instance (as chosen by a
/// scheduling algorithm); a request is admitted only if its loss-inflated
/// rate keeps the target instance strictly stable, otherwise it is rejected
/// and the instance's load is left unchanged.
///
/// # Examples
///
/// ```
/// use nfv_model::{ArrivalRate, DeliveryProbability, ServiceRate};
/// use nfv_queueing::admission::AdmissionController;
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut ctrl = AdmissionController::new(ServiceRate::new(100.0)?, 2);
/// let p = DeliveryProbability::PERFECT;
/// assert!(ctrl.offer(0, ArrivalRate::new(60.0)?, p));
/// assert!(!ctrl.offer(0, ArrivalRate::new(60.0)?, p)); // would saturate inst 0
/// assert!(ctrl.offer(1, ArrivalRate::new(60.0)?, p));
/// assert!((ctrl.report().rejection_rate() - 1.0 / 3.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdmissionController {
    instances: Vec<InstanceLoad>,
    offered: usize,
    rejected: usize,
}

impl AdmissionController {
    /// Creates a controller over `instances` idle instances, each with
    /// service rate `service`.
    #[must_use]
    pub fn new(service: ServiceRate, instances: usize) -> Self {
        Self {
            instances: (0..instances).map(|_| InstanceLoad::new(service)).collect(),
            offered: 0,
            rejected: 0,
        }
    }

    /// Offers a request to instance `instance`; returns whether it was
    /// admitted. Rejected requests leave the instance untouched.
    ///
    /// # Panics
    ///
    /// Panics if `instance` is out of range.
    pub fn offer(
        &mut self,
        instance: usize,
        rate: ArrivalRate,
        delivery: DeliveryProbability,
    ) -> bool {
        self.offered += 1;
        let load = &mut self.instances[instance];
        if load.can_accept(rate, delivery) {
            load.add_request(rate, delivery);
            true
        } else {
            self.rejected += 1;
            false
        }
    }

    /// The per-instance loads accumulated so far.
    #[must_use]
    pub fn instances(&self) -> &[InstanceLoad] {
        &self.instances
    }

    /// The admission statistics so far.
    #[must_use]
    pub fn report(&self) -> AdmissionReport {
        AdmissionReport {
            offered: self.offered,
            rejected: self.rejected,
        }
    }

    /// Consumes the controller, returning the final instance loads and the
    /// admission report.
    #[must_use]
    pub fn into_parts(self) -> (Vec<InstanceLoad>, AdmissionReport) {
        let report = AdmissionReport {
            offered: self.offered,
            rejected: self.rejected,
        };
        (self.instances, report)
    }
}

/// Outcome of an admission-control run: how many requests were offered and
/// how many were rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AdmissionReport {
    offered: usize,
    rejected: usize,
}

impl AdmissionReport {
    /// Total number of requests offered.
    #[must_use]
    pub const fn offered(&self) -> usize {
        self.offered
    }

    /// Number of requests rejected by admission control.
    #[must_use]
    pub const fn rejected(&self) -> usize {
        self.rejected
    }

    /// Number of requests admitted.
    #[must_use]
    pub const fn admitted(&self) -> usize {
        self.offered - self.rejected
    }

    /// The job rejection rate: `rejected / offered`, or 0 when nothing was
    /// offered.
    #[must_use]
    pub fn rejection_rate(&self) -> f64 {
        if self.offered == 0 {
            0.0
        } else {
            self.rejected as f64 / self.offered as f64
        }
    }
}

impl fmt::Display for AdmissionReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}/{} rejected ({:.2}%)",
            self.rejected,
            self.offered,
            self.rejection_rate() * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mu(v: f64) -> ServiceRate {
        ServiceRate::new(v).unwrap()
    }

    fn lam(v: f64) -> ArrivalRate {
        ArrivalRate::new(v).unwrap()
    }

    #[test]
    fn admits_until_saturation_per_instance() {
        let mut ctrl = AdmissionController::new(mu(100.0), 1);
        let p = DeliveryProbability::PERFECT;
        assert!(ctrl.offer(0, lam(50.0), p));
        assert!(ctrl.offer(0, lam(49.0), p));
        // 99 + 1 == 100 == μ is NOT strictly stable.
        assert!(!ctrl.offer(0, lam(1.0), p));
        // A smaller request still fits.
        assert!(ctrl.offer(0, lam(0.5), p));
        let report = ctrl.report();
        assert_eq!(report.offered(), 4);
        assert_eq!(report.rejected(), 1);
        assert_eq!(report.admitted(), 3);
    }

    #[test]
    fn loss_inflation_counts_against_capacity() {
        let mut ctrl = AdmissionController::new(mu(100.0), 1);
        // 60 pps at P = 0.6 is 100 pps effective: rejected.
        assert!(!ctrl.offer(0, lam(60.0), DeliveryProbability::new(0.6).unwrap()));
        // Same 60 pps at P = 1.0 fits.
        assert!(ctrl.offer(0, lam(60.0), DeliveryProbability::PERFECT));
    }

    #[test]
    fn rejection_leaves_load_unchanged() {
        let mut ctrl = AdmissionController::new(mu(10.0), 1);
        assert!(!ctrl.offer(0, lam(50.0), DeliveryProbability::PERFECT));
        assert_eq!(ctrl.instances()[0].equivalent_arrival_rate(), 0.0);
        assert_eq!(ctrl.instances()[0].request_count(), 0);
    }

    #[test]
    fn empty_report_has_zero_rate() {
        let ctrl = AdmissionController::new(mu(10.0), 3);
        assert_eq!(ctrl.report().rejection_rate(), 0.0);
    }

    #[test]
    fn into_parts_preserves_state() {
        let mut ctrl = AdmissionController::new(mu(100.0), 2);
        ctrl.offer(1, lam(10.0), DeliveryProbability::PERFECT);
        let (loads, report) = ctrl.into_parts();
        assert_eq!(loads.len(), 2);
        assert_eq!(loads[1].request_count(), 1);
        assert_eq!(report.offered(), 1);
    }

    #[test]
    fn report_display_shows_percentage() {
        let mut ctrl = AdmissionController::new(mu(10.0), 1);
        ctrl.offer(0, lam(50.0), DeliveryProbability::PERFECT);
        assert_eq!(ctrl.report().to_string(), "1/1 rejected (100.00%)");
    }
}
