//! Policy fleet: templates, replicas and online arrivals together.
//!
//! An operator runs the named middlebox policies (web-service, security,
//! WAN-access, …) for most tenants, on servers *smaller* than the biggest
//! VNF — so the optimizer must split it into replicas. After the offline
//! pipeline runs, new tenants keep arriving and are dispatched *online* to
//! the busiest VNF's instances under admission control.
//!
//! Exercises three extensions beyond the paper's core evaluation:
//! [`nfv::workload::ChainTemplate`], VNF replication and
//! [`nfv::scheduling::OnlineDispatcher`].
//!
//! ```text
//! cargo run --example policy_fleet
//! ```

use nfv::metrics::Table;
use nfv::model::{ArrivalRate, VnfId};
use nfv::queueing::admission::AdmissionController;
use nfv::scheduling::OnlineDispatcher;
use nfv::topology::builders;
use nfv::workload::ScenarioBuilder;
use nfv::JointOptimizer;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A template-heavy workload: 70% of tenants use a named policy.
    let scenario = ScenarioBuilder::new()
        .vnfs(9)
        .requests(150)
        .template_fraction(0.7)
        .seed(12)
        .build()?;
    println!("{scenario}");

    // 2. Servers deliberately smaller than the biggest VNF: replication
    //    required.
    let max_vnf = scenario
        .vnfs()
        .iter()
        .map(|v| v.total_demand().value())
        .fold(0.0f64, f64::max);
    let fabric = builders::three_tier()
        .aggregation(2)
        .edges_per_aggregation(2)
        .hosts_per_edge(3)
        .uniform_capacity(max_vnf * 0.7)
        .build()?;
    println!(
        "{fabric}\nbiggest VNF: {max_vnf:.0} units vs {:.0}-unit hosts",
        max_vnf * 0.7
    );

    let mut rng = StdRng::seed_from_u64(3);
    let (solution, replicas) =
        JointOptimizer::new().optimize_with_replication(&scenario, &fabric, &mut rng)?;
    let split: Vec<String> = scenario
        .vnfs()
        .iter()
        .filter(|v| replicas.was_split(v.id()))
        .map(|v| format!("{} x{}", v.kind(), replicas.replicas_of(v.id()).len()))
        .collect();
    println!(
        "\nreplicated VNFs: {}; {} nodes in service at {}",
        if split.is_empty() {
            "none".to_owned()
        } else {
            split.join(", ")
        },
        solution.placement().nodes_in_service(),
        solution.placement().average_utilization()
    );

    // 3. Online arrivals: new tenants hit the busiest rewritten VNF one at
    //    a time; least-loaded dispatch + admission control.
    let rewritten = solution.scenario();
    let busiest: VnfId = rewritten
        .vnfs()
        .iter()
        .map(|v| v.id())
        .max_by_key(|&id| rewritten.users_of(id))
        .expect("non-empty scenario");
    let vnf = rewritten.vnf(busiest).expect("known vnf");
    println!(
        "\nonline phase: new tenants arriving at {} ({} instances at {:.0} pps each)",
        vnf.kind(),
        vnf.instances(),
        vnf.service_rate().value()
    );

    // Seed admission control with the offline traffic already scheduled on
    // each instance; the dispatcher then balances only the *new* arrivals.
    let offline_loads = &solution.instance_loads()[busiest.as_usize()];
    let mut dispatcher = OnlineDispatcher::new(vnf.instances() as usize)?;
    let mut admission = AdmissionController::new(vnf.service_rate(), vnf.instances() as usize);
    for (k, load) in offline_loads.iter().enumerate() {
        if load.external_arrival_rate() > 0.0 {
            let rate = ArrivalRate::new(load.external_arrival_rate())?;
            admission.offer(k, rate, nfv::model::DeliveryProbability::PERFECT);
        }
    }

    let mut table = Table::new(vec!["tenant", "rate(pps)", "instance", "admitted"]);
    let mut arrivals_rng = StdRng::seed_from_u64(77);
    for t in 0..12 {
        let rate = ArrivalRate::new(arrivals_rng.gen_range(5.0..60.0))?;
        let k = dispatcher.dispatch(rate);
        let admitted = admission.offer(k, rate, nfv::model::DeliveryProbability::new(0.99)?);
        table.row(vec![
            format!("tenant-{t}"),
            format!("{:.1}", rate.value()),
            format!("#{}", k + 1),
            if admitted {
                "yes".into()
            } else {
                "REJECTED".into()
            },
        ]);
    }
    print!("{table}");
    println!("\nadmission report: {}", admission.report());
    Ok(())
}
