//! Core model types for the NFV joint placement/scheduling library.
//!
//! This crate defines the shared vocabulary used by every other crate in the
//! workspace, mirroring the notation of *"Joint Optimization of Chain
//! Placement and Request Scheduling for Network Function Virtualization"*
//! (ICDCS 2017):
//!
//! * typed identifiers ([`NodeId`], [`VnfId`], [`RequestId`], [`InstanceId`])
//!   so that indices into different collections can never be confused,
//! * validated scalar quantities ([`Capacity`] `A_v`, [`Demand`] `D_f`,
//!   [`ArrivalRate`] `λ_r`, [`ServiceRate`] `μ_f`,
//!   [`DeliveryProbability`] `P_r`),
//! * the domain objects themselves: [`Vnf`] (with its `M_f` service
//!   instances), [`ComputeNode`], [`ServiceChain`] and [`Request`].
//!
//! # Examples
//!
//! Build a tiny two-VNF scenario:
//!
//! ```
//! use nfv_model::{
//!     ArrivalRate, Capacity, ComputeNode, Demand, DeliveryProbability, NodeId, Request,
//!     RequestId, ServiceChain, ServiceRate, Vnf, VnfId, VnfKind,
//! };
//!
//! # fn main() -> Result<(), nfv_model::ModelError> {
//! let firewall = Vnf::builder(VnfId::new(0), VnfKind::Firewall)
//!     .demand_per_instance(Demand::new(40.0)?)
//!     .instances(2)
//!     .service_rate(ServiceRate::new(120.0)?)
//!     .build()?;
//! let node = ComputeNode::new(NodeId::new(0), Capacity::new(100.0)?);
//! let chain = ServiceChain::new(vec![firewall.id()])?;
//! let request = Request::new(
//!     RequestId::new(0),
//!     chain,
//!     ArrivalRate::new(10.0)?,
//!     DeliveryProbability::new(0.98)?,
//! );
//! assert!(node.capacity().fits(firewall.total_demand()));
//! assert!(request.effective_rate().value() > request.arrival_rate().value());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod chain;
mod error;
mod ids;
mod node;
mod quantity;
mod request;
mod vnf;

pub use chain::ServiceChain;
pub use error::ModelError;
pub use ids::{InstanceId, NodeId, RequestId, VnfId};
pub use node::ComputeNode;
pub use quantity::{ArrivalRate, Capacity, DeliveryProbability, Demand, ServiceRate, Utilization};
pub use request::Request;
pub use vnf::{Vnf, VnfBuilder, VnfKind};
