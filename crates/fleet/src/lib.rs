//! A deterministic multi-tenant fleet loop: N independent tenant
//! controllers, sharded over the shared `nfv-parallel` pool, driven by
//! one virtual clock.
//!
//! The paper optimizes a single cluster; a fleet serving many users runs
//! *hundreds* of such optimizations concurrently in one process. This
//! crate multiplexes them without surrendering the repo's core contract:
//! same seed, same results, **bit for bit, at any thread count**.
//!
//! The moving parts:
//!
//! - **Tenants** — each an isolated world: its own scenario, its own
//!   lazy churn stream (seeded via
//!   [`tenant_seed`](nfv_workload::tenancy::tenant_seed)), its own
//!   [`Controller`](nfv_controller::Controller).
//! - **Channels** ([`EventChannel`]) — bounded SPSC-style buffers between
//!   the trace streams and the shards. The serial *pump* phase fills
//!   them (shard order, tenant order, stalling on a full channel); the
//!   parallel *drain* phase empties them. Backpressure is part of the
//!   deterministic schedule, not an accident of timing.
//! - **Shards** ([`Shard`]) — disjoint tenant sets drained concurrently
//!   via `par_map_indexed`, results folded in shard-id order, so thread
//!   count never changes an outcome.
//! - **Epochs** — the virtual clock advances in fixed steps; every event
//!   with `time ≤ boundary` is pumped and drained (possibly over several
//!   backpressure rounds) before the fleet crosses the boundary.
//! - **Handoff** ([`HandoffLayer`]) — every `rebalance_every` epochs the
//!   busiest tenant of the most-loaded shard migrates to the
//!   least-loaded shard as a two-phase retire/add with conservation
//!   accounting (see the `handoff` module docs).
//!
//! Journals merge per shard in shard-id order
//! ([`TelemetryArtifacts::merged`]), so the fleet journal is one
//! byte-identical artifact at 1, 2, or 8 threads.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod channel;
mod handoff;
mod shard;

use nfv_controller::{Controller, ControllerConfig, ControllerReport};
use nfv_parallel::{default_threads, derive_seed, par_map_indexed, TaskPanic};
use nfv_telemetry::{Telemetry, TelemetryArtifacts};
use nfv_workload::churn::{ChurnStream, ChurnTraceBuilder, TimedEvent};
use nfv_workload::tenancy::tenant_seed;
use nfv_workload::{Scenario, ScenarioBuilder, ServiceRatePolicy, TenantId, WorkloadError};

pub use channel::EventChannel;
pub use handoff::{HandoffLayer, MigrationRecord};
pub use shard::{Shard, TenantSlot};

/// Why a fleet run refused to start or aborted.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum FleetError {
    /// The spec fails a sanity bound.
    InvalidSpec(&'static str),
    /// Building a tenant scenario or trace failed.
    Workload(WorkloadError),
    /// A shard task panicked on the pool.
    Pool(TaskPanic),
    /// A tenant's counters failed the conservation check during handoff
    /// (`phase` is `retire`, `transit`, or `install`).
    ConservationViolated {
        /// The tenant whose accounting broke.
        tenant: TenantId,
        /// Which handoff phase detected it.
        phase: &'static str,
    },
}

impl std::fmt::Display for FleetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::InvalidSpec(reason) => write!(f, "invalid fleet spec: {reason}"),
            Self::Workload(err) => write!(f, "tenant workload: {err}"),
            Self::Pool(err) => write!(f, "shard pool: {err}"),
            Self::ConservationViolated { tenant, phase } => {
                write!(f, "conservation violated for {tenant} at {phase}")
            }
        }
    }
}

impl std::error::Error for FleetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Workload(err) => Some(err),
            Self::Pool(err) => Some(err),
            _ => None,
        }
    }
}

/// Everything that defines one fleet run. A spec is a pure value: two
/// runs of the same spec produce byte-identical outcomes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FleetSpec {
    /// Number of tenants.
    pub tenants: usize,
    /// Number of shards the tenants are partitioned over.
    pub shards: usize,
    /// VNFs per tenant scenario.
    pub vnfs: usize,
    /// Base requests per tenant scenario.
    pub requests: usize,
    /// Per-instance utilization target of the scenario generator.
    pub target_utilization: f64,
    /// Virtual-time horizon of every tenant's trace, seconds.
    pub horizon: f64,
    /// Poisson churn arrival rate per tenant, events/second.
    pub arrival_rate: f64,
    /// Mean exponential holding time, seconds.
    pub mean_holding: f64,
    /// Re-optimization tick period per tenant, seconds.
    pub tick_period: f64,
    /// Virtual seconds per fleet epoch.
    pub epoch: f64,
    /// Bound of each tenant's event channel.
    pub channel_capacity: usize,
    /// Initiate a handoff every this many epochs (`0` disables).
    pub rebalance_every: u64,
    /// Fleet seed; every tenant seed derives from it.
    pub seed: u64,
    /// Whether tenants record telemetry journals.
    pub telemetry: bool,
    /// The controller configuration every tenant runs.
    pub controller: ControllerConfig,
    /// Worker threads for the drain phase (`0` = process default).
    pub threads: usize,
}

impl FleetSpec {
    /// A small smoke-test fleet: 4 tenants on 2 shards, rebalancing
    /// aggressively so the handoff path is exercised even in tests.
    #[must_use]
    pub fn smoke() -> Self {
        Self {
            tenants: 4,
            shards: 2,
            vnfs: 3,
            requests: 12,
            target_utilization: 0.6,
            horizon: 40.0,
            arrival_rate: 0.5,
            mean_holding: 10.0,
            tick_period: 20.0,
            epoch: 10.0,
            channel_capacity: 16,
            rebalance_every: 1,
            seed: 11,
            telemetry: true,
            controller: ControllerConfig::periodic_reopt(),
            threads: 0,
        }
    }

    /// The smoke spec scaled to `tenants` tenants on `shards` shards.
    #[must_use]
    pub fn sized(tenants: usize, shards: usize) -> Self {
        Self {
            tenants,
            shards,
            ..Self::smoke()
        }
    }

    fn validate(&self) -> Result<(), FleetError> {
        if self.tenants == 0 {
            return Err(FleetError::InvalidSpec("tenants must be >= 1"));
        }
        if self.shards == 0 {
            return Err(FleetError::InvalidSpec("shards must be >= 1"));
        }
        if self.vnfs == 0 || self.requests == 0 {
            return Err(FleetError::InvalidSpec(
                "tenant scenarios must be non-empty",
            ));
        }
        if !(self.horizon.is_finite() && self.horizon > 0.0) {
            return Err(FleetError::InvalidSpec(
                "horizon must be positive and finite",
            ));
        }
        if !(self.epoch.is_finite() && self.epoch > 0.0) {
            return Err(FleetError::InvalidSpec("epoch must be positive and finite"));
        }
        if self.channel_capacity == 0 {
            return Err(FleetError::InvalidSpec("channel capacity must be >= 1"));
        }
        Ok(())
    }

    /// Number of epochs the run spans.
    #[must_use]
    pub fn epochs(&self) -> u64 {
        (self.horizon / self.epoch).ceil().max(1.0) as u64
    }
}

/// Fleet-wide counter totals at one epoch boundary.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EpochRecord {
    /// The epoch index (0-based).
    pub epoch: u64,
    /// Virtual time of the epoch's end.
    pub end_time: f64,
    /// Events processed during this epoch (all shards).
    pub events: u64,
    /// Cumulative fleet admissions at the boundary.
    pub admitted: u64,
    /// Cumulative fleet retry admissions at the boundary.
    pub retry_admitted: u64,
    /// Active requests across the fleet at the boundary.
    pub active: u64,
    /// Cumulative departures at the boundary.
    pub departed: u64,
    /// Cumulative sheds at the boundary.
    pub shed: u64,
}

impl EpochRecord {
    /// Whether the fleet-wide conservation law holds at this boundary.
    #[must_use]
    pub fn conserved(&self) -> bool {
        self.admitted + self.retry_admitted == self.active + self.departed + self.shed
    }
}

/// Aggregated results of one fleet run.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetReport {
    /// Tenants in the fleet.
    pub tenants: usize,
    /// Shards the fleet ran on.
    pub shards: usize,
    /// Epochs executed.
    pub epochs: u64,
    /// Total events processed.
    pub events: u64,
    /// Total admissions across all tenants.
    pub admitted: u64,
    /// Total rejections across all tenants.
    pub rejected: u64,
    /// Total departures across all tenants.
    pub departed: u64,
    /// Total sheds across all tenants.
    pub shed: u64,
    /// Total retry admissions across all tenants.
    pub retry_admitted: u64,
    /// Requests still active at the horizon.
    pub active: u64,
    /// Completed cross-shard migrations.
    pub migrations: u64,
    /// Total state carried across shard boundaries (active requests +
    /// pending retries at retire time, summed over migrations).
    pub migration_cost: u64,
    /// Mean virtual-time latency of a handoff (retire → install),
    /// seconds; `0.0` when no migration happened.
    pub mean_rebalance_latency: f64,
    /// Events processed per shard, shard-id order.
    pub shard_events: Vec<u64>,
}

/// Everything a fleet run produces.
#[derive(Debug)]
pub struct FleetOutcome {
    /// The aggregated counters.
    pub report: FleetReport,
    /// Per-epoch fleet totals, epoch order.
    pub epoch_records: Vec<EpochRecord>,
    /// Completed migrations, oldest first.
    pub migrations: Vec<MigrationRecord>,
    /// Final per-tenant reports, tenant-id order.
    pub tenant_reports: Vec<(TenantId, ControllerReport)>,
    /// The merged fleet journal (per-shard, shard-id order).
    pub artifacts: TelemetryArtifacts,
}

/// Pulls events with `time ≤ boundary` from each installed tenant's
/// stream into its channel: shard order, tenant order, stopping per
/// tenant at a full channel (the head event parks in `pending`). Parked
/// tenants have no slot and are skipped — their streams stall until
/// re-install. Returns the number of events pumped.
fn pump(
    streams: &mut [ChurnStream<'_>],
    pending: &mut [Option<TimedEvent>],
    shards: &mut [Shard],
    boundary: f64,
) -> u64 {
    let mut pumped = 0;
    for shard in shards.iter_mut() {
        for slot in shard.slots_mut() {
            let t = slot.tenant().as_usize();
            while !slot.channel_full() {
                let event = match pending[t].take() {
                    Some(event) => event,
                    None => match streams[t].next() {
                        Some(event) => event,
                        None => break,
                    },
                };
                if event.time() > boundary {
                    pending[t] = Some(event);
                    break;
                }
                slot.push(event);
                pumped += 1;
            }
        }
    }
    pumped
}

/// Sums the fleet-wide counters: every installed tenant plus the parked
/// one, shard order then tenant order (all-integer, so order only
/// matters for determinism of iteration, which is fixed anyway).
fn fleet_totals(
    shards: &[Shard],
    handoff: &HandoffLayer,
    epoch: u64,
    end_time: f64,
) -> EpochRecord {
    let mut record = EpochRecord {
        epoch,
        end_time,
        ..EpochRecord::default()
    };
    let mut add = |r: &ControllerReport| {
        record.admitted += r.admitted;
        record.retry_admitted += r.retry_admitted;
        record.active += r.active;
        record.departed += r.departed;
        record.shed += r.shed;
    };
    for shard in shards {
        for slot in shard.slots() {
            add(&slot.report());
        }
    }
    if let Some(parked) = handoff.parked_report() {
        add(parked);
    }
    record
}

/// Runs a fleet to its horizon.
///
/// # Errors
///
/// [`FleetError`] for an invalid spec, a workload-generation failure, a
/// shard panic on the pool, or a conservation violation during handoff.
pub fn run(spec: &FleetSpec) -> Result<FleetOutcome, FleetError> {
    spec.validate()?;
    let threads = if spec.threads == 0 {
        default_threads()
    } else {
        spec.threads
    };
    let scenarios: Vec<Scenario> = (0..spec.tenants)
        .map(|t| {
            ScenarioBuilder::new()
                .vnfs(spec.vnfs)
                .requests(spec.requests)
                .service_rate_policy(ServiceRatePolicy::ScaledToLoad {
                    target_utilization: spec.target_utilization,
                })
                .seed(tenant_seed(spec.seed, TenantId::new(t as u32)))
                .build()
                .map_err(FleetError::Workload)
        })
        .collect::<Result<_, _>>()?;
    let mut streams: Vec<ChurnStream<'_>> = Vec::with_capacity(spec.tenants);
    for (t, scenario) in scenarios.iter().enumerate() {
        streams.push(
            ChurnTraceBuilder::new()
                .horizon(spec.horizon)
                .arrival_rate(spec.arrival_rate)
                .mean_holding(spec.mean_holding)
                .tick_period(spec.tick_period)
                .seed(derive_seed(spec.seed, t as u64))
                .stream(scenario)
                .map_err(FleetError::Workload)?,
        );
    }
    let mut pending: Vec<Option<TimedEvent>> = (0..spec.tenants).map(|_| None).collect();
    let mut shards: Vec<Shard> = (0..spec.shards).map(Shard::new).collect();
    for (t, scenario) in scenarios.iter().enumerate() {
        let telemetry = if spec.telemetry {
            Telemetry::enabled()
        } else {
            Telemetry::disabled()
        };
        shards[t % spec.shards].install(TenantSlot::new(
            TenantId::new(t as u32),
            Controller::new(scenario, spec.controller),
            EventChannel::new(spec.channel_capacity),
            telemetry,
        ));
    }
    let epochs = spec.epochs();
    let mut handoff = HandoffLayer::default();
    let mut epoch_records = Vec::with_capacity(epochs as usize);
    let mut processed_before = 0u64;
    for epoch in 0..epochs {
        handoff.install_due(&mut shards, epoch)?;
        // The final epoch flushes everything, horizon-clamped streams
        // included, so no event is left behind a fractional boundary.
        let boundary = if epoch + 1 == epochs {
            f64::MAX
        } else {
            (epoch + 1) as f64 * spec.epoch
        };
        loop {
            let pumped = pump(&mut streams, &mut pending, &mut shards, boundary);
            let buffered: usize = shards.iter().map(Shard::buffered).sum();
            if pumped == 0 && buffered == 0 {
                break;
            }
            shards = par_map_indexed(threads, shards, |_, mut shard| {
                shard.drain_round();
                shard
            })
            .map_err(FleetError::Pool)?;
        }
        let processed_now: u64 = shards.iter().map(Shard::processed).sum();
        let mut record = fleet_totals(
            &shards,
            &handoff,
            epoch,
            spec.horizon.min((epoch + 1) as f64 * spec.epoch),
        );
        record.events = processed_now - processed_before;
        processed_before = processed_now;
        epoch_records.push(record);
        // Initiate a handoff only when its install epoch still exists.
        if spec.rebalance_every > 0 && (epoch + 1) % spec.rebalance_every == 0 && epoch + 2 < epochs
        {
            handoff.initiate(&mut shards, epoch, spec.epoch)?;
        }
    }
    debug_assert!(handoff.idle(), "every handoff installs before the run ends");
    let migrations = handoff.records().to_vec();
    // Close every tenant at the horizon and merge journals per shard in
    // shard-id order (tenant order within each shard).
    let shard_events: Vec<u64> = shards.iter().map(Shard::processed).collect();
    let mut tenant_reports: Vec<(TenantId, ControllerReport)> = Vec::with_capacity(spec.tenants);
    let mut parts: Vec<TelemetryArtifacts> = Vec::with_capacity(spec.tenants);
    for shard in shards {
        for (tenant, report, artifacts) in shard.finish(spec.horizon) {
            tenant_reports.push((tenant, report));
            parts.push(artifacts);
        }
    }
    let artifacts = TelemetryArtifacts::merged(parts);
    tenant_reports.sort_by_key(|(tenant, _)| *tenant);
    let mut report = FleetReport {
        tenants: spec.tenants,
        shards: spec.shards,
        epochs,
        events: shard_events.iter().sum(),
        admitted: 0,
        rejected: 0,
        departed: 0,
        shed: 0,
        retry_admitted: 0,
        active: 0,
        migrations: migrations.len() as u64,
        migration_cost: migrations
            .iter()
            .map(|m| m.carried_active + m.carried_retry)
            .sum(),
        mean_rebalance_latency: if migrations.is_empty() {
            0.0
        } else {
            migrations.iter().map(|m| m.latency).sum::<f64>() / migrations.len() as f64
        },
        shard_events,
    };
    for (_, r) in &tenant_reports {
        report.admitted += r.admitted;
        report.rejected += r.rejected;
        report.departed += r.departed;
        report.shed += r.shed;
        report.retry_admitted += r.retry_admitted;
        report.active += r.active;
    }
    Ok(FleetOutcome {
        report,
        epoch_records,
        migrations,
        tenant_reports,
        artifacts,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_fleet_conserves_and_migrates() {
        let outcome = run(&FleetSpec::smoke()).unwrap();
        let report = &outcome.report;
        assert!(report.events > 0);
        assert!(report.admitted > 0);
        assert_eq!(
            report.admitted + report.retry_admitted,
            report.active + report.departed + report.shed,
            "fleet-wide conservation"
        );
        for record in &outcome.epoch_records {
            assert!(record.conserved(), "epoch {} conserves", record.epoch);
        }
        assert_eq!(report.epochs as usize, outcome.epoch_records.len());
        assert_eq!(report.events, report.shard_events.iter().sum::<u64>());
    }

    #[test]
    fn same_spec_runs_are_byte_identical() {
        let spec = FleetSpec::smoke();
        let a = run(&spec).unwrap();
        let b = run(&spec).unwrap();
        assert_eq!(a.report, b.report);
        assert_eq!(a.epoch_records, b.epoch_records);
        assert_eq!(a.migrations, b.migrations);
        assert_eq!(a.tenant_reports, b.tenant_reports);
        assert_eq!(
            a.artifacts.journal_jsonl(),
            b.artifacts.journal_jsonl(),
            "merged journals byte-identical"
        );
    }

    #[test]
    fn invalid_specs_are_refused() {
        let mut spec = FleetSpec::smoke();
        spec.tenants = 0;
        assert!(matches!(run(&spec), Err(FleetError::InvalidSpec(_))));
        let mut spec = FleetSpec::smoke();
        spec.epoch = 0.0;
        assert!(matches!(run(&spec), Err(FleetError::InvalidSpec(_))));
        let mut spec = FleetSpec::smoke();
        spec.channel_capacity = 0;
        assert!(matches!(run(&spec), Err(FleetError::InvalidSpec(_))));
    }

    #[test]
    fn rebalancing_moves_tenants_without_changing_tenant_outcomes() {
        // The same fleet with handoff disabled: tenants are independent,
        // so per-tenant reports must be identical — migration moves
        // *where* a tenant runs, never *what* it computes.
        let with = run(&FleetSpec::smoke()).unwrap();
        let without = run(&FleetSpec {
            rebalance_every: 0,
            ..FleetSpec::smoke()
        })
        .unwrap();
        assert!(
            with.report.migrations > 0,
            "smoke spec must exercise handoff"
        );
        assert_eq!(without.report.migrations, 0);
        assert_eq!(with.tenant_reports, without.tenant_reports);
    }
}
