//! Criterion benchmarks for the full two-phase pipeline (Eq. (16)
//! end-to-end), across the three compared algorithm combinations.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nfv_core::JointOptimizer;
use nfv_placement::{Bfdsu, Ffd, Nah};
use nfv_scheduling::{Cga, Rckk};
use nfv_topology::builders;
use nfv_workload::{InstancePolicy, ScenarioBuilder, ServiceRatePolicy};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_pipelines(c: &mut Criterion) {
    let topology = builders::random_connected()
        .nodes(12)
        .seed(5)
        .capacity_range(1000.0, 5000.0, 6)
        .build()
        .unwrap();
    let scenario = ScenarioBuilder::new()
        .vnfs(15)
        .requests(200)
        .instance_policy(InstancePolicy::PerUsers {
            requests_per_instance: 10,
        })
        .service_rate_policy(ServiceRatePolicy::ScaledToLoad {
            target_utilization: 0.7,
        })
        .seed(5)
        .build()
        .unwrap();

    let pipelines: Vec<(&str, JointOptimizer)> = vec![
        (
            "bfdsu+rckk",
            JointOptimizer::new()
                .with_placer(Box::new(Bfdsu::new()))
                .with_scheduler(Box::new(Rckk::new())),
        ),
        (
            "ffd+cga",
            JointOptimizer::new()
                .with_placer(Box::new(Ffd::new()))
                .with_scheduler(Box::new(Cga::new())),
        ),
        (
            "nah+cga",
            JointOptimizer::new()
                .with_placer(Box::new(Nah::new()))
                .with_scheduler(Box::new(Cga::new())),
        ),
    ];

    let mut group = c.benchmark_group("pipeline");
    for (name, optimizer) in &pipelines {
        group.bench_with_input(
            BenchmarkId::new(name, "15f-200r-12n"),
            &(&scenario, &topology),
            |b, (scenario, topology)| {
                let mut rng = StdRng::seed_from_u64(9);
                b.iter(|| {
                    let solution = optimizer
                        .optimize(scenario, topology, &mut rng)
                        .expect("feasible fixture");
                    solution
                        .objective()
                        .expect("stable fixture")
                        .total_latency()
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_pipelines);
criterion_main!(benches);
