//! The anytime search loop: population state, one-generation steps and
//! the finished outcome.

use nfv_model::NodeId;
use nfv_parallel::{derive_seed, par_map};
use nfv_placement::{Placement, PlacementError, PlacementProblem};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::fitness::objective;
use crate::{Engine, SearchConfig};

/// A genome: the node hosting each VNF, indexed by `VnfId`.
type Genome = Vec<NodeId>;

/// An in-progress search. [`SearchRun::step`] advances one generation;
/// the best-so-far assignment is available at any point, which is what
/// makes the search *anytime* — the controller's background refiner runs
/// a bounded number of steps per quiet tick and reads off the incumbent.
#[derive(Debug)]
pub struct SearchRun<'a> {
    problem: &'a PlacementProblem,
    config: SearchConfig,
    /// Current population (GA: survivors; PSO: particle positions).
    genomes: Vec<Genome>,
    /// Fitness of each genome, same order.
    fitness: Vec<f64>,
    /// PSO personal bests, one per particle (empty under GA).
    personal_best: Vec<(Genome, f64)>,
    /// Best genome and fitness seen so far (monotone non-increasing).
    best: (Genome, f64),
    generation: usize,
    /// Best-so-far fitness after each completed generation; index 0 is
    /// the seeded generation 0.
    history: Vec<f64>,
    evaluations: u64,
}

impl<'a> SearchRun<'a> {
    /// Seeds and evaluates generation 0. Individual 0 is the warm start:
    /// `config.initial` when given (repaired if needed), otherwise a
    /// deterministic first-fit-decreasing construction; the rest of the
    /// population is uniformly random, repaired.
    ///
    /// # Errors
    ///
    /// [`PlacementError::MissingVnf`] if `config.initial` has the wrong
    /// length, [`PlacementError::UnknownNode`] if it references a node
    /// outside the problem, and [`PlacementError::InvalidProblem`] for an
    /// empty population.
    pub fn new(
        problem: &'a PlacementProblem,
        config: &SearchConfig,
    ) -> Result<Self, PlacementError> {
        if config.population == 0 {
            return Err(PlacementError::InvalidProblem {
                reason: "search population must be at least 1",
            });
        }
        let vnf_count = problem.vnfs().len();
        let node_count = problem.nodes().len();
        let warm = match &config.initial {
            Some(assignment) => {
                if assignment.len() != vnf_count {
                    return Err(PlacementError::MissingVnf {
                        vnf: nfv_model::VnfId::new(assignment.len().min(vnf_count) as u32),
                    });
                }
                if let Some(node) = assignment.iter().find(|n| n.as_usize() >= node_count) {
                    return Err(PlacementError::UnknownNode { node: *node });
                }
                let mut genome = assignment.clone();
                repair(problem, &mut genome);
                genome
            }
            None => ffd_seed(problem),
        };
        let config = config.clone();
        let seeds: Vec<usize> = (0..config.population).collect();
        let evaluated = par_map(seeds, |_, i| {
            let genome = if i == 0 {
                warm.clone()
            } else {
                let mut rng = StdRng::seed_from_u64(derive_seed(config.seed, i as u64));
                let mut genome: Genome = (0..vnf_count)
                    .map(|_| NodeId::new(rng.gen_range(0..node_count as u32)))
                    .collect();
                repair(problem, &mut genome);
                genome
            };
            let fit = objective(problem, &genome, &config.weights);
            (genome, fit)
        })
        .expect("search workers do not panic");
        let mut run = Self {
            problem,
            config,
            genomes: Vec::new(),
            fitness: Vec::new(),
            personal_best: Vec::new(),
            best: (warm, f64::INFINITY),
            generation: 0,
            history: Vec::new(),
            evaluations: 0,
        };
        run.fold_generation(evaluated);
        if run.config.engine == Engine::Pso {
            run.personal_best = run
                .genomes
                .iter()
                .cloned()
                .zip(run.fitness.iter().copied())
                .collect();
        }
        Ok(run)
    }

    /// Runs one generation and returns the best-so-far fitness.
    pub fn step(&mut self) -> f64 {
        self.generation += 1;
        match self.config.engine {
            Engine::Ga => self.step_ga(),
            Engine::Pso => self.step_pso(),
        }
        self.best.1
    }

    fn step_ga(&mut self) {
        let cfg = &self.config;
        let pop = cfg.population;
        let node_count = self.problem.nodes().len() as u32;
        let base = (self.generation * pop) as u64;
        let parents = &self.genomes;
        let fitness = &self.fitness;
        let elite = &self.best.0;
        let problem = self.problem;
        let evaluated = par_map((0..pop).collect(), |_, i| {
            // Elitism: child 0 re-emits the best-so-far untouched, so the
            // incumbent can never be lost to selection noise.
            let genome = if i == 0 {
                elite.clone()
            } else {
                let mut rng = StdRng::seed_from_u64(derive_seed(cfg.seed, base + i as u64));
                let a = tournament(fitness, cfg.tournament, &mut rng);
                let mut child = if rng.gen::<f64>() < cfg.crossover_rate {
                    let b = tournament(fitness, cfg.tournament, &mut rng);
                    crossover(&parents[a], &parents[b], &mut rng)
                } else {
                    parents[a].clone()
                };
                for gene in &mut child {
                    if rng.gen::<f64>() < cfg.mutation_rate {
                        *gene = NodeId::new(rng.gen_range(0..node_count));
                    }
                }
                if rng.gen::<f64>() < DRAIN_RATE {
                    drain_random_node(problem, &mut child, &mut rng);
                }
                repair(problem, &mut child);
                child
            };
            let fit = objective(problem, &genome, &cfg.weights);
            (genome, fit)
        })
        .expect("search workers do not panic");
        self.fold_generation(evaluated);
    }

    fn step_pso(&mut self) {
        let cfg = &self.config;
        let pop = cfg.population;
        let node_count = self.problem.nodes().len() as u32;
        let base = (self.generation * pop) as u64;
        let positions = &self.genomes;
        let personal = &self.personal_best;
        let global = &self.best.0;
        let problem = self.problem;
        let moved = par_map((0..pop).collect(), |_, i| {
            let mut rng = StdRng::seed_from_u64(derive_seed(cfg.seed, base + i as u64));
            let mut position = positions[i].clone();
            for (gene, slot) in position.iter_mut().enumerate() {
                // Discrete velocity: each gene independently snaps to the
                // swarm best, the personal best, or a random node; the
                // residual probability is inertia (keep the gene).
                let draw: f64 = rng.gen();
                if draw < cfg.social {
                    *slot = global[gene];
                } else if draw < cfg.social + cfg.cognitive {
                    *slot = personal[i].0[gene];
                } else if draw < cfg.social + cfg.cognitive + cfg.wander {
                    *slot = NodeId::new(rng.gen_range(0..node_count));
                }
            }
            if rng.gen::<f64>() < DRAIN_RATE {
                drain_random_node(problem, &mut position, &mut rng);
            }
            repair(problem, &mut position);
            let fit = objective(problem, &position, &cfg.weights);
            (position, fit)
        })
        .expect("search workers do not panic");
        for (i, (position, fit)) in moved.iter().enumerate() {
            if *fit < self.personal_best[i].1 {
                self.personal_best[i] = (position.clone(), *fit);
            }
        }
        self.fold_generation(moved);
    }

    /// Installs an evaluated generation and updates best-so-far with a
    /// strictly-less, first-index-wins fold (deterministic tie-break).
    fn fold_generation(&mut self, evaluated: Vec<(Genome, f64)>) {
        self.evaluations += evaluated.len() as u64;
        let (genomes, fitness): (Vec<_>, Vec<_>) = evaluated.into_iter().unzip();
        for (genome, &fit) in genomes.iter().zip(&fitness) {
            if fit < self.best.1 {
                self.best = (genome.clone(), fit);
            }
        }
        self.genomes = genomes;
        self.fitness = fitness;
        self.history.push(self.best.1);
    }

    /// Completed generations (0 right after [`SearchRun::new`]).
    #[must_use]
    pub fn generation(&self) -> usize {
        self.generation
    }

    /// The best objective value seen so far.
    #[must_use]
    pub fn best_fitness(&self) -> f64 {
        self.best.1
    }

    /// The best assignment seen so far.
    #[must_use]
    pub fn best_assignment(&self) -> &[NodeId] {
        &self.best.0
    }

    /// Finishes the run.
    #[must_use]
    pub fn into_outcome(self) -> SearchOutcome {
        SearchOutcome {
            best_assignment: self.best.0,
            best_fitness: self.best.1,
            history: self.history,
            evaluations: self.evaluations,
        }
    }
}

/// The result of a finished search.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchOutcome {
    best_assignment: Genome,
    best_fitness: f64,
    history: Vec<f64>,
    evaluations: u64,
}

impl SearchOutcome {
    /// The best assignment found.
    #[must_use]
    pub fn best_assignment(&self) -> &[NodeId] {
        &self.best_assignment
    }

    /// The best objective value found (see [`crate::objective`]).
    #[must_use]
    pub fn best_fitness(&self) -> f64 {
        self.best_fitness
    }

    /// Best-so-far fitness after each generation (index 0 = the seeded
    /// generation). Monotone non-increasing by construction.
    #[must_use]
    pub fn history(&self) -> &[f64] {
        &self.history
    }

    /// Total objective evaluations spent.
    #[must_use]
    pub fn evaluations(&self) -> u64 {
        self.evaluations
    }

    /// The best placement, re-validated against the problem.
    ///
    /// # Errors
    ///
    /// Propagates the [`Placement::new`] validation error if the best
    /// genome is infeasible (possible only when the instance itself
    /// admits no feasible assignment the repair could reach).
    pub fn best_placement(&self, problem: &PlacementProblem) -> Result<Placement, PlacementError> {
        Placement::new(problem, self.best_assignment.clone())
    }
}

/// Runs `generations` generations and returns the outcome.
///
/// # Errors
///
/// Propagates [`SearchRun::new`] errors (bad warm start, empty
/// population).
pub fn search(
    problem: &PlacementProblem,
    config: &SearchConfig,
    generations: usize,
) -> Result<SearchOutcome, PlacementError> {
    let mut run = SearchRun::new(problem, config)?;
    for _ in 0..generations {
        run.step();
    }
    Ok(run.into_outcome())
}

/// Tournament selection: the fittest of `size` uniform draws (first-best
/// on ties). Returns a population index.
fn tournament(fitness: &[f64], size: usize, rng: &mut StdRng) -> usize {
    let mut winner = rng.gen_range(0..fitness.len());
    for _ in 1..size.max(1) {
        let challenger = rng.gen_range(0..fitness.len());
        if fitness[challenger] < fitness[winner] {
            winner = challenger;
        }
    }
    winner
}

/// Uniform crossover: each gene comes from either parent with equal
/// probability.
fn crossover(a: &[NodeId], b: &[NodeId], rng: &mut StdRng) -> Genome {
    a.iter()
        .zip(b)
        .map(|(&x, &y)| if rng.gen::<bool>() { x } else { y })
        .collect()
}

/// Per-individual probability of the consolidation move. The node-count
/// term of the objective only drops when a node empties *completely*, a
/// coordinated multi-gene move that per-gene mutation and gene-wise
/// velocity updates almost never produce — both engines plateau one node
/// above the optimum without it.
const DRAIN_RATE: f64 = 0.25;

/// Consolidation move: evacuate one in-service node, chosen uniformly,
/// by re-placing its VNFs best-fit-decreasing into the *other* in-service
/// nodes — each VNF onto the fitting node with the least leftover
/// headroom, first-best on ties. A VNF no other node can hold goes to the
/// node with the most headroom instead (the overload is repaired or
/// penalized downstream). When the evacuated load genuinely fits
/// elsewhere, the genome comes out feasible with one node fewer — the
/// coordinated move the plain operators cannot compose. No-op with fewer
/// than two nodes in service.
fn drain_random_node(problem: &PlacementProblem, genome: &mut [NodeId], rng: &mut StdRng) {
    let mut load = vec![0.0f64; problem.nodes().len()];
    for (f, node) in genome.iter().enumerate() {
        load[node.as_usize()] += problem.vnfs()[f].total_demand().value();
    }
    let in_service: Vec<usize> = (0..load.len()).filter(|&v| load[v] > 0.0).collect();
    if in_service.len() < 2 {
        return;
    }
    let drained = in_service[rng.gen_range(0..in_service.len())];
    let mut evacuees: Vec<usize> = (0..genome.len())
        .filter(|&f| genome[f].as_usize() == drained)
        .collect();
    evacuees.sort_by(|&a, &b| {
        let da = problem.vnfs()[a].total_demand().value();
        let db = problem.vnfs()[b].total_demand().value();
        db.total_cmp(&da).then(a.cmp(&b))
    });
    for f in evacuees {
        let demand = problem.vnfs()[f].total_demand().value();
        let mut best_fit: Option<(usize, f64)> = None;
        let mut roomiest: Option<(usize, f64)> = None;
        for &v in &in_service {
            if v == drained {
                continue;
            }
            let headroom = problem.nodes()[v].capacity().value() - load[v];
            if headroom >= demand && best_fit.is_none_or(|(_, h)| headroom < h) {
                best_fit = Some((v, headroom));
            }
            if roomiest.is_none_or(|(_, h)| headroom > h) {
                roomiest = Some((v, headroom));
            }
        }
        let Some((to, _)) = best_fit.or(roomiest) else {
            return;
        };
        load[drained] -= demand;
        load[to] += demand;
        genome[f] = NodeId::new(to as u32);
    }
}

/// Deterministic capacity repair: while some node is overloaded, move one
/// VNF off the most-overloaded node onto the node with the most headroom
/// that fits it. Prefers the smallest VNF that clears the overflow in one
/// move (falling back to the largest VNF hosted), so repairs stay local.
/// Bounded at `2·|F|` moves; instances whose overflow survives that
/// budget score through the infeasibility penalty instead.
fn repair(problem: &PlacementProblem, genome: &mut [NodeId]) {
    let caps: Vec<f64> = problem
        .nodes()
        .iter()
        .map(|n| n.capacity().value())
        .collect();
    let demands: Vec<f64> = problem
        .vnfs()
        .iter()
        .map(|v| v.total_demand().value())
        .collect();
    let mut load = vec![0.0f64; caps.len()];
    for (f, node) in genome.iter().enumerate() {
        load[node.as_usize()] += demands[f];
    }
    let over = |demand: f64, cap: f64| demand > cap * (1.0 + 1e-9) + 1e-9;
    for _ in 0..genome.len().saturating_mul(2) {
        // Most-overloaded node, first-best on ties.
        let mut worst: Option<(usize, f64)> = None;
        for (v, (&demand, &cap)) in load.iter().zip(&caps).enumerate() {
            if over(demand, cap) {
                let overflow = demand - cap;
                if worst.is_none_or(|(_, w)| overflow > w) {
                    worst = Some((v, overflow));
                }
            }
        }
        let Some((node, overflow)) = worst else {
            return;
        };
        // Smallest hosted VNF that clears the overflow in one move;
        // otherwise the largest hosted VNF (chips away at the overflow).
        let hosted: Vec<usize> = (0..genome.len())
            .filter(|&f| genome[f].as_usize() == node)
            .collect();
        let mover = hosted
            .iter()
            .copied()
            .filter(|&f| demands[f] >= overflow)
            .min_by(|&a, &b| demands[a].total_cmp(&demands[b]).then(a.cmp(&b)))
            .or_else(|| {
                hosted
                    .iter()
                    .copied()
                    .max_by(|&a, &b| demands[a].total_cmp(&demands[b]).then(b.cmp(&a)))
            });
        let Some(mover) = mover else { return };
        // Target: the node with the most headroom that fits the mover,
        // first-best on ties; with no fitting target, the most-headroom
        // node overall (still reduces the maximum overflow).
        let mut target: Option<(usize, f64)> = None;
        let mut fallback: Option<(usize, f64)> = None;
        for (v, (&demand, &cap)) in load.iter().zip(&caps).enumerate() {
            if v == node {
                continue;
            }
            let headroom = cap - demand;
            if fallback.is_none_or(|(_, h)| headroom > h) {
                fallback = Some((v, headroom));
            }
            if !over(demand + demands[mover], cap) && target.is_none_or(|(_, h)| headroom > h) {
                target = Some((v, headroom));
            }
        }
        let Some((to, _)) = target.or(fallback) else {
            return;
        };
        load[node] -= demands[mover];
        load[to] += demands[mover];
        genome[mover] = NodeId::new(to as u32);
    }
}

/// Deterministic first-fit-decreasing warm start: VNFs by decreasing
/// demand onto nodes by decreasing capacity. May leave overloads on
/// infeasible instances; the caller's scoring handles that.
fn ffd_seed(problem: &PlacementProblem) -> Genome {
    let mut vnf_order: Vec<usize> = (0..problem.vnfs().len()).collect();
    vnf_order.sort_by(|&a, &b| {
        problem.vnfs()[b]
            .total_demand()
            .value()
            .total_cmp(&problem.vnfs()[a].total_demand().value())
            .then(a.cmp(&b))
    });
    let mut node_order: Vec<usize> = (0..problem.nodes().len()).collect();
    node_order.sort_by(|&a, &b| {
        problem.nodes()[b]
            .capacity()
            .value()
            .total_cmp(&problem.nodes()[a].capacity().value())
            .then(a.cmp(&b))
    });
    let mut load = vec![0.0f64; problem.nodes().len()];
    let mut genome = vec![NodeId::new(0); problem.vnfs().len()];
    for &f in &vnf_order {
        let demand = problem.vnfs()[f].total_demand().value();
        let slot = node_order
            .iter()
            .copied()
            .find(|&v| {
                let cap = problem.nodes()[v].capacity().value();
                load[v] + demand <= cap * (1.0 + 1e-9) + 1e-9
            })
            .unwrap_or(node_order[0]);
        load[slot] += demand;
        genome[f] = NodeId::new(slot as u32);
    }
    genome
}

#[cfg(test)]
mod tests {
    use super::*;
    use nfv_model::{Capacity, ComputeNode, Demand, ServiceRate, Vnf, VnfId, VnfKind};

    fn problem(caps: &[f64], demands: &[f64]) -> PlacementProblem {
        let nodes = caps
            .iter()
            .enumerate()
            .map(|(i, &c)| ComputeNode::new(NodeId::new(i as u32), Capacity::new(c).unwrap()))
            .collect();
        let vnfs = demands
            .iter()
            .enumerate()
            .map(|(i, &d)| {
                Vnf::builder(VnfId::new(i as u32), VnfKind::Custom(i as u16))
                    .demand_per_instance(Demand::new(d).unwrap())
                    .service_rate(ServiceRate::new(100.0).unwrap())
                    .build()
                    .unwrap()
            })
            .collect();
        PlacementProblem::new(nodes, vnfs).unwrap()
    }

    #[test]
    fn ga_finds_the_two_node_packing() {
        let p = problem(&[100.0; 4], &[60.0, 40.0, 55.0, 45.0]);
        let outcome = search(&p, &SearchConfig::ga(42), 20).unwrap();
        assert_eq!(outcome.best_placement(&p).unwrap().nodes_in_service(), 2);
    }

    #[test]
    fn pso_finds_the_two_node_packing() {
        let p = problem(&[100.0; 4], &[60.0, 40.0, 55.0, 45.0]);
        let outcome = search(&p, &SearchConfig::pso(42), 20).unwrap();
        assert_eq!(outcome.best_placement(&p).unwrap().nodes_in_service(), 2);
    }

    #[test]
    fn history_is_monotone_and_anytime() {
        let p = problem(&[100.0; 5], &[60.0, 40.0, 55.0, 45.0, 30.0]);
        for config in [SearchConfig::ga(7), SearchConfig::pso(7)] {
            let outcome = search(&p, &config, 15).unwrap();
            assert_eq!(outcome.history().len(), 16, "{}", config.engine.name());
            for pair in outcome.history().windows(2) {
                assert!(pair[1] <= pair[0], "{}", config.engine.name());
            }
            assert_eq!(outcome.evaluations(), 16 * config.population as u64);
        }
    }

    #[test]
    fn warm_start_is_never_lost() {
        let p = problem(&[100.0; 4], &[60.0, 40.0, 55.0, 45.0]);
        // Feasible two-node warm start: the searcher must never return
        // anything worse.
        let warm = vec![
            NodeId::new(0),
            NodeId::new(0),
            NodeId::new(1),
            NodeId::new(1),
        ];
        let warm_fitness = objective(&p, &warm, &FitnessWeights::default());
        let config = SearchConfig::ga(3).with_initial(warm);
        let outcome = search(&p, &config, 5).unwrap();
        assert!(outcome.best_fitness() <= warm_fitness);
    }

    use crate::FitnessWeights;

    #[test]
    fn warm_start_validates_shape() {
        let p = problem(&[100.0; 2], &[10.0, 10.0]);
        let short = SearchConfig::ga(1).with_initial(vec![NodeId::new(0)]);
        assert!(matches!(
            SearchRun::new(&p, &short),
            Err(PlacementError::MissingVnf { .. })
        ));
        let dangling = SearchConfig::ga(1).with_initial(vec![NodeId::new(0), NodeId::new(9)]);
        assert!(matches!(
            SearchRun::new(&p, &dangling),
            Err(PlacementError::UnknownNode { .. })
        ));
    }

    #[test]
    fn repair_restores_feasibility() {
        let p = problem(&[100.0, 100.0, 100.0], &[60.0, 60.0, 60.0]);
        let mut genome = vec![NodeId::new(0), NodeId::new(0), NodeId::new(0)];
        repair(&p, &mut genome);
        Placement::validate(&p, &genome).unwrap();
    }

    #[test]
    fn same_seed_same_outcome_and_different_seeds_may_differ() {
        let p = problem(&[100.0; 4], &[60.0, 40.0, 55.0, 45.0]);
        let a = search(&p, &SearchConfig::ga(11), 8).unwrap();
        let b = search(&p, &SearchConfig::ga(11), 8).unwrap();
        assert_eq!(a, b);
    }
}
