//! The placement problem instance.

use nfv_model::{ComputeNode, Demand, ServiceChain, Vnf, VnfId};
use serde::{Deserialize, Serialize};

use crate::PlacementError;

/// An instance of the VNF chain placement problem: the computing nodes with
/// their capacities, the VNFs with their total demands `D_f^sum`, and
/// (optionally) the service chains of the requests, which chain-aware
/// algorithms such as [`crate::Nah`] exploit.
///
/// Node ids must be `0..|V|` and VNF ids `0..|F|`, each in order — the ids
/// double as indices into the problem's tables.
///
/// # Examples
///
/// ```
/// use nfv_model::{Capacity, ComputeNode, Demand, NodeId, ServiceRate, Vnf, VnfId, VnfKind};
/// use nfv_placement::PlacementProblem;
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let nodes = vec![ComputeNode::new(NodeId::new(0), Capacity::new(50.0)?)];
/// let vnfs = vec![Vnf::builder(VnfId::new(0), VnfKind::Nat)
///     .demand_per_instance(Demand::new(10.0)?)
///     .instances(3)
///     .service_rate(ServiceRate::new(100.0)?)
///     .build()?];
/// let problem = PlacementProblem::new(nodes, vnfs)?;
/// assert_eq!(problem.total_demand().value(), 30.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlacementProblem {
    nodes: Vec<ComputeNode>,
    vnfs: Vec<Vnf>,
    chains: Vec<ServiceChain>,
}

impl PlacementProblem {
    /// Creates a problem without chain information.
    ///
    /// # Errors
    ///
    /// Returns [`PlacementError::InvalidProblem`] if either set is empty or
    /// ids are not `0..n` in order.
    pub fn new(nodes: Vec<ComputeNode>, vnfs: Vec<Vnf>) -> Result<Self, PlacementError> {
        Self::with_chains(nodes, vnfs, Vec::new())
    }

    /// Creates a problem with the service chains of the request set
    /// (needed by chain-aware algorithms like [`crate::Nah`]).
    ///
    /// # Errors
    ///
    /// Returns [`PlacementError::InvalidProblem`] for empty node/VNF sets or
    /// out-of-order ids, and [`PlacementError::UnknownVnf`] if a chain
    /// references a VNF outside the problem.
    pub fn with_chains(
        nodes: Vec<ComputeNode>,
        vnfs: Vec<Vnf>,
        chains: Vec<ServiceChain>,
    ) -> Result<Self, PlacementError> {
        if nodes.is_empty() {
            return Err(PlacementError::InvalidProblem {
                reason: "no computing nodes",
            });
        }
        if vnfs.is_empty() {
            return Err(PlacementError::InvalidProblem {
                reason: "no VNFs to place",
            });
        }
        if nodes
            .iter()
            .enumerate()
            .any(|(i, n)| n.id().as_usize() != i)
        {
            return Err(PlacementError::InvalidProblem {
                reason: "node ids must be 0..|V| in order",
            });
        }
        if vnfs.iter().enumerate().any(|(i, v)| v.id().as_usize() != i) {
            return Err(PlacementError::InvalidProblem {
                reason: "VNF ids must be 0..|F| in order",
            });
        }
        for chain in &chains {
            for vnf in chain.iter() {
                if vnf.as_usize() >= vnfs.len() {
                    return Err(PlacementError::UnknownVnf { vnf });
                }
            }
        }
        Ok(Self {
            nodes,
            vnfs,
            chains,
        })
    }

    /// The computing nodes, ordered by id.
    #[must_use]
    pub fn nodes(&self) -> &[ComputeNode] {
        &self.nodes
    }

    /// The VNFs, ordered by id.
    #[must_use]
    pub fn vnfs(&self) -> &[Vnf] {
        &self.vnfs
    }

    /// The request chains (possibly empty).
    #[must_use]
    pub fn chains(&self) -> &[ServiceChain] {
        &self.chains
    }

    /// The total demand `D_f^sum` of one VNF.
    ///
    /// # Panics
    ///
    /// Panics if `vnf` is not part of the problem.
    #[must_use]
    pub fn demand_of(&self, vnf: VnfId) -> Demand {
        self.vnfs[vnf.as_usize()].total_demand()
    }

    /// Sum of all VNF total demands.
    #[must_use]
    pub fn total_demand(&self) -> Demand {
        self.vnfs.iter().map(Vnf::total_demand).sum()
    }

    /// Cheap necessary feasibility conditions: total demand fits total
    /// capacity and every single VNF fits on the largest node. Passing this
    /// check does not guarantee feasibility (bin packing may still fail),
    /// but failing it proves infeasibility.
    ///
    /// # Errors
    ///
    /// Returns [`PlacementError::Infeasible`] when a necessary condition is
    /// violated.
    pub fn check_necessary_feasibility(&self) -> Result<(), PlacementError> {
        let total_capacity: f64 = self.nodes.iter().map(|n| n.capacity().value()).sum();
        if self.total_demand().value() > total_capacity {
            return Err(PlacementError::Infeasible {
                reason: "total demand exceeds total capacity",
            });
        }
        let max_capacity = self
            .nodes
            .iter()
            .map(|n| n.capacity().value())
            .fold(0.0f64, f64::max);
        if self
            .vnfs
            .iter()
            .any(|v| v.total_demand().value() > max_capacity)
        {
            return Err(PlacementError::Infeasible {
                reason: "a VNF exceeds every node capacity",
            });
        }
        Ok(())
    }

    /// A simple lower bound on the optimal number of nodes in service: the
    /// length of the shortest prefix of nodes (sorted by decreasing
    /// capacity) whose combined capacity covers the total demand. Any
    /// feasible placement uses at least this many nodes.
    #[must_use]
    pub fn lower_bound_nodes(&self) -> usize {
        let mut caps: Vec<f64> = self.nodes.iter().map(|n| n.capacity().value()).collect();
        caps.sort_unstable_by(|a, b| b.partial_cmp(a).expect("capacities are finite"));
        let total = self.total_demand().value();
        if total == 0.0 {
            return 0;
        }
        let mut acc = 0.0;
        for (i, c) in caps.iter().enumerate() {
            acc += c;
            if acc >= total {
                return i + 1;
            }
        }
        caps.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nfv_model::{Capacity, NodeId, ServiceRate, VnfKind};

    fn node(id: u32, cap: f64) -> ComputeNode {
        ComputeNode::new(NodeId::new(id), Capacity::new(cap).unwrap())
    }

    fn vnf(id: u32, demand: f64, instances: u32) -> Vnf {
        Vnf::builder(VnfId::new(id), VnfKind::Custom(id as u16))
            .demand_per_instance(Demand::new(demand).unwrap())
            .instances(instances)
            .service_rate(ServiceRate::new(100.0).unwrap())
            .build()
            .unwrap()
    }

    #[test]
    fn rejects_empty_and_out_of_order_sets() {
        assert!(PlacementProblem::new(vec![], vec![vnf(0, 1.0, 1)]).is_err());
        assert!(PlacementProblem::new(vec![node(0, 1.0)], vec![]).is_err());
        assert!(PlacementProblem::new(vec![node(1, 1.0)], vec![vnf(0, 1.0, 1)]).is_err());
        assert!(PlacementProblem::new(vec![node(0, 1.0)], vec![vnf(1, 1.0, 1)]).is_err());
    }

    #[test]
    fn rejects_chain_referencing_unknown_vnf() {
        let chain = ServiceChain::new(vec![VnfId::new(5)]).unwrap();
        let err =
            PlacementProblem::with_chains(vec![node(0, 10.0)], vec![vnf(0, 1.0, 1)], vec![chain])
                .unwrap_err();
        assert_eq!(err, PlacementError::UnknownVnf { vnf: VnfId::new(5) });
    }

    #[test]
    fn demand_accounting() {
        let problem =
            PlacementProblem::new(vec![node(0, 100.0)], vec![vnf(0, 10.0, 3), vnf(1, 5.0, 2)])
                .unwrap();
        assert_eq!(problem.demand_of(VnfId::new(0)).value(), 30.0);
        assert_eq!(problem.total_demand().value(), 40.0);
    }

    #[test]
    fn necessary_feasibility_checks() {
        let ok = PlacementProblem::new(vec![node(0, 50.0)], vec![vnf(0, 10.0, 3)]).unwrap();
        ok.check_necessary_feasibility().unwrap();

        let too_much_total =
            PlacementProblem::new(vec![node(0, 50.0)], vec![vnf(0, 30.0, 2)]).unwrap();
        assert!(too_much_total.check_necessary_feasibility().is_err());

        let monster = PlacementProblem::new(
            vec![node(0, 50.0), node(1, 60.0)],
            vec![vnf(0, 70.0, 1), vnf(1, 10.0, 1)],
        )
        .unwrap();
        assert!(monster.check_necessary_feasibility().is_err());
    }

    #[test]
    fn lower_bound_uses_largest_nodes_first() {
        let problem = PlacementProblem::new(
            vec![node(0, 10.0), node(1, 100.0), node(2, 50.0)],
            vec![vnf(0, 60.0, 2)], // total demand 120
        )
        .unwrap();
        // 100 + 50 >= 120 -> at least 2 nodes.
        assert_eq!(problem.lower_bound_nodes(), 2);
    }

    #[test]
    fn lower_bound_of_zero_demand_is_zero() {
        let problem = PlacementProblem::new(vec![node(0, 10.0)], vec![vnf(0, 0.0, 1)]).unwrap();
        assert_eq!(problem.lower_bound_nodes(), 0);
    }
}
