//! Replay-throughput experiment: how many trace events per second the
//! online control plane can ingest.
//!
//! The other experiments ask what the controller *decides*; this one asks
//! how fast it can decide it. A high-rate churn trace — a million-plus
//! events at the [`ReplayPoint::million`] configuration — is generated as
//! a [`ChurnStream`](nfv_workload::churn::ChurnStream) (never materialized
//! as a `Vec`) and pushed through two ingestion paths:
//!
//! * **streamed** — [`Controller::run_stream`], the exact per-event path:
//!   bit-identical decisions and samples to a materialized
//!   [`run_trace`](Controller::run_trace) replay;
//! * **batched** — [`Controller::run_stream_batched`], which drains one
//!   tick's worth of events at a time, coalesces flash
//!   arrival/departure pairs without touching the ledger, and samples the
//!   predicted latency at batch granularity. Admission decisions and the
//!   final ledger state are identical to the streamed path; only the
//!   latency *sampling* is coarser.
//!
//! Timings include stream generation: the replay engine's unit of work is
//! "trace in, report out", and the trace is generated on the fly.

use std::time::Instant;

use nfv_controller::{Controller, ControllerConfig, ControllerReport};
use nfv_workload::churn::ChurnTraceBuilder;
use nfv_workload::{Scenario, ScenarioBuilder, ServiceRatePolicy};
use serde::{Deserialize, Serialize};

use crate::CoreError;

/// Parameters of one replay-throughput run.
///
/// The churn dynamics are deliberately fast-twitch: a high arrival rate
/// with a short mean holding time keeps the *concurrent* population (and
/// so the per-instance member runs the ledger walks on every mutation)
/// moderate while the event count scales with `arrival_rate × horizon`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReplayPoint {
    /// Number of VNF types in the scenario.
    pub vnfs: usize,
    /// Base request population present at `t = 0`.
    pub base_requests: usize,
    /// Utilization the base population alone would induce; kept low so
    /// the churn load on top still admits.
    pub target_utilization: f64,
    /// Virtual-time horizon of the trace, seconds.
    pub horizon: f64,
    /// Poisson rate of churn arrivals, requests per second.
    pub arrival_rate: f64,
    /// Mean exponential holding time of every request, seconds.
    pub mean_holding: f64,
    /// Re-optimization tick period — the batched path's batch boundary.
    pub tick_period: f64,
}

impl ReplayPoint {
    /// The headline configuration: ~1.04 million events (520k arrivals,
    /// their departures, the base population and 200 ticks) over 200
    /// virtual seconds, with a mean concurrent churn population of
    /// `arrival_rate × mean_holding ≈ 52` requests on top of the 60 base
    /// requests.
    #[must_use]
    pub fn million() -> Self {
        Self {
            vnfs: 6,
            base_requests: 60,
            target_utilization: 0.4,
            horizon: 200.0,
            arrival_rate: 2600.0,
            mean_holding: 0.02,
            tick_period: 1.0,
        }
    }

    /// A scaled-down point (~8k events) for tests and smoke benches: same
    /// dynamics, two hundredths the horizon-rate product.
    #[must_use]
    pub fn smoke() -> Self {
        Self {
            horizon: 20.0,
            arrival_rate: 200.0,
            mean_holding: 0.1,
            ..Self::million()
        }
    }
}

/// Builds the scenario and the (lazy) trace builder for a point. The
/// builder is returned rather than a trace so callers choose between
/// [`ChurnTraceBuilder::stream`] and [`ChurnTraceBuilder::build`].
pub fn setup(point: &ReplayPoint, seed: u64) -> Result<(Scenario, ChurnTraceBuilder), CoreError> {
    let scenario = ScenarioBuilder::new()
        .vnfs(point.vnfs)
        .requests(point.base_requests)
        .service_rate_policy(ServiceRatePolicy::ScaledToLoad {
            target_utilization: point.target_utilization,
        })
        .seed(seed)
        .build()?;
    let builder = ChurnTraceBuilder::new()
        .horizon(point.horizon)
        .arrival_rate(point.arrival_rate)
        .mean_holding(point.mean_holding)
        .tick_period(point.tick_period)
        .seed(seed.wrapping_add(1));
    Ok((scenario, builder))
}

/// Measured throughput of both ingestion paths over one point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReplayThroughput {
    /// Total events in the streamed trace.
    pub events: u64,
    /// Virtual-time horizon of the trace, seconds.
    pub horizon: f64,
    /// Fastest wall-clock replay through the exact per-event path
    /// (stream generation included), seconds.
    pub streamed_seconds: f64,
    /// Fastest wall-clock replay through the batched path, seconds.
    pub batched_seconds: f64,
    /// Requests admitted by the batched replay — evidence the replay is
    /// doing admission work, not just draining a rejected stream.
    pub admitted: u64,
    /// Requests rejected by the batched replay.
    pub rejected: u64,
}

impl ReplayThroughput {
    /// Events per wall-clock second through the exact per-event path.
    #[must_use]
    pub fn streamed_events_per_second(&self) -> f64 {
        self.events as f64 / self.streamed_seconds
    }

    /// Events per wall-clock second through the batched path — the
    /// headline replay-engine figure.
    #[must_use]
    pub fn events_per_second(&self) -> f64 {
        self.events as f64 / self.batched_seconds
    }
}

/// Replays the point's streamed trace `runs` times through each ingestion
/// path (single-threaded; minima, not means) and returns the throughput.
///
/// # Errors
///
/// Propagates scenario/trace construction errors.
pub fn measure(point: &ReplayPoint, seed: u64, runs: u32) -> Result<ReplayThroughput, CoreError> {
    let (scenario, builder) = setup(point, seed)?;
    let events = builder.stream(&scenario)?.count() as u64;
    let mut streamed_seconds = f64::INFINITY;
    for _ in 0..runs.max(1) {
        let mut controller = Controller::new(&scenario, ControllerConfig::online_only());
        let started = Instant::now();
        let stream = builder.stream(&scenario)?;
        let _ = controller.run_stream(stream, point.horizon);
        streamed_seconds = streamed_seconds.min(started.elapsed().as_secs_f64());
    }
    let mut batched_seconds = f64::INFINITY;
    let mut batched_report = None;
    for _ in 0..runs.max(1) {
        let mut controller = Controller::new(&scenario, ControllerConfig::online_only());
        let started = Instant::now();
        let stream = builder.stream(&scenario)?;
        let report = controller.run_stream_batched(stream, point.horizon);
        batched_seconds = batched_seconds.min(started.elapsed().as_secs_f64());
        batched_report = Some(report);
    }
    let report = batched_report.expect("at least one batched run");
    Ok(ReplayThroughput {
        events,
        horizon: point.horizon,
        streamed_seconds,
        batched_seconds,
        admitted: report.admitted,
        rejected: report.rejected,
    })
}

/// Replays the point's trace through both paths once and returns
/// `(streamed, batched)` reports — the equivalence surface the tests and
/// the CI gate check.
///
/// # Errors
///
/// Propagates scenario/trace construction errors.
pub fn replay_reports(
    point: &ReplayPoint,
    seed: u64,
) -> Result<(ControllerReport, ControllerReport), CoreError> {
    let (scenario, builder) = setup(point, seed)?;
    let mut streamed = Controller::new(&scenario, ControllerConfig::online_only());
    let streamed_report = streamed.run_stream(builder.stream(&scenario)?, point.horizon);
    let mut batched = Controller::new(&scenario, ControllerConfig::online_only());
    let batched_report = batched.run_stream_batched(builder.stream(&scenario)?, point.horizon);
    Ok((streamed_report, batched_report))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streamed_replay_is_bit_identical_to_materialized_replay() {
        let point = ReplayPoint::smoke();
        let (scenario, builder) = setup(&point, 7).unwrap();
        let trace = builder.build(&scenario).unwrap();
        let mut materialized = Controller::new(&scenario, ControllerConfig::online_only());
        let from_trace = materialized.run_trace(&trace);
        let mut streamed = Controller::new(&scenario, ControllerConfig::online_only());
        let from_stream = streamed.run_stream(builder.stream(&scenario).unwrap(), point.horizon);
        assert_eq!(from_trace, from_stream);
    }

    #[test]
    fn batched_replay_preserves_every_decision() {
        let (streamed, batched) = replay_reports(&ReplayPoint::smoke(), 7).unwrap();
        // Decisions and ledger-state outcomes are exact; only latency
        // sampling is batch-granular.
        assert_eq!(streamed.admitted, batched.admitted);
        assert_eq!(streamed.rejected, batched.rejected);
        assert_eq!(streamed.departed, batched.departed);
        assert_eq!(streamed.shed, batched.shed);
        assert_eq!(streamed.ticks, batched.ticks);
        assert_eq!(streamed.active, batched.active);
        assert_eq!(streamed.current_latency, batched.current_latency);
        assert!(streamed.admitted > 1_000, "the smoke point must admit");
    }

    #[test]
    fn measure_reports_consistent_throughput() {
        let point = ReplayPoint::smoke();
        let throughput = measure(&point, 7, 1).unwrap();
        assert!(throughput.events > 5_000, "smoke point is ~8k events");
        assert!(throughput.streamed_seconds > 0.0);
        assert!(throughput.batched_seconds > 0.0);
        assert!(throughput.events_per_second() > 0.0);
        assert!(throughput.admitted > 0);
    }

    #[test]
    fn million_point_streams_at_least_a_million_events() {
        // Count only — no replay — so the tier-1 suite stays fast. The
        // stream never materializes, so this is cheap in memory too.
        let (scenario, builder) = setup(&ReplayPoint::million(), 42).unwrap();
        let events = builder.stream(&scenario).unwrap().count();
        assert!(
            events >= 1_000_000,
            "headline point must stream ≥1M events, got {events}"
        );
    }
}
