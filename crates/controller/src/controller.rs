//! The event-driven control loop.

use std::collections::BTreeSet;

use nfv_metrics::{Histogram, SampleSet};
use nfv_model::{Capacity, ComputeNode, NodeId, Request, RequestId, Vnf, VnfId};
use nfv_placement::{Bfdsu, Placement, PlacementProblem};
use nfv_scheduling::{Rckk, Scheduler};
use nfv_search::{objective, Engine, SearchConfig, SearchRun};
use nfv_telemetry::{EventKind, Phase, ReoptPhase, Telemetry, TickSample};
use nfv_workload::churn::{ChurnEvent, ChurnTrace, TimedEvent};
use nfv_workload::Scenario;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::active::ActiveSet;
use crate::retry::RetryQueue;
use crate::snapshot::{ControllerSnapshot, SnapshotError};
use crate::{
    ControllerConfig, ControllerError, ControllerReport, ControllerState, RejectReason, ShedPolicy,
};

/// What the controller did with one event.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum EventOutcome {
    /// The arrival was admitted onto one instance per chain hop.
    Admitted {
        /// `(vnf, instance)` placement for each hop, in chain order.
        placements: Vec<(VnfId, usize)>,
    },
    /// The arrival was refused.
    Rejected(RejectReason),
    /// An active request departed normally.
    Departed,
    /// A departure for a request the controller no longer holds (already
    /// evicted or shed); ignored.
    StaleDeparture,
    /// An instance went down; its requests were failed over or shed.
    InstanceDownHandled {
        /// Requests moved to surviving instances.
        migrated: u64,
        /// Requests dropped because no surviving instance could hold them.
        shed: u64,
    },
    /// An instance came (back) up.
    InstanceUpHandled,
    /// A re-optimization pass ran and applied its (bounded) plan — request
    /// migrations from the scheduling phase and, under
    /// [`ReplaceConfig`](crate::ReplaceConfig), instance operations from
    /// the re-placement phase.
    Reoptimized {
        /// Requests actually moved by the scheduling phase.
        migrations: u64,
        /// Instances added by the re-placement phase.
        instances_added: u64,
        /// Instances retired by the re-placement phase.
        instances_retired: u64,
        /// Instances relocated to another node by the re-placement phase
        /// or the background refiner.
        relocations: u64,
    },
    /// A tick was observed but hysteresis found too little predicted gain.
    TickSkipped,
    /// A tick was observed but re-optimization is disabled.
    TickIgnored,
    /// A whole node went dark: every VNF it hosted lost all instances at
    /// once, the affected requests were shed (and queued for retry when
    /// configured), and — under
    /// [`EmergencyConfig`](crate::EmergencyConfig) — an out-of-tick
    /// re-placement ran over the surviving nodes.
    NodeDownHandled {
        /// VNFs whose hosting node failed.
        vnfs_lost: u64,
        /// Requests shed because their chain crossed a lost VNF (each
        /// counted once, however many lost hops it had).
        shed: u64,
        /// Replacement instances added by the emergency re-placement.
        instances_added: u64,
        /// VNFs relocated onto surviving nodes by the emergency
        /// re-placement.
        relocations: u64,
    },
    /// A previously-dark node returned; VNFs still assigned to it are
    /// dispatchable again (VNFs relocated away during the outage are
    /// untouched).
    NodeUpHandled {
        /// VNFs whose instances became available again.
        vnfs_restored: u64,
    },
    /// An outage event named a node or `(vnf, instance)` the controller
    /// doesn't track — e.g. an instance retired by re-placement since the
    /// trace was generated, a recovery without a matching outage, or a
    /// node event without a cluster. Counted and otherwise ignored.
    StaleOutage,
}

#[derive(Debug, Clone, Default, PartialEq)]
struct Counters {
    admitted: u64,
    rejected: u64,
    departed: u64,
    shed: u64,
    migrated_failover: u64,
    migrated_reopt: u64,
    migrated_replace: u64,
    ticks: u64,
    reopts_applied: u64,
    reopts_skipped: u64,
    instances_added: u64,
    instances_retired: u64,
    relocations: u64,
    replaces_applied: u64,
    replaces_aborted: u64,
    node_downs: u64,
    node_ups: u64,
    stale_outage_events: u64,
    emergency_replaces: u64,
    retries_attempted: u64,
    retry_admitted: u64,
    retry_abandoned: u64,
    refines_applied: u64,
    refines_rejected: u64,
    /// `node_downs + node_ups` at the last refiner attempt, for the
    /// quiet-tick gate (not reported).
    outages_seen: u64,
}

impl Counters {
    /// Counter names in declaration order — the snapshot's counter
    /// schema. A snapshot whose pairs do not match this list exactly was
    /// written by a different build and is refused on restore.
    const NAMES: [&'static str; 25] = [
        "admitted",
        "rejected",
        "departed",
        "shed",
        "migrated_failover",
        "migrated_reopt",
        "migrated_replace",
        "ticks",
        "reopts_applied",
        "reopts_skipped",
        "instances_added",
        "instances_retired",
        "relocations",
        "replaces_applied",
        "replaces_aborted",
        "node_downs",
        "node_ups",
        "stale_outage_events",
        "emergency_replaces",
        "retries_attempted",
        "retry_admitted",
        "retry_abandoned",
        "refines_applied",
        "refines_rejected",
        "outages_seen",
    ];

    fn values(&self) -> [u64; 25] {
        [
            self.admitted,
            self.rejected,
            self.departed,
            self.shed,
            self.migrated_failover,
            self.migrated_reopt,
            self.migrated_replace,
            self.ticks,
            self.reopts_applied,
            self.reopts_skipped,
            self.instances_added,
            self.instances_retired,
            self.relocations,
            self.replaces_applied,
            self.replaces_aborted,
            self.node_downs,
            self.node_ups,
            self.stale_outage_events,
            self.emergency_replaces,
            self.retries_attempted,
            self.retry_admitted,
            self.retry_abandoned,
            self.refines_applied,
            self.refines_rejected,
            self.outages_seen,
        ]
    }

    fn to_pairs(&self) -> Vec<(String, u64)> {
        Self::NAMES
            .iter()
            .zip(self.values())
            .map(|(name, value)| ((*name).to_string(), value))
            .collect()
    }

    /// Rebuilds the counter block from snapshot pairs; `None` when the
    /// names do not match this build's schema exactly (order included).
    fn from_pairs(pairs: &[(String, u64)]) -> Option<Self> {
        if pairs.len() != Self::NAMES.len()
            || pairs
                .iter()
                .zip(Self::NAMES)
                .any(|((name, _), expected)| name != expected)
        {
            return None;
        }
        let v: Vec<u64> = pairs.iter().map(|(_, value)| *value).collect();
        Some(Self {
            admitted: v[0],
            rejected: v[1],
            departed: v[2],
            shed: v[3],
            migrated_failover: v[4],
            migrated_reopt: v[5],
            migrated_replace: v[6],
            ticks: v[7],
            reopts_applied: v[8],
            reopts_skipped: v[9],
            instances_added: v[10],
            instances_retired: v[11],
            relocations: v[12],
            replaces_applied: v[13],
            replaces_aborted: v[14],
            node_downs: v[15],
            node_ups: v[16],
            stale_outage_events: v[17],
            emergency_replaces: v[18],
            retries_attempted: v[19],
            retry_admitted: v[20],
            retry_abandoned: v[21],
            refines_applied: v[22],
            refines_rejected: v[23],
            outages_seen: v[24],
        })
    }
}

/// The physical substrate the controller re-places over: the node fleet,
/// the scenario's VNF prototypes (per-instance demand and service rate,
/// used to rebuild [`PlacementProblem`]s with live instance counts) and the
/// current VNF→node assignment.
#[derive(Debug, Clone, PartialEq)]
struct Cluster {
    nodes: Vec<ComputeNode>,
    protos: Vec<Vnf>,
    assignment: Vec<NodeId>,
    /// Outage depth per node (overlapping `NodeDown` windows stack, like
    /// the ledger's per-instance depths); 0 means in service.
    node_down: Vec<u32>,
}

impl Cluster {
    fn any_node_down(&self) -> bool {
        self.node_down.iter().any(|&d| d > 0)
    }

    /// The fleet with dark nodes' capacity zeroed, so placement treats
    /// them as full and routes around them.
    fn effective_nodes(&self) -> Vec<ComputeNode> {
        if !self.any_node_down() {
            return self.nodes.clone();
        }
        self.nodes
            .iter()
            .zip(&self.node_down)
            .map(|(node, &depth)| {
                if depth == 0 {
                    *node
                } else {
                    ComputeNode::new(node.id(), Capacity::new(0.0).expect("zero is valid"))
                }
            })
            .collect()
    }

    /// The VNFs assigned to one node, in id order.
    fn hosted_by(&self, node: NodeId) -> Vec<VnfId> {
        self.protos
            .iter()
            .zip(&self.assignment)
            .filter(|&(_, &n)| n == node)
            .map(|(p, _)| p.id())
            .collect()
    }
}

/// An online NFV control plane over one scenario.
///
/// Consumes a [`ChurnTrace`] event by event, maintaining a live
/// [`ControllerState`] ledger under admission control (every instance stays
/// strictly stable, `ρ < 1`), failing over around instance outages, and —
/// when configured — periodically re-balancing the live request set with
/// the paper's RCKK scheduler under a bounded migration budget.
///
/// Everything is driven by the trace's virtual clock; the controller never
/// reads wall-clock time, so same-seed runs are bit-identical.
///
/// # Examples
///
/// ```
/// use nfv_controller::{Controller, ControllerConfig};
/// use nfv_workload::churn::ChurnTraceBuilder;
/// use nfv_workload::ScenarioBuilder;
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let scenario = ScenarioBuilder::new().vnfs(4).requests(20).seed(1).build()?;
/// let trace = ChurnTraceBuilder::new()
///     .horizon(60.0)
///     .arrival_rate(0.4)
///     .mean_holding(20.0)
///     .tick_period(15.0)
///     .seed(2)
///     .build(&scenario)?;
/// let mut controller = Controller::new(&scenario, ControllerConfig::periodic_reopt());
/// let report = controller.run_trace(&trace);
/// assert_eq!(report.admitted + report.rejected, 20 + trace.events().iter()
///     .filter(|e| e.time() > 0.0
///         && matches!(e.event(), nfv_workload::churn::ChurnEvent::Arrival(_)))
///     .count() as u64);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Controller {
    state: ControllerState,
    active: ActiveSet,
    config: ControllerConfig,
    counters: Counters,
    clock: f64,
    /// `∫ L(t) dt` over the run so far, for the time-weighted mean latency.
    latency_integral: f64,
    /// Predicted latency after the last handled event.
    current_latency: f64,
    latency_samples: SampleSet,
    utilization_samples: SampleSet,
    snapshots: Vec<ControllerReport>,
    cluster: Option<Cluster>,
    retry: RetryQueue,
}

impl Controller {
    /// Creates an idle controller for a scenario's VNF fleet.
    #[must_use]
    pub fn new(scenario: &Scenario, config: ControllerConfig) -> Self {
        Self {
            state: ControllerState::new(scenario),
            active: ActiveSet::default(),
            config,
            counters: Counters::default(),
            clock: 0.0,
            latency_integral: 0.0,
            current_latency: 0.0,
            latency_samples: SampleSet::new(),
            utilization_samples: SampleSet::new(),
            snapshots: Vec::new(),
            cluster: None,
            retry: RetryQueue::default(),
        }
    }

    /// Creates a controller that also knows the physical cluster: the node
    /// fleet and the initial VNF→node placement. Required for the
    /// re-placement phase ([`ReplaceConfig`](crate::ReplaceConfig)); without
    /// a cluster that phase is silently disabled.
    ///
    /// # Errors
    ///
    /// [`ControllerError::ClusterMismatch`] when the placement does not
    /// cover exactly the scenario's VNF set or does not fit the node fleet.
    pub fn with_cluster(
        scenario: &Scenario,
        nodes: Vec<ComputeNode>,
        placement: &Placement,
        config: ControllerConfig,
    ) -> Result<Self, ControllerError> {
        let protos = scenario.vnfs().to_vec();
        if placement.assignment().len() != protos.len() {
            return Err(ControllerError::ClusterMismatch {
                reason: "placement covers a different VNF set",
            });
        }
        let problem = PlacementProblem::new(nodes.clone(), protos.clone()).map_err(|_| {
            ControllerError::ClusterMismatch {
                reason: "node fleet and VNF set do not form a valid problem",
            }
        })?;
        Placement::new(&problem, placement.assignment().to_vec()).map_err(|_| {
            ControllerError::ClusterMismatch {
                reason: "placement does not fit the node fleet",
            }
        })?;
        let mut controller = Self::new(scenario, config);
        let node_down = vec![0; nodes.len()];
        controller.cluster = Some(Cluster {
            nodes,
            protos,
            assignment: placement.assignment().to_vec(),
            node_down,
        });
        Ok(controller)
    }

    /// The current VNF→node assignment, when the controller was built with
    /// a cluster ([`Controller::with_cluster`]); indexed by `VnfId`.
    #[must_use]
    pub fn cluster_assignment(&self) -> Option<&[NodeId]> {
        self.cluster.as_ref().map(|c| c.assignment.as_slice())
    }

    /// The live ledger.
    #[must_use]
    pub fn state(&self) -> &ControllerState {
        &self.state
    }

    /// Number of currently active requests.
    #[must_use]
    pub fn active_requests(&self) -> usize {
        self.active.len()
    }

    /// Current virtual time.
    #[must_use]
    pub fn clock(&self) -> f64 {
        self.clock
    }

    /// Captures the controller's full dynamic state as a
    /// [`ControllerSnapshot`]. Applied back with
    /// [`restore`](Self::restore) — onto this controller or any other
    /// built from the same scenario and config — the controller is
    /// rewound bit-for-bit: every subsequent event produces the same
    /// outcome, journal record and report the original would have.
    #[must_use]
    pub fn checkpoint(&self) -> ControllerSnapshot {
        let (retry_seq, retry_entries) = self.retry.export();
        ControllerSnapshot {
            clock: self.clock,
            latency_integral: self.latency_integral,
            current_latency: self.current_latency,
            counters: self.counters.to_pairs(),
            latency_samples: self.latency_samples.as_slice().to_vec(),
            utilization_samples: self.utilization_samples.as_slice().to_vec(),
            reports: self.snapshots.clone(),
            slabs: self.state.export(),
            active: self.active.export(),
            retry_seq,
            retry_entries,
            cluster: self.cluster.as_ref().map(|cluster| {
                (
                    cluster.assignment.iter().map(|node| node.index()).collect(),
                    cluster.node_down.clone(),
                )
            }),
        }
    }

    /// Overwrites this controller's dynamic state from a snapshot taken
    /// against the same scenario and config (crash recovery: build a
    /// fresh controller, restore the last checkpoint, replay the events
    /// since).
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Mismatch`] when the snapshot does not fit this
    /// controller — different VNF shape, cluster presence or size, a
    /// counter schema from another build, or out-of-domain member data.
    /// The controller may be partially overwritten on error and must be
    /// discarded (restore into a freshly built controller to make the
    /// operation all-or-nothing).
    pub fn restore(&mut self, snapshot: &ControllerSnapshot) -> Result<(), SnapshotError> {
        let mismatch = |reason| SnapshotError::Mismatch { reason };
        let counters = Counters::from_pairs(&snapshot.counters)
            .ok_or(mismatch("counter schema differs from this build"))?;
        match (self.cluster.as_mut(), snapshot.cluster.as_ref()) {
            (None, None) => {}
            (Some(cluster), Some((assignment, node_down))) => {
                if assignment.len() != cluster.assignment.len() {
                    return Err(mismatch("cluster assignment length differs"));
                }
                if node_down.len() != cluster.node_down.len() {
                    return Err(mismatch("cluster node count differs"));
                }
                cluster.assignment = assignment.iter().map(|&raw| NodeId::new(raw)).collect();
                cluster.node_down.clone_from(node_down);
            }
            _ => return Err(mismatch("cluster presence differs")),
        }
        self.state.import(&snapshot.slabs).map_err(mismatch)?;
        let mut active = ActiveSet::default();
        let mut prev: Option<RequestId> = None;
        for request in &snapshot.active {
            if prev.is_some_and(|p| p >= request.id()) {
                return Err(mismatch("active requests are not strictly id-sorted"));
            }
            prev = Some(request.id());
            active.insert(request.clone());
        }
        self.active = active;
        self.counters = counters;
        self.clock = snapshot.clock;
        self.latency_integral = snapshot.latency_integral;
        self.current_latency = snapshot.current_latency;
        self.latency_samples = snapshot.latency_samples.iter().copied().collect();
        self.utilization_samples = snapshot.utilization_samples.iter().copied().collect();
        self.snapshots.clone_from(&snapshot.reports);
        self.retry = RetryQueue::import(snapshot.retry_seq, snapshot.retry_entries.clone());
        Ok(())
    }

    /// Fault-injection hook for the chaos harness: skews the admission
    /// counter so the conservation identity `admitted + retry_admitted ==
    /// active + departed + shed` no longer holds, emulating silent state
    /// corruption. The fleet's epoch-end conservation sweep must detect
    /// the violation and recover the tenant from its last checkpoint.
    #[doc(hidden)]
    pub fn chaos_corrupt_conservation(&mut self) {
        self.counters.admitted = self.counters.admitted.wrapping_add(1);
    }

    /// Applies one timed event. Retries that came due before the event's
    /// time are re-offered first, at their own virtual times.
    pub fn handle(&mut self, event: &TimedEvent) -> EventOutcome {
        self.handle_traced(event, &mut Telemetry::disabled())
    }

    /// [`handle`](Self::handle) with a telemetry session observing the
    /// event: journal records for every admit/reject/shed/retry/outage/
    /// re-optimization decision, timing spans around the hot phases, and
    /// one [`TickSample`] per re-optimization tick. Telemetry is a
    /// strict observer — `handle_traced(e, &mut Telemetry::disabled())`
    /// *is* `handle(e)`, and an enabled session changes no outcome.
    pub fn handle_traced(&mut self, event: &TimedEvent, tel: &mut Telemetry) -> EventOutcome {
        self.advance_clock(event.time(), tel);
        let outcome = self.dispatch(event.event(), tel);
        self.post_event(matches!(event.event(), ChurnEvent::ReoptimizeTick), tel);
        outcome
    }

    /// Like [`handle_traced`](Self::handle_traced), but consuming the
    /// event: an arrival's [`Request`] is moved into the active set instead
    /// of cloned, which matters when replaying millions of streamed events.
    /// Outcome-identical to the borrowing path.
    pub fn handle_owned_traced(&mut self, event: TimedEvent, tel: &mut Telemetry) -> EventOutcome {
        let (time, event) = event.into_parts();
        self.advance_clock(time, tel);
        let tick = matches!(event, ChurnEvent::ReoptimizeTick);
        let outcome = match event {
            ChurnEvent::Arrival(request) => self.admit_owned(request, tel),
            other => self.dispatch(&other, tel),
        };
        self.post_event(tick, tel);
        outcome
    }

    /// Re-offers retries due before `time` and accumulates the latency
    /// integral over the interval the system spent in its previous
    /// configuration.
    fn advance_clock(&mut self, time: f64, tel: &mut Telemetry) {
        self.offer_due_retries(time, tel);
        let dt = time - self.clock;
        if dt > 0.0 {
            self.latency_integral += self.current_latency * dt;
            self.clock = time;
        }
    }

    fn dispatch(&mut self, event: &ChurnEvent, tel: &mut Telemetry) -> EventOutcome {
        match event {
            ChurnEvent::Arrival(request) => self.admit(request, tel),
            ChurnEvent::Departure(id) => self.depart(*id),
            ChurnEvent::InstanceDown { vnf, instance } => self.instance_down(*vnf, *instance, tel),
            ChurnEvent::InstanceUp { vnf, instance } => self.instance_up(*vnf, *instance, tel),
            ChurnEvent::NodeDown { node } => self.node_down(*node, tel),
            ChurnEvent::NodeUp { node } => self.node_up(*node, tel),
            ChurnEvent::ReoptimizeTick => self.tick(tel),
        }
    }

    /// Refreshes the predicted latency, pushes the per-event samples, and
    /// — on a tick — records the periodic snapshot.
    fn post_event(&mut self, tick: bool, tel: &mut Telemetry) {
        self.current_latency = self.state.predicted_latency();
        self.latency_samples.push(self.current_latency);
        self.utilization_samples.push(self.peak_utilization());
        if tick {
            let snapshot = self.report();
            self.snapshots.push(snapshot);
            tel.sample_tick(|| self.tick_sample());
        }
    }

    /// One row of the per-tick time-series: instance-utilization extrema,
    /// the balanced predicted latency, the retry backlog, and how much of
    /// the node fleet is in service.
    fn tick_sample(&self) -> TickSample {
        let mut instances = 0u64;
        let mut max_rho = 0.0f64;
        let mut rho_sum = 0.0f64;
        for vnf in self.state.vnf_ids() {
            for k in 0..self.state.instances(vnf) {
                let rho = self.state.utilization(vnf, k);
                instances += 1;
                rho_sum += rho;
                max_rho = max_rho.max(rho);
            }
        }
        let (nodes_in_service, nodes_total) = match &self.cluster {
            Some(cluster) => (
                cluster.node_down.iter().filter(|&&d| d == 0).count() as u64,
                cluster.nodes.len() as u64,
            ),
            None => (0, 0),
        };
        TickSample {
            tick: self.counters.ticks,
            time: self.clock,
            active: self.active.len() as u64,
            instances,
            max_rho,
            mean_rho: if instances > 0 {
                rho_sum / instances as f64
            } else {
                0.0
            },
            balanced_latency: self.state.balanced_latency(),
            retry_backlog: self.retry.len() as u64,
            nodes_in_service,
            nodes_total,
        }
    }

    /// Runs a whole trace and returns the final report.
    pub fn run_trace(&mut self, trace: &ChurnTrace) -> ControllerReport {
        self.run_trace_traced(trace, &mut Telemetry::disabled())
    }

    /// [`run_trace`](Self::run_trace) with a telemetry session observing
    /// every event. The session is borrowed, not consumed: call
    /// [`Telemetry::finish`] afterwards to collect the artifacts.
    pub fn run_trace_traced(
        &mut self,
        trace: &ChurnTrace,
        tel: &mut Telemetry,
    ) -> ControllerReport {
        for event in trace {
            self.handle_traced(event, tel);
        }
        self.finish_traced(trace.horizon(), tel);
        self.report()
    }

    /// Runs a stream of owned events (e.g. a lazily generated
    /// [`ChurnStream`](nfv_workload::churn::ChurnStream)) through the exact
    /// per-event path and closes the run at `horizon`. Given the same
    /// event sequence this is bit-identical to
    /// [`run_trace`](Self::run_trace), but the trace never has to exist as
    /// a `Vec` — million-event replays stay at constant memory.
    pub fn run_stream<I>(&mut self, events: I, horizon: f64) -> ControllerReport
    where
        I: IntoIterator<Item = TimedEvent>,
    {
        self.run_stream_traced(events, horizon, &mut Telemetry::disabled())
    }

    /// [`run_stream`](Self::run_stream) with a telemetry session observing
    /// every event.
    pub fn run_stream_traced<I>(
        &mut self,
        events: I,
        horizon: f64,
        tel: &mut Telemetry,
    ) -> ControllerReport
    where
        I: IntoIterator<Item = TimedEvent>,
    {
        for event in events {
            self.handle_owned_traced(event, tel);
        }
        self.finish_traced(horizon, tel);
        self.report()
    }

    /// Runs a stream of owned events through the *batched* ingestion path:
    /// events are drained into a buffer up to and including each
    /// [`ReoptimizeTick`](ChurnEvent::ReoptimizeTick) and applied in one
    /// pass over the ledger arenas.
    ///
    /// Two deliberate deviations from the exact per-event path, both
    /// batch-granular (see DESIGN.md "Replay engine"):
    ///
    /// - **Coalescing** — an arrival immediately followed by the departure
    ///   of the same request (a flash request that would be admitted on
    ///   the plain path and touches nothing in between) is counted as
    ///   admitted + departed without ever touching the ledger. This is
    ///   outcome-exact: the ledger's `add` followed by `remove` restores
    ///   its state bit for bit, so skipping both leaves the identical
    ///   state. Coalesced pairs emit no per-request journal records.
    /// - **Batch-granular latency sampling** — the predicted latency is
    ///   refreshed at batch boundaries (every tick) instead of after every
    ///   event, so the latency integral holds `L(t)` piecewise-constant
    ///   per batch and the per-event sample sets collect one sample per
    ///   batch. Counters, admission decisions and the final ledger state
    ///   are unaffected.
    ///
    /// Returns the final report, exactly like
    /// [`run_stream`](Self::run_stream).
    pub fn run_stream_batched<I>(&mut self, events: I, horizon: f64) -> ControllerReport
    where
        I: IntoIterator<Item = TimedEvent>,
    {
        self.run_stream_batched_traced(events, horizon, &mut Telemetry::disabled())
    }

    /// [`run_stream_batched`](Self::run_stream_batched) with a telemetry
    /// session observing the batched replay (tick samples and phase spans;
    /// coalesced pairs emit no journal records).
    pub fn run_stream_batched_traced<I>(
        &mut self,
        events: I,
        horizon: f64,
        tel: &mut Telemetry,
    ) -> ControllerReport
    where
        I: IntoIterator<Item = TimedEvent>,
    {
        let mut batch: Vec<TimedEvent> = Vec::new();
        for event in events {
            let tick = matches!(event.event(), ChurnEvent::ReoptimizeTick);
            batch.push(event);
            if tick {
                self.apply_batch(&mut batch, tel);
            }
        }
        // Trailing partial batch after the last tick.
        self.apply_batch(&mut batch, tel);
        self.finish_traced(horizon, tel);
        self.report()
    }

    /// Applies one tick's worth of buffered events in a single pass,
    /// coalescing adjacent same-request arrival/departure pairs, then
    /// refreshes the latency at the batch boundary. Leaves the buffer
    /// empty (capacity retained).
    fn apply_batch(&mut self, batch: &mut Vec<TimedEvent>, tel: &mut Telemetry) {
        if batch.is_empty() {
            return;
        }
        let mut events = batch.drain(..).peekable();
        let mut ended_on_tick = false;
        while let Some(event) = events.next() {
            // A flash request: admitted and gone again with no event in
            // between. Decide admission exactly as the plain path would
            // (same least-loaded scan, same headroom), but skip the
            // ledger round-trip — `add` then `remove` is a bit-exact
            // identity, so not doing either leaves the same state.
            if let ChurnEvent::Arrival(request) = event.event() {
                let flash = matches!(
                    events.peek().map(TimedEvent::event),
                    Some(ChurnEvent::Departure(id)) if *id == request.id()
                ) && !self.active.contains_key(request.id())
                    && self.placement_plan(request).is_some();
                if flash {
                    let departure = events.next().expect("peeked");
                    self.advance_clock(event.time(), tel);
                    self.advance_clock(departure.time(), tel);
                    self.counters.admitted += 1;
                    self.counters.departed += 1;
                    continue;
                }
            }
            let tick = matches!(event.event(), ChurnEvent::ReoptimizeTick);
            let (time, event) = event.into_parts();
            self.advance_clock(time, tel);
            match event {
                ChurnEvent::Arrival(request) => {
                    self.admit_owned(request, tel);
                }
                other => {
                    self.dispatch(&other, tel);
                }
            }
            if tick {
                ended_on_tick = true;
                self.post_event(true, tel);
            }
        }
        if !ended_on_tick {
            // Keep the integral honest across the boundary even when the
            // batch is the trailing tail without a tick.
            self.current_latency = self.state.predicted_latency();
        }
    }

    /// Closes a run at `horizon`: re-offers any retries still due before
    /// it and accounts for the quiet tail between the last event and the
    /// horizon, so the time-weighted mean covers the whole run. Callers
    /// driving [`handle`](Self::handle) event by event should call this
    /// once at the end; [`run_trace`](Self::run_trace) does it
    /// automatically.
    pub fn finish(&mut self, horizon: f64) {
        self.finish_traced(horizon, &mut Telemetry::disabled());
    }

    /// [`finish`](Self::finish) with a telemetry session observing the
    /// closing retry drain.
    pub fn finish_traced(&mut self, horizon: f64, tel: &mut Telemetry) {
        self.offer_due_retries(horizon, tel);
        if horizon > self.clock {
            self.latency_integral += self.current_latency * (horizon - self.clock);
            self.clock = horizon;
        }
    }

    /// Re-offers every queued retry due at or before `upto`, each at its
    /// own virtual due time (advancing the clock and latency integral to
    /// it). A failed re-offer goes back into the queue with one more
    /// attempt on the counter, until the retry budget runs out.
    fn offer_due_retries(&mut self, upto: f64, tel: &mut Telemetry) {
        let Some(rc) = self.config.retry else { return };
        if self.retry.len() == 0 {
            return;
        }
        let token = tel.begin();
        while let Some((due, attempt, request)) = self.retry.pop_due(upto) {
            if due > self.clock {
                self.latency_integral += self.current_latency * (due - self.clock);
                self.clock = due;
            }
            self.counters.retries_attempted += 1;
            match self.placement_plan(&request) {
                Some(placements) => {
                    for &(vnf, k) in &placements {
                        self.state
                            .add_request(
                                vnf,
                                k,
                                request.id(),
                                request.arrival_rate(),
                                request.delivery(),
                            )
                            .expect("placement was validated against the ledger");
                    }
                    let id = request.id();
                    self.active.insert(request);
                    self.counters.retry_admitted += 1;
                    tel.emit(self.clock, self.counters.ticks, || {
                        EventKind::RetryAdmitted {
                            request: id,
                            attempt: u64::from(attempt),
                        }
                    });
                }
                None => {
                    let id = request.id();
                    match self.retry.schedule(&rc, request, attempt + 1, due) {
                        Ok(next_due) => {
                            tel.emit(self.clock, self.counters.ticks, || {
                                EventKind::RetryScheduled {
                                    request: id,
                                    attempt: u64::from(attempt + 1),
                                    due: next_due,
                                }
                            });
                        }
                        Err(refusal) => {
                            self.counters.retry_abandoned += 1;
                            tel.emit(self.clock, self.counters.ticks, || {
                                EventKind::RetryAbandoned {
                                    request: id,
                                    cause: refusal.slug().to_string(),
                                }
                            });
                        }
                    }
                }
            }
            self.current_latency = self.state.predicted_latency();
            self.latency_samples.push(self.current_latency);
            self.utilization_samples.push(self.peak_utilization());
        }
        tel.end(Phase::RetryDrain, token);
    }

    /// Queues a refused request for a later re-offer (first attempt),
    /// when retries are configured; abandoned entrants are counted.
    fn enqueue_retry(&mut self, request: &Request, tel: &mut Telemetry) {
        if let Some(rc) = self.config.retry {
            let id = request.id();
            match self.retry.schedule(&rc, request.clone(), 0, self.clock) {
                Ok(due) => {
                    tel.emit(self.clock, self.counters.ticks, || {
                        EventKind::RetryScheduled {
                            request: id,
                            attempt: 0,
                            due,
                        }
                    });
                }
                Err(refusal) => {
                    self.counters.retry_abandoned += 1;
                    tel.emit(self.clock, self.counters.ticks, || {
                        EventKind::RetryAbandoned {
                            request: id,
                            cause: refusal.slug().to_string(),
                        }
                    });
                }
            }
        }
    }

    /// The per-tick report snapshots collected so far.
    #[must_use]
    pub fn snapshots(&self) -> &[ControllerReport] {
        &self.snapshots
    }

    /// Histogram of the predicted latency observed after each event.
    #[must_use]
    pub fn latency_histogram(&self, bins: usize) -> Option<Histogram> {
        Histogram::fitted(self.latency_samples.as_slice(), bins)
    }

    /// Histogram of the peak instance utilization after each event.
    #[must_use]
    pub fn utilization_histogram(&self, bins: usize) -> Option<Histogram> {
        Histogram::fitted(self.utilization_samples.as_slice(), bins)
    }

    /// Snapshot of counters and derived statistics at the current clock.
    #[must_use]
    pub fn report(&self) -> ControllerReport {
        ControllerReport {
            time: self.clock,
            admitted: self.counters.admitted,
            rejected: self.counters.rejected,
            departed: self.counters.departed,
            shed: self.counters.shed,
            migrated_failover: self.counters.migrated_failover,
            migrated_reopt: self.counters.migrated_reopt,
            migrated_replace: self.counters.migrated_replace,
            ticks: self.counters.ticks,
            reopts_applied: self.counters.reopts_applied,
            reopts_skipped: self.counters.reopts_skipped,
            instances_added: self.counters.instances_added,
            instances_retired: self.counters.instances_retired,
            relocations: self.counters.relocations,
            replaces_applied: self.counters.replaces_applied,
            replaces_aborted: self.counters.replaces_aborted,
            node_downs: self.counters.node_downs,
            node_ups: self.counters.node_ups,
            stale_outage_events: self.counters.stale_outage_events,
            emergency_replaces: self.counters.emergency_replaces,
            retries_attempted: self.counters.retries_attempted,
            retry_admitted: self.counters.retry_admitted,
            retry_abandoned: self.counters.retry_abandoned,
            refines_applied: self.counters.refines_applied,
            refines_rejected: self.counters.refines_rejected,
            retry_pending: self.retry.len() as u64,
            active: self.active.len() as u64,
            mean_latency: if self.clock > 0.0 {
                self.latency_integral / self.clock
            } else {
                self.current_latency
            },
            current_latency: self.current_latency,
            peak_utilization: self.peak_utilization(),
        }
    }

    fn peak_utilization(&self) -> f64 {
        // Delegated to the ledger's alloc-free fleet sweep; `max` over the
        // per-instance ratios is order-independent, so the value is
        // unchanged from the old per-VNF loop.
        self.state.peak_utilization()
    }

    /// Admission: pick the least-loaded up instance per chain hop; refuse
    /// the arrival (or, under [`ShedPolicy::EvictLargest`], make room once
    /// per hop) if any hop would be driven to `ρ ≥ 1`. Evictions are
    /// applied eagerly as hops are scanned and are *not* rolled back if a
    /// later hop still fails — the shed requests are gone either way.
    fn admit(&mut self, request: &Request, tel: &mut Telemetry) -> EventOutcome {
        match self.plan_admission(request, tel) {
            Ok(placements) => self.commit_admission(request.clone(), placements, tel),
            Err(outcome) => outcome,
        }
    }

    /// [`admit`](Self::admit) without the final clone: the request is moved
    /// into the active set. Outcome-identical to the borrowing path.
    fn admit_owned(&mut self, request: Request, tel: &mut Telemetry) -> EventOutcome {
        match self.plan_admission(&request, tel) {
            Ok(placements) => self.commit_admission(request, placements, tel),
            Err(outcome) => outcome,
        }
    }

    /// The checking half of admission: one `(vnf, instance)` per chain hop
    /// on success, the rejection outcome (with its counters, journal
    /// records, evictions and retry enqueues already applied) on refusal.
    fn plan_admission(
        &mut self,
        request: &Request,
        tel: &mut Telemetry,
    ) -> Result<Vec<(VnfId, usize)>, EventOutcome> {
        if self.active.contains_key(request.id()) {
            self.counters.rejected += 1;
            tel.emit(self.clock, self.counters.ticks, || EventKind::Reject {
                request: request.id(),
                cause: "duplicate-id".to_string(),
            });
            return Err(EventOutcome::Rejected(RejectReason::DuplicateId));
        }
        let headroom = self.admission_headroom();
        let mut placements = Vec::with_capacity(request.chain().len());
        for &vnf in request.chain() {
            if self.state.instances(vnf) == 0 {
                self.counters.rejected += 1;
                tel.emit(self.clock, self.counters.ticks, || EventKind::Reject {
                    request: request.id(),
                    cause: "unknown-vnf".to_string(),
                });
                return Err(EventOutcome::Rejected(RejectReason::UnknownVnf { vnf }));
            }
            let Some(k) = self.state.least_loaded_up(vnf) else {
                self.counters.rejected += 1;
                tel.emit(self.clock, self.counters.ticks, || EventKind::Reject {
                    request: request.id(),
                    cause: "no-instance-up".to_string(),
                });
                self.enqueue_retry(request, tel);
                return Err(EventOutcome::Rejected(RejectReason::NoInstanceUp { vnf }));
            };
            if self.state.can_accept_within(
                vnf,
                k,
                request.arrival_rate(),
                request.delivery(),
                headroom,
            ) {
                placements.push((vnf, k));
                continue;
            }
            if self.config.shed == ShedPolicy::EvictLargest
                && self.evict_largest_for(vnf, k, request, tel)
            {
                placements.push((vnf, k));
                continue;
            }
            self.counters.rejected += 1;
            tel.emit(self.clock, self.counters.ticks, || EventKind::Reject {
                request: request.id(),
                cause: "would-overload".to_string(),
            });
            self.enqueue_retry(request, tel);
            return Err(EventOutcome::Rejected(RejectReason::WouldOverload { vnf }));
        }
        Ok(placements)
    }

    /// The mutating half of admission: writes the validated placements
    /// into the ledger and moves the request into the active set.
    fn commit_admission(
        &mut self,
        request: Request,
        placements: Vec<(VnfId, usize)>,
        tel: &mut Telemetry,
    ) -> EventOutcome {
        for &(vnf, k) in &placements {
            self.state
                .add_request(
                    vnf,
                    k,
                    request.id(),
                    request.arrival_rate(),
                    request.delivery(),
                )
                .expect("placement was validated against the ledger");
        }
        let id = request.id();
        self.active.insert(request);
        self.counters.admitted += 1;
        tel.emit(self.clock, self.counters.ticks, || EventKind::Admit {
            request: id,
            hops: placements.len() as u64,
        });
        EventOutcome::Admitted { placements }
    }

    /// A non-mutating admission check for retries: the least-loaded up
    /// instance per chain hop, under the current admission headroom, with
    /// no eviction fallback. `None` when any hop refuses.
    fn placement_plan(&self, request: &Request) -> Option<Vec<(VnfId, usize)>> {
        if self.active.contains_key(request.id()) {
            return None;
        }
        let headroom = self.admission_headroom();
        let mut placements = Vec::with_capacity(request.chain().len());
        for &vnf in request.chain() {
            let k = self.state.least_loaded_up(vnf)?;
            if !self.state.can_accept_within(
                vnf,
                k,
                request.arrival_rate(),
                request.delivery(),
                headroom,
            ) {
                return None;
            }
            placements.push((vnf, k));
        }
        Some(placements)
    }

    /// Brownout admission: while any node is dark (and emergency handling
    /// is configured), arrivals and retries are admitted only up to the
    /// brownout fraction of `μ` per instance, keeping slack on the
    /// surviving capacity for failover traffic and returning retries.
    fn admission_headroom(&self) -> f64 {
        match (&self.cluster, self.config.emergency) {
            (Some(cluster), Some(emergency)) if cluster.any_node_down() => {
                emergency.brownout_headroom
            }
            _ => 1.0,
        }
    }

    /// Tries to shed the largest-rate request of `(vnf, k)` to make room
    /// for `incoming`. The eviction must both free enough headroom and
    /// strictly shrink the instance's merged rate (evicting a smaller
    /// request for a bigger one would be a net loss). Returns whether the
    /// instance can now accept the newcomer.
    fn evict_largest_for(
        &mut self,
        vnf: VnfId,
        k: usize,
        incoming: &Request,
        tel: &mut Telemetry,
    ) -> bool {
        let incoming_inflated = incoming.effective_rate().value();
        let victim = self
            .state
            .members_of(vnf, k)
            .into_iter()
            .filter_map(|id| self.active.get(id))
            .map(|r| (r.effective_rate().value(), r.id()))
            // Largest inflated rate wins; id order breaks exact ties
            // deterministically (first max kept).
            .fold(None::<(f64, RequestId)>, |best, cand| match best {
                Some((rate, _)) if rate >= cand.0 => best,
                _ => Some(cand),
            });
        let Some((victim_rate, victim_id)) = victim else {
            return false;
        };
        let sum = self.state.instance_sum(vnf, k);
        // An unknown VNF has no instances and therefore no victim, so
        // this is unreachable from admission — but an eviction helper
        // that panics instead of declining is a trap for future callers.
        let Some(mu) = self.state.service_rate(vnf).map(|s| s.value()) else {
            return false;
        };
        if victim_rate <= incoming_inflated || sum - victim_rate + incoming_inflated >= mu {
            return false;
        }
        self.drop_request(victim_id);
        self.counters.shed += 1;
        tel.emit(self.clock, self.counters.ticks, || EventKind::Shed {
            request: victim_id,
            cause: "evicted-for-admission".to_string(),
        });
        true
    }

    /// Removes a request from every hop it occupies and from the active
    /// set (an eviction or a failed failover, not a normal departure).
    fn drop_request(&mut self, id: RequestId) {
        if let Some(request) = self.active.remove(id) {
            for &vnf in request.chain() {
                self.state.remove_request(vnf, id);
            }
        }
    }

    fn depart(&mut self, id: RequestId) -> EventOutcome {
        let Some(request) = self.active.remove(id) else {
            return EventOutcome::StaleDeparture;
        };
        for &vnf in request.chain() {
            self.state.remove_request(vnf, id);
        }
        self.counters.departed += 1;
        EventOutcome::Departed
    }

    /// Marks the instance down and re-dispatches its requests (id order)
    /// to surviving instances with headroom; requests that fit nowhere are
    /// shed entirely (and queued for retry when configured). An event
    /// naming an instance the controller doesn't track — e.g. one retired
    /// by re-placement since the trace was generated — is counted as
    /// stale and ignored.
    fn instance_down(&mut self, vnf: VnfId, instance: usize, tel: &mut Telemetry) -> EventOutcome {
        if !self.state.mark_down(vnf, instance) {
            self.counters.stale_outage_events += 1;
            return EventOutcome::StaleOutage;
        }
        let displaced = self.state.members_of(vnf, instance);
        let (mut migrated, mut shed) = (0u64, 0u64);
        for id in displaced {
            let request = self
                .active
                .get(id)
                .expect("ledger member is active")
                .clone();
            self.state.remove_request(vnf, id);
            let target = self.state.least_loaded_up(vnf).filter(|&k| {
                self.state
                    .can_accept(vnf, k, request.arrival_rate(), request.delivery())
            });
            match target {
                Some(k) => {
                    self.state
                        .add_request(vnf, k, id, request.arrival_rate(), request.delivery())
                        .expect("target was validated");
                    migrated += 1;
                }
                None => {
                    self.drop_request(id);
                    shed += 1;
                    tel.emit(self.clock, self.counters.ticks, || EventKind::Shed {
                        request: id,
                        cause: "instance-down".to_string(),
                    });
                    self.enqueue_retry(&request, tel);
                }
            }
        }
        self.counters.migrated_failover += migrated;
        self.counters.shed += shed;
        tel.emit(self.clock, self.counters.ticks, || {
            EventKind::InstanceDown {
                vnf,
                slot: instance as u64,
                migrated,
                shed,
            }
        });
        EventOutcome::InstanceDownHandled { migrated, shed }
    }

    /// Closes one outage window on the instance. A recovery with no open
    /// window (overlapping outages already closed, or an instance retired
    /// and re-grown since) is stale: counted, never a resurrection.
    fn instance_up(&mut self, vnf: VnfId, instance: usize, tel: &mut Telemetry) -> EventOutcome {
        if self.state.mark_up(vnf, instance) {
            tel.emit(self.clock, self.counters.ticks, || EventKind::InstanceUp {
                vnf,
                slot: instance as u64,
            });
            EventOutcome::InstanceUpHandled
        } else {
            self.counters.stale_outage_events += 1;
            EventOutcome::StaleOutage
        }
    }

    /// A whole node went dark. Every VNF assigned to it loses all its
    /// instances at once (whole-VNF-per-node placement): the ledger marks
    /// them host-down atomically, mass failover displaces every request
    /// whose chain crosses a lost VNF — deduplicated, so a chain crossing
    /// two lost VNFs is shed exactly once — and, when configured, an
    /// emergency re-placement immediately repacks onto the surviving
    /// nodes instead of waiting for the next tick. Shed requests are
    /// queued for retry when configured.
    fn node_down(&mut self, node: NodeId, tel: &mut Telemetry) -> EventOutcome {
        let hosted = {
            let Some(cluster) = self.cluster.as_mut() else {
                self.counters.stale_outage_events += 1;
                return EventOutcome::StaleOutage;
            };
            let Some(depth) = cluster.node_down.get_mut(node.as_usize()) else {
                self.counters.stale_outage_events += 1;
                return EventOutcome::StaleOutage;
            };
            self.counters.node_downs += 1;
            *depth += 1;
            if *depth > 1 {
                // Overlapping window: the node is already dark and its
                // VNFs already failed over.
                tel.emit(self.clock, self.counters.ticks, || EventKind::NodeDown {
                    node,
                    vnfs_lost: 0,
                    shed: 0,
                });
                return EventOutcome::NodeDownHandled {
                    vnfs_lost: 0,
                    shed: 0,
                    instances_added: 0,
                    relocations: 0,
                };
            }
            cluster.hosted_by(node)
        };
        let mut displaced: BTreeSet<RequestId> = BTreeSet::new();
        for &vnf in &hosted {
            self.state.set_host_down(vnf, true);
            displaced.extend(self.state.active_ids(vnf));
        }
        // The NodeDown record precedes the per-request Shed records it
        // causes, so the journal reads in causal order.
        let (vnfs_lost, displaced_count) = (hosted.len() as u64, displaced.len() as u64);
        tel.emit(self.clock, self.counters.ticks, || EventKind::NodeDown {
            node,
            vnfs_lost,
            shed: displaced_count,
        });
        // With every instance of the lost VNFs down at once, failover has
        // no surviving target within the VNF: every displaced request is
        // shed whole (the retry ladder is the recovery path).
        let mut shed = 0u64;
        for id in displaced {
            let request = self
                .active
                .get(id)
                .expect("ledger member is active")
                .clone();
            self.drop_request(id);
            shed += 1;
            tel.emit(self.clock, self.counters.ticks, || EventKind::Shed {
                request: id,
                cause: "node-down".to_string(),
            });
            self.enqueue_retry(&request, tel);
        }
        self.counters.shed += shed;
        let (instances_added, relocations) = self.emergency_replace(tel);
        if self.config.emergency.is_some() {
            tel.emit(self.clock, self.counters.ticks, || {
                EventKind::EmergencyReplace {
                    node,
                    instances_added,
                    relocations,
                }
            });
        }
        EventOutcome::NodeDownHandled {
            vnfs_lost: hosted.len() as u64,
            shed,
            instances_added,
            relocations,
        }
    }

    /// A node returned. Once its last outage window closes, the VNFs
    /// *still assigned* to it become dispatchable again; VNFs relocated
    /// away during the outage are untouched. Reclaiming the node (moving
    /// load back onto it) is left to the next tick's hysteresis-gated
    /// re-placement phase.
    fn node_up(&mut self, node: NodeId, tel: &mut Telemetry) -> EventOutcome {
        let restored = {
            let Some(cluster) = self.cluster.as_mut() else {
                self.counters.stale_outage_events += 1;
                return EventOutcome::StaleOutage;
            };
            let Some(depth) = cluster.node_down.get_mut(node.as_usize()) else {
                self.counters.stale_outage_events += 1;
                return EventOutcome::StaleOutage;
            };
            if *depth == 0 {
                // A recovery without a matching outage.
                self.counters.stale_outage_events += 1;
                return EventOutcome::StaleOutage;
            }
            self.counters.node_ups += 1;
            *depth -= 1;
            if *depth > 0 {
                tel.emit(self.clock, self.counters.ticks, || EventKind::NodeUp {
                    node,
                    vnfs_restored: 0,
                });
                return EventOutcome::NodeUpHandled { vnfs_restored: 0 };
            }
            cluster.hosted_by(node)
        };
        for &vnf in &restored {
            self.state.set_host_down(vnf, false);
        }
        let vnfs_restored = restored.len() as u64;
        tel.emit(self.clock, self.counters.ticks, || EventKind::NodeUp {
            node,
            vnfs_restored,
        });
        EventOutcome::NodeUpHandled { vnfs_restored }
    }

    /// Emergency re-placement, run outside the periodic tick right after
    /// a node failure: incremental BFDSU over the *surviving* nodes (the
    /// dark fleet contributes zero capacity), relocating stranded VNFs
    /// and growing replacement instances toward the ρ-headroom targets —
    /// which include the retry backlog, since that traffic re-offers as
    /// soon as capacity returns. Bounded by the per-event op cap; no
    /// latency hysteresis, because restoring availability is the point.
    /// Returns `(instances_added, relocations)`.
    fn emergency_replace(&mut self, tel: &mut Telemetry) -> (u64, u64) {
        if self.config.emergency.is_none() || self.cluster.is_none() {
            return (0, 0);
        }
        let token = tel.begin();
        let result = self.emergency_replace_inner();
        tel.end(Phase::EmergencyReplace, token);
        result
    }

    fn emergency_replace_inner(&mut self) -> (u64, u64) {
        let Some(ec) = self.config.emergency else {
            return (0, 0);
        };
        let Some(cluster) = self.cluster.clone() else {
            return (0, 0);
        };
        let mut grow_candidates: Vec<(f64, VnfId)> = Vec::new();
        for vnf in self.state.vnf_ids().collect::<Vec<_>>() {
            let m = self.state.instances(vnf);
            if m == 0 {
                continue;
            }
            let mu = self.state.service_rate(vnf).expect("vnf exists").value();
            let lambda = self.state.total_sum(vnf) + self.retry.pending_rate(vnf);
            let needed = {
                let raw = (lambda / (ec.headroom * mu)).ceil();
                if raw.is_finite() && raw >= 1.0 {
                    raw as usize
                } else {
                    1
                }
            };
            if needed > m {
                let ratio = lambda / (m as f64 * mu);
                for _ in m..needed {
                    grow_candidates.push((ratio, vnf));
                }
            }
        }
        grow_candidates.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
        let mut grows: Vec<VnfId> = grow_candidates.into_iter().map(|(_, v)| v).collect();
        grows.truncate(ec.max_instance_ops);

        let effective = cluster.effective_nodes();
        let mut rng = StdRng::seed_from_u64(ec.seed ^ self.counters.node_downs);
        let (assignment, relocated) = loop {
            let grown = build_vnfs(&cluster.protos, &|id| {
                self.state.instances(id) + grows.iter().filter(|&&g| g == id).count()
            });
            let Ok(problem) = PlacementProblem::new(effective.clone(), grown) else {
                if grows.pop().is_none() {
                    return (0, 0);
                }
                continue;
            };
            if fits_in_place(&problem, &cluster.assignment) {
                break (cluster.assignment.clone(), Vec::new());
            }
            let current = build_vnfs(&cluster.protos, &|id| self.state.instances(id));
            // The prior is validated against the *full-capacity* fleet:
            // the live assignment still maps the stranded VNFs onto the
            // dark node, which the zero-capacity problem would reject.
            let prior = PlacementProblem::new(cluster.nodes.clone(), current)
                .ok()
                .and_then(|p| Placement::new(&p, cluster.assignment.clone()).ok())
                .expect("the live assignment is valid for the live counts");
            match Bfdsu::new().place_delta(&problem, &prior, &mut rng) {
                Ok(delta) if grows.len() + delta.moved().len() <= ec.max_instance_ops => {
                    let moved = delta.moved().to_vec();
                    break (delta.into_placement().assignment().to_vec(), moved);
                }
                _ => {
                    if grows.pop().is_none() {
                        // Not even a pure relocation fits the surviving
                        // fleet: degrade gracefully and let retries wait
                        // for the node to return.
                        return (0, 0);
                    }
                }
            }
        };
        if grows.is_empty() && relocated.is_empty() {
            return (0, 0);
        }
        for &vnf in &grows {
            self.state.add_instance(vnf).expect("vnf exists");
        }
        self.commit_assignment(assignment);
        self.counters.instances_added += grows.len() as u64;
        self.counters.relocations += relocated.len() as u64;
        self.counters.emergency_replaces += 1;
        (grows.len() as u64, relocated.len() as u64)
    }

    /// Adopts a (possibly repacked) VNF→node assignment and recomputes
    /// every VNF's host-availability from it — a VNF relocated off a dark
    /// node becomes dispatchable again immediately.
    fn commit_assignment(&mut self, assignment: Vec<NodeId>) {
        let cluster = self.cluster.as_mut().expect("caller holds a cluster");
        cluster.assignment = assignment;
        for (proto, &node) in cluster.protos.iter().zip(&cluster.assignment) {
            self.state
                .set_host_down(proto.id(), cluster.node_down[node.as_usize()] > 0);
        }
    }

    /// Bounded plan selection: repeatedly applies, out of the remaining
    /// candidate moves, the one reducing predicted latency the most, until
    /// the budget is exhausted or no candidate improves. Candidate
    /// evaluation try-applies each move on a preview ledger and undoes it,
    /// relying on `add_request`/`remove_request` restoring the ledger
    /// bit-for-bit. Returns the selected moves (in selection order) and
    /// the predicted latency with all of them applied.
    fn select_moves_greedily(
        &self,
        mut remaining: Vec<(RequestId, VnfId, usize)>,
        budget: usize,
        now: f64,
    ) -> (Vec<(RequestId, VnfId, usize)>, f64) {
        let mut preview = self.state.clone();
        let mut selected = Vec::with_capacity(budget.min(remaining.len()));
        let mut current = now;
        while selected.len() < budget && !remaining.is_empty() {
            let mut best: Option<(usize, f64)> = None;
            for (i, &(id, vnf, target)) in remaining.iter().enumerate() {
                let request = self.active.get(id).expect("ledger member is active");
                let (rate, delivery) = (request.arrival_rate(), request.delivery());
                let origin = preview.remove_request(vnf, id).expect("mover is assigned");
                preview
                    .add_request(vnf, target, id, rate, delivery)
                    .expect("target index comes from a valid schedule");
                let after = preview.predicted_latency();
                preview.remove_request(vnf, id);
                preview
                    .add_request(vnf, origin, id, rate, delivery)
                    .expect("origin was just vacated");
                // Strict improvement required; first-best wins ties so the
                // selection is deterministic.
                if after < current && best.is_none_or(|(_, b)| after < b) {
                    best = Some((i, after));
                }
            }
            let Some((i, after)) = best else { break };
            let (id, vnf, target) = remaining.remove(i);
            let request = self.active.get(id).expect("ledger member is active");
            preview.remove_request(vnf, id);
            preview
                .add_request(vnf, target, id, request.arrival_rate(), request.delivery())
                .expect("target index comes from a valid schedule");
            selected.push((id, vnf, target));
            current = after;
        }
        (selected, current)
    }

    /// A re-optimization tick. The re-placement phase (when configured and
    /// a cluster is known) runs first, so freshly added instances are
    /// available to the scheduling phase within the same tick; the
    /// scheduling phase then re-balances the live request set over the
    /// instances that now exist.
    fn tick(&mut self, tel: &mut Telemetry) -> EventOutcome {
        self.counters.ticks += 1;
        let replacing = self.config.replace.is_some() && self.cluster.is_some();
        let refining = self.config.refiner.is_some() && self.cluster.is_some();
        if self.config.reopt.is_none() && !replacing && !refining {
            return EventOutcome::TickIgnored;
        }
        let (instances_added, instances_retired, relocations) = if replacing {
            self.replace_phase(tel)
        } else {
            (0, 0, 0)
        };
        let migrations = self.reopt_phase(tel);
        let refined = if refining { self.refine_phase(tel) } else { 0 };
        if migrations + instances_added + instances_retired + relocations + refined == 0 {
            EventOutcome::TickSkipped
        } else {
            EventOutcome::Reoptimized {
                migrations,
                instances_added,
                instances_retired,
                relocations: relocations + refined,
            }
        }
    }

    /// The scheduling phase of a tick: re-run RCKK on the live request set
    /// and apply a bounded, hysteresis-gated slice of the plan. Returns the
    /// number of requests moved.
    fn reopt_phase(&mut self, tel: &mut Telemetry) -> u64 {
        let Some(reopt) = self.config.reopt else {
            return 0;
        };

        // Re-run RCKK per VNF on the live request set (raw external rates,
        // exactly as the offline pipeline feeds its scheduler) and collect
        // the requests whose current instance differs from the target, in
        // (VNF, id) order for determinism.
        let plan_token = tel.begin();
        let mut moves: Vec<(RequestId, VnfId, usize)> = Vec::new();
        for vnf in self.state.vnf_ids().collect::<Vec<_>>() {
            let ids = self.state.active_ids(vnf);
            if ids.is_empty() {
                continue;
            }
            let rates: Vec<_> = ids
                .iter()
                .map(|&id| {
                    self.active
                        .get(id)
                        .expect("ledger member is active")
                        .arrival_rate()
                })
                .collect();
            // Plan only over the instances that are actually up; the
            // schedule's indices are mapped back to real instance numbers.
            let ups: Vec<usize> = (0..self.state.instances(vnf))
                .filter(|&k| self.state.is_up(vnf, k))
                .collect();
            if ups.is_empty() {
                continue;
            }
            let Ok(schedule) = Rckk::new().schedule(&rates, ups.len()) else {
                // Cannot happen for a non-empty live set; treat as "no
                // plan" rather than aborting the run.
                continue;
            };
            for (i, &id) in ids.iter().enumerate() {
                let target = ups[schedule.instance_of(i)];
                if self.state.home_of(vnf, id) != Some(target) {
                    moves.push((id, vnf, target));
                }
            }
        }
        tel.end(Phase::RckkPlan, plan_token);
        if moves.is_empty() {
            self.counters.reopts_skipped += 1;
            tel.emit(self.clock, self.counters.ticks, || {
                EventKind::ReoptRejected {
                    phase: ReoptPhase::Scheduling,
                    cause: "empty-plan".to_string(),
                    predicted_gain: 0.0,
                    required_gain: reopt.min_gain,
                }
            });
            return 0;
        }

        // Bound the plan. When the budget covers the whole plan, adopt it
        // verbatim (the oracle path: the live assignment becomes exactly
        // the fresh RCKK schedule). Otherwise pick the moves greedily by
        // marginal predicted-latency gain — an arbitrary prefix of a full
        // rebalance is often infeasible or even harmful, because each
        // move's target only has room once *other* movers have left.
        let probe_token = tel.begin();
        let now = self.state.predicted_latency();
        let (moves, after) = if moves.len() <= reopt.max_migrations {
            let mut preview = self.state.clone();
            for &(id, vnf, target) in &moves {
                let request = self.active.get(id).expect("ledger member is active");
                preview.remove_request(vnf, id);
                preview
                    .add_request(vnf, target, id, request.arrival_rate(), request.delivery())
                    .expect("target index comes from a valid schedule");
            }
            let after = preview.predicted_latency();
            (moves, after)
        } else {
            self.select_moves_greedily(moves, reopt.max_migrations, now)
        };
        tel.end(Phase::HysteresisProbe, probe_token);
        if moves.is_empty() {
            self.counters.reopts_skipped += 1;
            tel.emit(self.clock, self.counters.ticks, || {
                EventKind::ReoptRejected {
                    phase: ReoptPhase::Scheduling,
                    cause: "no-improvement".to_string(),
                    predicted_gain: 0.0,
                    required_gain: reopt.min_gain,
                }
            });
            return 0;
        }

        // Hysteresis: the selected moves must promise a relative
        // predicted-latency gain of at least `min_gain`. (An infeasible
        // full plan previews as infinite latency and is skipped here.)
        let gain = if now > 0.0 { (now - after) / now } else { 0.0 };
        if gain < reopt.min_gain {
            self.counters.reopts_skipped += 1;
            tel.emit(self.clock, self.counters.ticks, || {
                EventKind::ReoptRejected {
                    phase: ReoptPhase::Scheduling,
                    cause: "hysteresis".to_string(),
                    predicted_gain: gain,
                    required_gain: reopt.min_gain,
                }
            });
            return 0;
        }

        // Apply the plan verbatim. The previewed end state is exactly what
        // hysteresis accepted (finite latency, every instance stable), so
        // no per-move capacity fallback is needed — and none is taken,
        // keeping the live state equal to the preview bit-for-bit.
        for &(id, vnf, target) in &moves {
            let request = self.active.get(id).expect("ledger member is active");
            let (rate, delivery) = (request.arrival_rate(), request.delivery());
            self.state.remove_request(vnf, id);
            self.state
                .add_request(vnf, target, id, rate, delivery)
                .expect("move comes from a validated plan");
        }
        let migrations = moves.len() as u64;
        self.counters.migrated_reopt += migrations;
        self.counters.reopts_applied += 1;
        tel.emit(self.clock, self.counters.ticks, || {
            // The realized gain re-measures the live ledger after the
            // commit; equal to the prediction here (the plan is applied
            // verbatim), journaled so trace consumers can diff them.
            let realized = self.state.predicted_latency();
            EventKind::ReoptCommit {
                phase: ReoptPhase::Scheduling,
                migrations,
                instances_added: 0,
                instances_retired: 0,
                relocations: 0,
                predicted_gain: gain,
                realized_gain: if now > 0.0 {
                    (now - realized) / now
                } else {
                    0.0
                },
            }
        });
        migrations
    }

    /// The re-placement phase of a tick: bounded BFDSU delta-placement over
    /// live per-VNF rates. Computes ρ-headroom instance-count targets,
    /// previews the plan (retirements with drains, additions, relocations)
    /// on a cloned ledger under the per-tick op budget `K`, gates plans
    /// that add or relocate instances on a balanced predicted-latency gain,
    /// and commits the preview atomically. Returns
    /// `(instances_added, instances_retired, relocations)`.
    #[allow(clippy::too_many_lines)]
    fn replace_phase(&mut self, tel: &mut Telemetry) -> (u64, u64, u64) {
        let rc = self.config.replace.expect("caller checked replace config");
        let cluster = self.cluster.clone().expect("caller checked cluster");

        // Phase 1: ρ-headroom targets from live inflated rates, turned
        // into unit grow/shrink candidates. Grows are ranked by overload
        // ratio (descending, id ascending on ties); shrinks follow in id
        // order. The combined list is truncated to the budget `K`.
        let mut grow_candidates: Vec<(f64, VnfId)> = Vec::new();
        let mut shrinks: Vec<VnfId> = Vec::new();
        for vnf in self.state.vnf_ids().collect::<Vec<_>>() {
            let m = self.state.instances(vnf);
            if m == 0 {
                continue;
            }
            let mu = self.state.service_rate(vnf).expect("vnf exists").value();
            // Targets provision for the retry backlog too: that traffic
            // re-offers as soon as capacity returns (zero without a retry
            // queue).
            let lambda = self.state.total_sum(vnf) + self.retry.pending_rate(vnf);
            let needed = {
                let raw = (lambda / (rc.headroom * mu)).ceil();
                if raw.is_finite() && raw >= 1.0 {
                    raw as usize
                } else {
                    1
                }
            };
            let ratio = lambda / (m as f64 * mu);
            if needed > m {
                for _ in m..needed {
                    grow_candidates.push((ratio, vnf));
                }
            } else if m > needed && ratio < rc.shrink_headroom && !self.state.host_down(vnf) {
                // A host-down VNF always looks idle; don't retire the
                // instances it will need back after relocation/recovery.
                for _ in needed..m {
                    shrinks.push(vnf);
                }
            }
        }
        grow_candidates.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
        let mut grows: Vec<VnfId> = grow_candidates.into_iter().map(|(_, v)| v).collect();
        if grows.len() >= rc.max_instance_ops {
            grows.truncate(rc.max_instance_ops);
            shrinks.clear();
        } else {
            shrinks.truncate(rc.max_instance_ops - grows.len());
        }
        if grows.is_empty() && shrinks.is_empty() {
            return (0, 0, 0);
        }

        // Phase 2: preview retirements. Each shrink drains the VNF's last
        // instance onto the least-loaded accepting sibling; when any
        // member fits nowhere the shrink is cancelled and the drained
        // members are put back (the ledger recomputes sums from its member
        // maps, so the restore is bit-for-bit).
        let mut preview = self.state.clone();
        let mut applied_shrinks: Vec<VnfId> = Vec::new();
        let mut drained_total = 0u64;
        for &vnf in &shrinks {
            let retiring = preview.instances(vnf) - 1;
            let mut drained: Vec<RequestId> = Vec::new();
            let mut ok = true;
            for id in preview.members_of(vnf, retiring) {
                let request = self.active.get(id).expect("ledger member is active");
                let (rate, delivery) = (request.arrival_rate(), request.delivery());
                preview.remove_request(vnf, id);
                let target = (0..preview.instances(vnf))
                    .filter(|&k| k != retiring && preview.is_up(vnf, k))
                    .filter(|&k| preview.can_accept(vnf, k, rate, delivery))
                    .min_by(|&a, &b| {
                        preview
                            .instance_sum(vnf, a)
                            .total_cmp(&preview.instance_sum(vnf, b))
                            .then(a.cmp(&b))
                    });
                match target {
                    Some(k) => {
                        preview
                            .add_request(vnf, k, id, rate, delivery)
                            .expect("sibling accepted the drain");
                        drained.push(id);
                    }
                    None => {
                        preview
                            .add_request(vnf, retiring, id, rate, delivery)
                            .expect("origin was just vacated");
                        for &did in &drained {
                            let r = self.active.get(did).expect("ledger member is active");
                            preview.remove_request(vnf, did);
                            preview
                                .add_request(vnf, retiring, did, r.arrival_rate(), r.delivery())
                                .expect("origin held this request before the drain");
                        }
                        ok = false;
                        break;
                    }
                }
            }
            if ok {
                drained_total += drained.len() as u64;
                preview
                    .retire_instance(vnf)
                    .expect("retiring instance was drained and is not the last");
                applied_shrinks.push(vnf);
            }
        }

        // Phase 3: feasibility of the grown fleet on the physical cluster
        // — dark nodes contribute zero capacity, so VNFs stranded on them
        // become misfits and relocate here even without emergency
        // handling. If the desired counts fit on the current assignment,
        // nothing relocates; otherwise the incremental BFDSU repacks, and
        // the plan must still fit the op budget (each relocation costs
        // one unit) — when it does not, the lowest-priority grow is
        // dropped and the fit is retried. The per-tick RNG is derived
        // from the tick count, so runs are bit-identical at any thread
        // count.
        let mut rng = StdRng::seed_from_u64(rc.seed ^ self.counters.ticks);
        let effective = cluster.effective_nodes();
        let fit_token = tel.begin();
        let (assignment, relocated) = loop {
            let grown = build_vnfs(&cluster.protos, &|id| {
                preview.instances(id) + grows.iter().filter(|&&g| g == id).count()
            });
            let Ok(problem) = PlacementProblem::new(effective.clone(), grown) else {
                if grows.pop().is_none() {
                    break (cluster.assignment.clone(), Vec::new());
                }
                continue;
            };
            if fits_in_place(&problem, &cluster.assignment) {
                break (cluster.assignment.clone(), Vec::new());
            }
            let current = build_vnfs(&cluster.protos, &|id| preview.instances(id));
            // The prior is validated against the *full-capacity* fleet:
            // the live assignment may still map VNFs onto a dark node,
            // which the zero-capacity problem would reject.
            let prior = PlacementProblem::new(cluster.nodes.clone(), current)
                .ok()
                .and_then(|p| Placement::new(&p, cluster.assignment.clone()).ok())
                .expect("the live assignment is valid for the live counts");
            match Bfdsu::new().place_delta(&problem, &prior, &mut rng) {
                Ok(delta)
                    if applied_shrinks.len() + grows.len() + delta.moved().len()
                        <= rc.max_instance_ops =>
                {
                    let moved = delta.moved().to_vec();
                    break (delta.into_placement().assignment().to_vec(), moved);
                }
                _ => {
                    if grows.pop().is_none() {
                        break (cluster.assignment.clone(), Vec::new());
                    }
                }
            }
        };
        tel.end(Phase::PlaceDelta, fit_token);
        if grows.is_empty() && applied_shrinks.is_empty() && relocated.is_empty() {
            return (0, 0, 0);
        }

        // Phase 4: hysteresis. Plans that add or relocate instances must
        // promise a balanced predicted-latency gain of at least `min_gain`
        // or the whole plan (retirements included) is aborted; pure-shrink
        // plans are exempt — they trade latency for capacity by design,
        // gated by the low watermark instead.
        for &vnf in &grows {
            preview.add_instance(vnf).expect("vnf exists");
        }
        // `(now, gain)` of the gate when it ran, for the journal record;
        // pure-shrink plans bypass it and journal zero gains.
        let mut gate: Option<(f64, f64)> = None;
        if !grows.is_empty() || !relocated.is_empty() {
            let probe_token = tel.begin();
            // A plan that pulls a VNF off a dark node restores service and
            // bypasses the gate: its balanced-latency gain previews as
            // zero (the dead VNF carries no live load), yet skipping it
            // would strand the VNF until the node returns.
            let restores = relocated.iter().any(|&v| self.state.host_down(v));
            let now = self.state.balanced_latency();
            let after = preview.balanced_latency();
            let gain = if now.is_infinite() {
                // Escaping a saturated configuration is always worth it.
                if after.is_finite() {
                    1.0
                } else {
                    0.0
                }
            } else if now > 0.0 {
                (now - after) / now
            } else {
                0.0
            };
            tel.end(Phase::HysteresisProbe, probe_token);
            gate = Some((now, gain));
            if !restores && gain < rc.min_gain {
                self.counters.replaces_aborted += 1;
                tel.emit(self.clock, self.counters.ticks, || {
                    EventKind::ReoptRejected {
                        phase: ReoptPhase::Replacement,
                        cause: "hysteresis".to_string(),
                        predicted_gain: gain,
                        required_gain: rc.min_gain,
                    }
                });
                return (0, 0, 0);
            }
        }

        // Phase 5: commit — the previewed ledger becomes the live state
        // and the cluster adopts the (possibly repacked) assignment, with
        // host-availability recomputed from the new node mapping.
        let added = grows.len() as u64;
        let retired = applied_shrinks.len() as u64;
        let moved = relocated.len() as u64;
        self.state = preview;
        self.cluster = Some(cluster);
        self.commit_assignment(assignment);
        self.counters.migrated_replace += drained_total;
        self.counters.instances_added += added;
        self.counters.instances_retired += retired;
        self.counters.relocations += moved;
        self.counters.replaces_applied += 1;
        tel.emit(self.clock, self.counters.ticks, || {
            let (predicted_gain, realized_gain) = match gate {
                Some((now, gain)) if now.is_finite() && now > 0.0 => {
                    (gain, (now - self.state.balanced_latency()) / now)
                }
                Some((_, gain)) => (gain, gain),
                None => (0.0, 0.0),
            };
            EventKind::ReoptCommit {
                phase: ReoptPhase::Replacement,
                migrations: drained_total,
                instances_added: added,
                instances_retired: retired,
                relocations: moved,
                predicted_gain,
                realized_gain,
            }
        });
        (added, retired, moved)
    }

    /// The background-refinement phase of a tick: on a *quiet* tick (no
    /// node currently dark, no node outage or recovery since the last
    /// tick) run a bounded anytime metaheuristic search over the VNF→node
    /// mapping, warm-started from the live assignment, and adopt the
    /// searched plan when it clears the objective-gain hysteresis within
    /// the relocation budget. Every generation is timed as a
    /// `search-generation` span; the search itself derives per-individual
    /// seeds from `(seed ^ tick, generation·population + i)`, so results
    /// are bit-identical at any thread count. Returns the number of VNFs
    /// relocated.
    fn refine_phase(&mut self, tel: &mut Telemetry) -> u64 {
        let Some(rc) = self.config.refiner else {
            return 0;
        };
        let Some(cluster) = self.cluster.clone() else {
            return 0;
        };
        // Quiet-tick gate: outage ticks belong to the recovery machinery,
        // and a search over a degraded fleet would chase a transient
        // topology.
        let outages = self.counters.node_downs + self.counters.node_ups;
        let quiet = !cluster.any_node_down() && outages == self.counters.outages_seen;
        self.counters.outages_seen = outages;
        if !quiet {
            return 0;
        }
        let vnfs = build_vnfs(&cluster.protos, &|id| self.state.instances(id));
        let Ok(problem) = PlacementProblem::new(cluster.nodes.clone(), vnfs) else {
            return 0;
        };
        let mut config = match rc.engine {
            Engine::Ga => SearchConfig::ga(rc.seed ^ self.counters.ticks),
            Engine::Pso => SearchConfig::pso(rc.seed ^ self.counters.ticks),
        };
        config.population = rc.population.max(1);
        config.weights = rc.weights;
        let config = config.with_initial(cluster.assignment.clone());
        let incumbent = objective(&problem, &cluster.assignment, &config.weights);
        let Ok(mut run) = SearchRun::new(&problem, &config) else {
            return 0;
        };
        for _ in 0..rc.generations {
            let token = tel.begin();
            run.step();
            tel.end(Phase::SearchGeneration, token);
        }
        let gain_of = |fit: f64| {
            if incumbent > 0.0 {
                (incumbent - fit) / incumbent
            } else {
                0.0
            }
        };
        let searched = run.best_assignment().to_vec();
        let moves: Vec<usize> = (0..searched.len())
            .filter(|&f| searched[f] != cluster.assignment[f])
            .collect();
        if moves.is_empty() {
            self.counters.refines_rejected += 1;
            tel.emit(self.clock, self.counters.ticks, || {
                EventKind::ReoptRejected {
                    phase: ReoptPhase::Refiner,
                    cause: "no-improvement".to_string(),
                    predicted_gain: 0.0,
                    required_gain: rc.min_gain,
                }
            });
            return 0;
        }
        // Bound the plan. Within the budget the searched assignment is
        // adopted verbatim; over it, single reassignments are applied
        // greedily by marginal objective gain. Each greedy pick requires a
        // strict improvement over a feasible incumbent, and infeasible
        // intermediates score above any feasible layout, so the bounded
        // plan stays feasible move by move.
        let (plan, predicted_fitness) = if moves.len() <= rc.max_moves {
            (searched.clone(), run.best_fitness())
        } else {
            let probe_token = tel.begin();
            let mut current = cluster.assignment.clone();
            let mut fit = incumbent;
            let mut remaining = moves.clone();
            let mut applied = 0usize;
            while applied < rc.max_moves && !remaining.is_empty() {
                let mut best: Option<(usize, f64)> = None;
                for (i, &f) in remaining.iter().enumerate() {
                    let prev = current[f];
                    current[f] = searched[f];
                    let after = objective(&problem, &current, &config.weights);
                    current[f] = prev;
                    if after < fit && best.is_none_or(|(_, b)| after < b) {
                        best = Some((i, after));
                    }
                }
                let Some((i, after)) = best else { break };
                let f = remaining.remove(i);
                current[f] = searched[f];
                fit = after;
                applied += 1;
            }
            tel.end(Phase::HysteresisProbe, probe_token);
            (current, fit)
        };
        // Hysteresis: the bounded plan must promise a relative objective
        // gain of at least `min_gain` over the live assignment.
        let gain = gain_of(predicted_fitness);
        if gain < rc.min_gain {
            self.counters.refines_rejected += 1;
            tel.emit(self.clock, self.counters.ticks, || {
                EventKind::ReoptRejected {
                    phase: ReoptPhase::Refiner,
                    cause: if gain <= 0.0 {
                        "no-improvement".to_string()
                    } else {
                        "hysteresis".to_string()
                    },
                    predicted_gain: gain,
                    required_gain: rc.min_gain,
                }
            });
            return 0;
        }
        debug_assert!(
            Placement::validate(&problem, &plan).is_ok(),
            "the refiner only commits feasible plans"
        );
        let relocated = plan
            .iter()
            .zip(&cluster.assignment)
            .filter(|(a, b)| a != b)
            .count() as u64;
        let realized = gain_of(objective(&problem, &plan, &config.weights));
        self.commit_assignment(plan);
        self.counters.refines_applied += 1;
        self.counters.relocations += relocated;
        tel.emit(self.clock, self.counters.ticks, || EventKind::ReoptCommit {
            phase: ReoptPhase::Refiner,
            migrations: 0,
            instances_added: 0,
            instances_retired: 0,
            relocations: relocated,
            predicted_gain: gain,
            realized_gain: realized,
        });
        relocated
    }
}

/// Rebuilds the VNF prototypes with live instance counts, for assembling
/// [`PlacementProblem`]s during (re-)placement.
fn build_vnfs(protos: &[Vnf], count_of: &dyn Fn(VnfId) -> usize) -> Vec<Vnf> {
    protos
        .iter()
        .map(|p| {
            Vnf::builder(p.id(), p.kind())
                .demand_per_instance(p.demand_per_instance())
                .instances(count_of(p.id()) as u32)
                .service_rate(p.service_rate())
                .build()
                .expect("instance counts stay >= 1")
        })
        .collect()
}

/// Whether `assignment` stays within every node's capacity — delegates to
/// the placement validator, so the tolerance is identical everywhere an
/// assignment is checked.
fn fits_in_place(problem: &PlacementProblem, assignment: &[NodeId]) -> bool {
    Placement::validate(problem, assignment).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use nfv_model::{ArrivalRate, DeliveryProbability, ServiceChain};
    use nfv_workload::churn::ChurnTraceBuilder;
    use nfv_workload::{ScenarioBuilder, ServiceRatePolicy};

    fn scenario() -> Scenario {
        ScenarioBuilder::new()
            .vnfs(4)
            .requests(30)
            .service_rate_policy(ServiceRatePolicy::ScaledToLoad {
                target_utilization: 0.6,
            })
            .seed(5)
            .build()
            .unwrap()
    }

    fn base_trace(s: &Scenario) -> ChurnTrace {
        ChurnTraceBuilder::new().horizon(50.0).build(s).unwrap()
    }

    #[test]
    fn base_population_is_admitted_without_rejections() {
        let s = scenario();
        let mut controller = Controller::new(&s, ControllerConfig::online_only());
        let report = controller.run_trace(&base_trace(&s));
        assert_eq!(report.admitted, s.requests().len() as u64);
        assert_eq!(report.rejected, 0);
        assert_eq!(report.active, s.requests().len() as u64);
        assert!(report.peak_utilization < 1.0, "admission keeps rho < 1");
        assert!(report.mean_latency > 0.0);
    }

    #[test]
    fn departures_empty_the_system() {
        let s = scenario();
        let mut controller = Controller::new(&s, ControllerConfig::online_only());
        controller.run_trace(&base_trace(&s));
        let mut t = 1.0;
        for request in s.requests() {
            let event = TimedEvent::new(t, ChurnEvent::Departure(request.id()));
            assert_eq!(controller.handle(&event), EventOutcome::Departed);
            t += 0.1;
        }
        assert_eq!(controller.active_requests(), 0);
        assert_eq!(controller.report().departed, s.requests().len() as u64);
        assert_eq!(controller.state().predicted_latency(), 0.0);
        // A second departure of the same id is stale, not an error.
        let event = TimedEvent::new(t, ChurnEvent::Departure(s.requests()[0].id()));
        assert_eq!(controller.handle(&event), EventOutcome::StaleDeparture);
    }

    #[test]
    fn saturating_arrivals_are_rejected_with_typed_reason() {
        let s = scenario();
        let mut controller = Controller::new(&s, ControllerConfig::online_only());
        controller.run_trace(&base_trace(&s));
        // A single request bigger than any instance's total capacity.
        let vnf = &s.vnfs()[0];
        let monster = Request::new(
            RequestId::new(90_000),
            ServiceChain::single(vnf.id()),
            ArrivalRate::new(vnf.service_rate().value() * 2.0).unwrap(),
            DeliveryProbability::PERFECT,
        );
        let outcome = controller.handle(&TimedEvent::new(1.0, ChurnEvent::Arrival(monster)));
        assert_eq!(
            outcome,
            EventOutcome::Rejected(RejectReason::WouldOverload { vnf: vnf.id() })
        );
        assert_eq!(controller.report().rejected, 1);
    }

    #[test]
    fn instance_down_fails_over_and_up_restores_dispatch() {
        let s = scenario();
        let mut controller = Controller::new(&s, ControllerConfig::online_only());
        controller.run_trace(&base_trace(&s));
        let vnf = s
            .vnfs()
            .iter()
            .find(|v| v.instances() >= 2)
            .expect("multi-instance vnf");
        let on_zero = controller.state().member_count(vnf.id(), 0);
        let outcome = controller.handle(&TimedEvent::new(
            1.0,
            ChurnEvent::InstanceDown {
                vnf: vnf.id(),
                instance: 0,
            },
        ));
        match outcome {
            EventOutcome::InstanceDownHandled { migrated, shed } => {
                assert_eq!(migrated + shed, on_zero as u64);
            }
            other => panic!("unexpected outcome {other:?}"),
        }
        assert_eq!(controller.state().member_count(vnf.id(), 0), 0);
        assert!(!controller.state().is_up(vnf.id(), 0));
        controller.handle(&TimedEvent::new(
            2.0,
            ChurnEvent::InstanceUp {
                vnf: vnf.id(),
                instance: 0,
            },
        ));
        assert!(controller.state().is_up(vnf.id(), 0));
    }

    #[test]
    fn ticks_are_ignored_without_reopt_config() {
        let s = scenario();
        let mut controller = Controller::new(&s, ControllerConfig::online_only());
        controller.run_trace(&base_trace(&s));
        let outcome = controller.handle(&TimedEvent::new(1.0, ChurnEvent::ReoptimizeTick));
        assert_eq!(outcome, EventOutcome::TickIgnored);
        assert_eq!(controller.report().ticks, 1);
        assert_eq!(controller.report().reopts_applied, 0);
    }

    #[test]
    fn oracle_tick_rebalances_to_rckk() {
        let s = scenario();
        let mut controller = Controller::new(&s, ControllerConfig::offline_oracle());
        controller.run_trace(&base_trace(&s));
        let before = controller.state().predicted_latency();
        let outcome = controller.handle(&TimedEvent::new(1.0, ChurnEvent::ReoptimizeTick));
        match outcome {
            EventOutcome::Reoptimized { .. } | EventOutcome::TickSkipped => {}
            other => panic!("unexpected outcome {other:?}"),
        }
        let after = controller.state().predicted_latency();
        assert!(
            after <= before + 1e-12,
            "rebalancing must not hurt: {before} -> {after}"
        );
    }

    #[test]
    fn eviction_policy_sheds_big_victim_for_smaller_arrival() {
        // One VNF, one instance: load it near capacity with one big and
        // admit a small one that only fits if the big one is evicted.
        let s = scenario();
        let vnf = &s.vnfs()[0];
        let mu = vnf.service_rate().value();
        let mut controller = Controller::new(
            &s,
            ControllerConfig {
                shed: ShedPolicy::EvictLargest,
                ..ControllerConfig::online_only()
            },
        );
        let m = vnf.instances() as usize;
        // Fill every instance of the VNF close to capacity.
        for i in 0..m {
            let big = Request::new(
                RequestId::new(80_000 + i as u32),
                ServiceChain::single(vnf.id()),
                ArrivalRate::new(mu * 0.93).unwrap(),
                DeliveryProbability::PERFECT,
            );
            let outcome = controller.handle(&TimedEvent::new(0.0, ChurnEvent::Arrival(big)));
            assert!(matches!(outcome, EventOutcome::Admitted { .. }));
        }
        let small = Request::new(
            RequestId::new(81_000),
            ServiceChain::single(vnf.id()),
            ArrivalRate::new(mu * 0.5).unwrap(),
            DeliveryProbability::PERFECT,
        );
        let outcome = controller.handle(&TimedEvent::new(1.0, ChurnEvent::Arrival(small.clone())));
        assert!(matches!(outcome, EventOutcome::Admitted { .. }));
        let report = controller.report();
        assert_eq!(report.shed, 1);
        assert_eq!(report.admitted, m as u64 + 1);
        assert!(controller.state().home_of(vnf.id(), small.id()).is_some());
    }

    /// A fleet where each node can hold everything twice over, so instance
    /// growth never forces a repack in these tests.
    fn big_cluster(s: &Scenario) -> (Vec<ComputeNode>, Placement) {
        use nfv_model::Capacity;
        use nfv_placement::Placer;
        let total: f64 = s.vnfs().iter().map(|v| v.total_demand().value()).sum();
        let nodes: Vec<ComputeNode> = (0..4)
            .map(|i| ComputeNode::new(NodeId::new(i), Capacity::new(total * 2.0).unwrap()))
            .collect();
        let problem = PlacementProblem::new(nodes.clone(), s.vnfs().to_vec()).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let placement = Bfdsu::new()
            .place(&problem, &mut rng)
            .unwrap()
            .into_placement();
        (nodes, placement)
    }

    #[test]
    fn with_cluster_rejects_a_mismatched_placement() {
        let s = scenario();
        let (nodes, placement) = big_cluster(&s);
        // A placement for a prefix of the VNF set must be refused.
        let short = Placement::new(
            &PlacementProblem::new(nodes.clone(), s.vnfs()[..2].to_vec()).unwrap(),
            placement.assignment()[..2].to_vec(),
        )
        .unwrap();
        let err = Controller::with_cluster(&s, nodes, &short, ControllerConfig::joint_reopt())
            .unwrap_err();
        assert!(matches!(err, ControllerError::ClusterMismatch { .. }));
    }

    #[test]
    fn replace_phase_grows_a_saturated_vnf() {
        let s = scenario();
        let (nodes, placement) = big_cluster(&s);
        let mut controller =
            Controller::with_cluster(&s, nodes, &placement, ControllerConfig::joint_reopt())
                .unwrap();
        let vnf = &s.vnfs()[0];
        let mu = vnf.service_rate().value();
        // Load every instance of VNF 0 to rho = 0.93, above the 0.9 grow
        // watermark.
        for i in 0..vnf.instances() as usize {
            let big = Request::new(
                RequestId::new(70_000 + i as u32),
                ServiceChain::single(vnf.id()),
                ArrivalRate::new(mu * 0.93).unwrap(),
                DeliveryProbability::PERFECT,
            );
            let outcome = controller.handle(&TimedEvent::new(0.0, ChurnEvent::Arrival(big)));
            assert!(matches!(outcome, EventOutcome::Admitted { .. }));
        }
        let before = controller.state().instances(vnf.id());
        let balanced_before = controller.state().balanced_latency();
        let outcome = controller.handle(&TimedEvent::new(1.0, ChurnEvent::ReoptimizeTick));
        match outcome {
            EventOutcome::Reoptimized {
                instances_added, ..
            } => {
                assert!(instances_added >= 1, "the grow watermark was crossed");
            }
            other => panic!("expected a grow, got {other:?}"),
        }
        assert!(controller.state().instances(vnf.id()) > before);
        assert!(controller.state().balanced_latency() < balanced_before);
        let report = controller.report();
        assert_eq!(report.replaces_applied, 1);
        assert_eq!(report.replaces_aborted, 0);
        assert!(report.instances_added >= 1);
        assert!(
            report.instances_added + report.instances_retired + report.relocations <= 6,
            "per-tick ops stay within the budget"
        );
    }

    #[test]
    fn replace_phase_shrinks_an_idle_fleet_bounded_by_k() {
        let s = scenario();
        let (nodes, placement) = big_cluster(&s);
        let mut controller =
            Controller::with_cluster(&s, nodes, &placement, ControllerConfig::joint_reopt())
                .unwrap();
        // No load at all: every multi-instance VNF is below the shrink
        // watermark, targeting one instance each.
        let shrinkable: u64 = s.vnfs().iter().map(|v| u64::from(v.instances()) - 1).sum();
        assert!(shrinkable > 0, "scenario has multi-instance VNFs");
        let outcome = controller.handle(&TimedEvent::new(1.0, ChurnEvent::ReoptimizeTick));
        match outcome {
            EventOutcome::Reoptimized {
                migrations,
                instances_added,
                instances_retired,
                relocations,
            } => {
                assert_eq!(migrations, 0);
                assert_eq!(instances_added, 0);
                assert_eq!(relocations, 0);
                assert_eq!(instances_retired, shrinkable.min(6), "truncated to K");
            }
            other => panic!("expected retirements, got {other:?}"),
        }
        let report = controller.report();
        assert_eq!(report.replaces_applied, 1);
        assert_eq!(report.migrated_replace, 0, "idle instances drain nothing");
        // Pure-shrink plans are exempt from the latency gate.
        assert_eq!(report.replaces_aborted, 0);
    }

    #[test]
    fn refiner_commits_a_searched_plan_on_a_quiet_tick() {
        use crate::RefinerConfig;
        let s = scenario();
        let (nodes, _) = big_cluster(&s);
        // A deliberately spread placement — one VNF per node round-robin —
        // that the searcher can repack onto far fewer nodes.
        let problem = PlacementProblem::new(nodes.clone(), s.vnfs().to_vec()).unwrap();
        let spread: Vec<NodeId> = (0..s.vnfs().len())
            .map(|i| NodeId::new((i % nodes.len()) as u32))
            .collect();
        let placement = Placement::new(&problem, spread).unwrap();
        let config = ControllerConfig {
            refiner: Some(RefinerConfig::bounded()),
            ..ControllerConfig::online_only()
        };
        let mut controller = Controller::with_cluster(&s, nodes, &placement, config).unwrap();
        controller.run_trace(&base_trace(&s));
        let outcome = controller.handle(&TimedEvent::new(1.0, ChurnEvent::ReoptimizeTick));
        match outcome {
            EventOutcome::Reoptimized { relocations, .. } => {
                assert!(relocations >= 1, "the spread layout must be repacked");
                assert!(relocations <= RefinerConfig::bounded().max_moves as u64);
            }
            other => panic!("expected a refinement, got {other:?}"),
        }
        let report = controller.report();
        assert_eq!(report.refines_applied, 1);
        assert_eq!(report.refines_rejected, 0);
        assert!(report.relocations >= 1);
        // A second tick finds the incumbent already refined; whatever
        // residual gain remains must stay within the move budget again.
        controller.handle(&TimedEvent::new(2.0, ChurnEvent::ReoptimizeTick));
        let report = controller.report();
        assert_eq!(report.refines_applied + report.refines_rejected, 2);
    }

    #[test]
    fn refiner_is_gated_by_outages_and_stays_a_strict_observer() {
        let s = scenario();
        let (nodes, placement) = big_cluster(&s);
        let trace = ChurnTraceBuilder::new()
            .horizon(400.0)
            .arrival_rate(0.5)
            .mean_holding(30.0)
            .tick_period(20.0)
            .node_fleet(4)
            .node_mtbf(80.0)
            .node_mttr(25.0)
            .seed(9)
            .build(&s)
            .unwrap();
        let run = |tel: &mut Telemetry| {
            let mut c = Controller::with_cluster(
                &s,
                nodes.clone(),
                &placement,
                ControllerConfig::refined(),
            )
            .unwrap();
            let report = c.run_trace_traced(&trace, tel);
            (c, report)
        };
        let (plain, plain_report) = run(&mut Telemetry::disabled());
        let mut tel = Telemetry::enabled();
        let (traced, traced_report) = run(&mut tel);
        assert_eq!(plain, traced, "telemetry must not change any decision");
        assert_eq!(plain_report, traced_report);
        assert!(
            plain_report.refines_applied + plain_report.refines_rejected > 0,
            "some quiet tick ran the refiner: {plain_report}"
        );
        assert!(
            plain_report.refines_applied + plain_report.refines_rejected <= plain_report.ticks,
            "at most one refinement attempt per tick"
        );
        let artifacts = tel.finish();
        assert!(
            artifacts.events.iter().any(|e| matches!(
                e.kind,
                EventKind::ReoptCommit {
                    phase: ReoptPhase::Refiner,
                    ..
                } | EventKind::ReoptRejected {
                    phase: ReoptPhase::Refiner,
                    ..
                }
            )),
            "refiner decisions are journaled with their own phase"
        );
        // Every refiner generation was timed.
        assert!(
            artifacts.profile.summary(Phase::SearchGeneration).count() > 0,
            "search generations appear in the phase profile"
        );
    }

    #[test]
    fn joint_runs_are_deterministic() {
        let s = scenario();
        let (nodes, placement) = big_cluster(&s);
        let trace = ChurnTraceBuilder::new()
            .horizon(80.0)
            .arrival_rate(0.5)
            .mean_holding(30.0)
            .tick_period(20.0)
            .seed(9)
            .build(&s)
            .unwrap();
        let run = |nodes: Vec<ComputeNode>| {
            let mut c =
                Controller::with_cluster(&s, nodes, &placement, ControllerConfig::joint_reopt())
                    .unwrap();
            c.run_trace(&trace);
            c
        };
        let a = run(nodes.clone());
        let b = run(nodes);
        assert_eq!(a, b, "same seed, same trace => bit-identical controller");
    }

    #[test]
    fn histograms_cover_the_run() {
        let s = scenario();
        let trace = ChurnTraceBuilder::new()
            .horizon(80.0)
            .arrival_rate(0.5)
            .mean_holding(30.0)
            .tick_period(20.0)
            .seed(9)
            .build(&s)
            .unwrap();
        let mut controller = Controller::new(&s, ControllerConfig::periodic_reopt());
        controller.run_trace(&trace);
        let latency = controller.latency_histogram(8).unwrap();
        assert_eq!(latency.count() as usize, trace.len());
        assert!(controller.utilization_histogram(8).is_some());
        assert_eq!(controller.snapshots().len(), 3); // ticks at 20/40/60
    }

    #[test]
    fn telemetry_is_a_strict_observer() {
        let s = scenario();
        let (nodes, placement) = big_cluster(&s);
        let trace = ChurnTraceBuilder::new()
            .horizon(400.0)
            .arrival_rate(0.5)
            .mean_holding(30.0)
            .tick_period(20.0)
            .node_fleet(4)
            .node_mtbf(80.0)
            .node_mttr(25.0)
            .seed(9)
            .build(&s)
            .unwrap();
        let run = |tel: &mut Telemetry| {
            let mut c = Controller::with_cluster(
                &s,
                nodes.clone(),
                &placement,
                ControllerConfig::resilient(),
            )
            .unwrap();
            let report = c.run_trace_traced(&trace, tel);
            (c, report)
        };
        let (plain, plain_report) = run(&mut Telemetry::disabled());
        let mut tel = Telemetry::enabled();
        let (traced, traced_report) = run(&mut tel);
        assert_eq!(plain, traced, "telemetry must not change any decision");
        assert_eq!(plain_report, traced_report);

        let artifacts = tel.finish();
        assert!(!artifacts.events.is_empty());
        assert!(artifacts
            .events
            .iter()
            .any(|e| matches!(e.kind, EventKind::Admit { .. })));
        // Ticks happened, so the series sampled them.
        assert_eq!(artifacts.series.len() as u64, traced_report.ticks);
        // Seq numbers are dense journal positions.
        for (i, event) in artifacts.events.iter().enumerate() {
            assert_eq!(event.seq, i as u64);
        }
    }

    #[test]
    fn journal_orders_a_node_outage_causally() {
        let s = scenario();
        let (nodes, placement) = big_cluster(&s);
        let trace = ChurnTraceBuilder::new()
            .horizon(400.0)
            .arrival_rate(0.5)
            .mean_holding(60.0)
            .tick_period(20.0)
            .node_fleet(4)
            .node_mtbf(80.0)
            .node_mttr(25.0)
            .seed(11)
            .build(&s)
            .unwrap();
        let mut c =
            Controller::with_cluster(&s, nodes, &placement, ControllerConfig::resilient()).unwrap();
        let mut tel = Telemetry::enabled();
        let report = c.run_trace_traced(&trace, &mut tel);
        assert!(report.node_downs > 0, "the trace contains node outages");
        let events = tel.finish().events;
        let downs: Vec<usize> = events
            .iter()
            .enumerate()
            .filter(|(_, e)| matches!(e.kind, EventKind::NodeDown { .. }))
            .map(|(i, _)| i)
            .collect();
        assert_eq!(downs.len() as u64, report.node_downs);
        // Every first-window NodeDown is immediately followed (in journal
        // order, before any later event time) by its sheds/retries and an
        // EmergencyReplace record for the same node.
        for &i in &downs {
            let EventKind::NodeDown {
                node, vnfs_lost, ..
            } = events[i].kind
            else {
                unreachable!()
            };
            if vnfs_lost == 0 {
                continue; // overlapping window, already handled
            }
            let replace = events[i..]
                .iter()
                .find(|e| matches!(e.kind, EventKind::EmergencyReplace { .. }))
                .expect("an emergency re-placement follows a first-window NodeDown");
            let EventKind::EmergencyReplace { node: rn, .. } = replace.kind else {
                unreachable!()
            };
            assert_eq!(rn, node, "the re-placement names the failed node");
            assert_eq!(replace.time, events[i].time, "same virtual instant");
        }
        assert!(
            events
                .iter()
                .any(|e| matches!(e.kind, EventKind::NodeUp { .. })),
            "recoveries are journaled too"
        );
    }
}
