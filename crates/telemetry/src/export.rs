//! Exporters: Prometheus text exposition and a hand-rolled JSON dump.
//!
//! The vendored `serde` stand-in has no serializers, so — like
//! `bench/report.rs` — both formats are written by hand. Output is a
//! pure function of the [`Registry`] contents (`BTreeMap` iteration,
//! shortest-round-trip float formatting), so exports inherit the
//! registry's byte-identity across thread counts.

use std::fmt::Write as _;

use crate::json::escape_into;
use crate::registry::Registry;

/// Escapes a Prometheus label value: `\` → `\\`, `"` → `\"`, newline →
/// `\n` (the exposition-format rules).
#[must_use]
pub fn escape_label(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Reverses [`escape_label`]. Returns `None` for a dangling or unknown
/// escape — an unparseable label value.
#[must_use]
pub fn unescape_label(s: &str) -> Option<String> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('\\') => out.push('\\'),
            Some('"') => out.push('"'),
            Some('n') => out.push('\n'),
            _ => return None,
        }
    }
    Some(out)
}

/// Splits a registry key into its bare metric name and an optional
/// rendered label set (`name{a="b"}` → `("name", Some("a=\"b\""))`).
fn split_key(key: &str) -> (&str, Option<&str>) {
    match key.find('{') {
        Some(at) if key.ends_with('}') => (&key[..at], Some(&key[at + 1..key.len() - 1])),
        _ => (key, None),
    }
}

/// Joins an optional existing label set with one extra label.
fn with_label(labels: Option<&str>, extra: &str) -> String {
    match labels {
        Some(labels) => format!("{{{labels},{extra}}}"),
        None => format!("{{{extra}}}"),
    }
}

impl Registry {
    /// The registry in the Prometheus text exposition format: `# TYPE`
    /// lines, counter/gauge samples, and histograms as cumulative
    /// `_bucket{le="…"}` series plus a `_count` sample. Byte-stable for
    /// identical contents.
    #[must_use]
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        let mut typed: Option<String> = None;
        let mut type_line = |out: &mut String, name: &str, kind: &str| {
            if typed.as_deref() != Some(name) {
                let _ = writeln!(out, "# TYPE {name} {kind}");
                typed = Some(name.to_string());
            }
        };
        for (key, value) in self.counters() {
            let (name, _) = split_key(key);
            type_line(&mut out, name, "counter");
            let _ = writeln!(out, "{key} {value}");
        }
        let mut typed: Option<String> = None;
        let mut type_line = |out: &mut String, name: &str, kind: &str| {
            if typed.as_deref() != Some(name) {
                let _ = writeln!(out, "# TYPE {name} {kind}");
                typed = Some(name.to_string());
            }
        };
        for (key, value) in self.gauges() {
            let (name, _) = split_key(key);
            type_line(&mut out, name, "gauge");
            let _ = writeln!(out, "{key} {value}");
        }
        let mut typed: Option<String> = None;
        for (key, histogram) in self.histograms() {
            let (name, labels) = split_key(key);
            if typed.as_deref() != Some(name) {
                let _ = writeln!(out, "# TYPE {name} histogram");
                typed = Some(name.to_string());
            }
            // Buckets are cumulative from -inf, so the underflow counts
            // into every bucket; the +Inf bucket equals the total count
            // (overflow included).
            let mut cumulative = histogram.underflow();
            for i in 0..histogram.bins() {
                cumulative += histogram.bin_count(i);
                let (_, le) = histogram.bin_range(i);
                let _ = writeln!(
                    out,
                    "{name}_bucket{} {cumulative}",
                    with_label(labels, &format!("le=\"{le}\""))
                );
            }
            let _ = writeln!(
                out,
                "{name}_bucket{} {}",
                with_label(labels, "le=\"+Inf\""),
                histogram.count()
            );
            match labels {
                Some(labels) => {
                    let _ = writeln!(out, "{name}_count{{{labels}}} {}", histogram.count());
                }
                None => {
                    let _ = writeln!(out, "{name}_count {}", histogram.count());
                }
            }
        }
        out
    }

    /// The registry as one hand-rolled JSON object:
    /// `{"counters":{…},"gauges":{…},"histograms":{…}}` with histogram
    /// values as nested objects. Byte-stable for identical contents.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        for (i, (key, value)) in self.counters().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_json_key(&mut out, key);
            let _ = write!(out, "{value}");
        }
        out.push_str("},\"gauges\":{");
        for (i, (key, value)) in self.gauges().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_json_key(&mut out, key);
            push_json_f64(&mut out, value);
        }
        out.push_str("},\"histograms\":{");
        for (i, (key, histogram)) in self.histograms().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_json_key(&mut out, key);
            let (lo, _) = histogram.bin_range(0);
            let (_, hi) = histogram.bin_range(histogram.bins() - 1);
            out.push_str("{\"lo\":");
            push_json_f64(&mut out, lo);
            out.push_str(",\"hi\":");
            push_json_f64(&mut out, hi);
            let _ = write!(
                out,
                ",\"underflow\":{},\"overflow\":{},\"bins\":[",
                histogram.underflow(),
                histogram.overflow()
            );
            for j in 0..histogram.bins() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{}", histogram.bin_count(j));
            }
            out.push_str("]}");
        }
        out.push_str("}}");
        out
    }
}

fn push_json_key(out: &mut String, key: &str) {
    out.push('"');
    escape_into(out, key);
    out.push_str("\":");
}

/// JSON floats follow the journal convention: shortest-round-trip for
/// finite values, tagged strings for non-finite ones.
fn push_json_f64(out: &mut String, value: f64) {
    if value.is_finite() {
        let _ = write!(out, "{value}");
    } else if value.is_nan() {
        out.push_str("\"nan\"");
    } else if value > 0.0 {
        out.push_str("\"inf\"");
    } else {
        out.push_str("\"-inf\"");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn label_escaping_round_trips_awkward_values() {
        for value in ["plain", "a\"b", "back\\slash", "new\nline", "üñíçø∂é", ""] {
            let escaped = escape_label(value);
            assert!(!escaped.contains('\n'), "escaped form is single-line");
            assert_eq!(unescape_label(&escaped).as_deref(), Some(value));
        }
    }

    #[test]
    fn unescape_rejects_dangling_and_unknown_escapes() {
        assert_eq!(unescape_label("dangling\\"), None);
        assert_eq!(unescape_label("bad\\t"), None);
    }

    #[test]
    fn prometheus_renders_types_samples_and_buckets() {
        let mut reg = Registry::new();
        reg.counter_add("admitted_total", 7);
        reg.counter_add(Registry::labeled("events_total", "shard", "0"), 3);
        reg.gauge_set("active", 2.5);
        reg.histogram_record(
            Registry::labeled("latency_seconds", "tenant", "3"),
            0.0,
            1.0,
            2,
            0.25,
        );
        let text = reg.to_prometheus();
        assert!(text.contains("# TYPE admitted_total counter\nadmitted_total 7\n"));
        assert!(text.contains("events_total{shard=\"0\"} 3\n"));
        assert!(text.contains("# TYPE active gauge\nactive 2.5\n"));
        assert!(text.contains("# TYPE latency_seconds histogram\n"));
        assert!(text.contains("latency_seconds_bucket{tenant=\"3\",le=\"0.5\"} 1\n"));
        assert!(text.contains("latency_seconds_bucket{tenant=\"3\",le=\"+Inf\"} 1\n"));
        assert!(text.contains("latency_seconds_count{tenant=\"3\"} 1\n"));
    }

    #[test]
    fn prometheus_buckets_are_cumulative_with_underflow() {
        let mut reg = Registry::new();
        for x in [-0.5, 0.1, 0.1, 0.9, 2.0] {
            reg.histogram_record("h", 0.0, 1.0, 2, x);
        }
        let text = reg.to_prometheus();
        assert!(text.contains("h_bucket{le=\"0.5\"} 3\n"), "{text}");
        assert!(text.contains("h_bucket{le=\"1\"} 4\n"), "{text}");
        assert!(text.contains("h_bucket{le=\"+Inf\"} 5\n"), "{text}");
        assert!(text.contains("h_count 5\n"), "{text}");
    }

    #[test]
    fn json_dump_nests_histograms_and_stays_stable() {
        let mut reg = Registry::new();
        reg.counter_add("c", 1);
        reg.gauge_set("g", 0.5);
        reg.histogram_record("h", 0.0, 1.0, 2, 0.75);
        let json = reg.to_json();
        assert_eq!(
            json,
            "{\"counters\":{\"c\":1},\"gauges\":{\"g\":0.5},\"histograms\":\
             {\"h\":{\"lo\":0,\"hi\":1,\"underflow\":0,\"overflow\":0,\"bins\":[0,1]}}}"
        );
        assert_eq!(json, reg.to_json());
    }

    #[test]
    fn empty_registry_exports_cleanly() {
        let reg = Registry::new();
        assert_eq!(reg.to_prometheus(), "");
        assert_eq!(
            reg.to_json(),
            "{\"counters\":{},\"gauges\":{},\"histograms\":{}}"
        );
    }
}
