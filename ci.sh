#!/usr/bin/env bash
# Tier-1 gate: formatting, lints, and the full test suite.
# Usage: ./ci.sh
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo clippy (workspace, all targets, deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo test (facade + workspace) =="
cargo test -q
cargo test -q --workspace

echo "== thread-count invariance (experiment results at 1/2/8 threads) =="
cargo test -q -p nfv-core --test thread_invariance

echo "== node-failure domains (total-loss, overlap, stale accounting, outage interleavings) =="
cargo test -q -p nfv-controller --test node_failure
cargo test -q -p nfv-controller --test properties outage_interleavings

echo "== queueing formula guards (rho >= 1 stays an error, never a number) =="
cargo test -q -p nfv-queueing rho_

echo "== anytime search (GA/PSO determinism, repair, refiner hand-off) =="
cargo test -q -p nfv-search
cargo test -q -p nfv-controller refiner
cargo test -q -p nfv-core --lib anytime
cargo test -q -p nfv-core --test thread_invariance search

echo "== cargo build --release =="
cargo build --release

echo "== anytime figure (searchers must reach the greedy placers and the exact oracle) =="
cargo run -q --release -p nfv-bench --bin figures -- anytime --reps 2

echo "== churn figure (joint re-placement must beat scheduling-only when saturated) =="
cargo run -q --release -p nfv-bench --bin figures -- churn

echo "== resilience figure (emergency re-placement + retries must beat tick-only recovery) =="
cargo run -q --release -p nfv-bench --bin figures -- resilience

echo "== telemetry layer (strict observer, journal round-trip, merge order) =="
cargo test -q -p nfv-telemetry
cargo test -q -p nfv-controller telemetry
cargo test -q -p nfv-core --test thread_invariance telemetry

echo "== telemetry exposure (JSONL journal + outage episode + hot-phase profile) =="
mkdir -p results
cargo run -q --release -p nfv-bench --bin figures -- trace --csv results
test -s results/trace_resilience.jsonl
test -s results/trace_series.csv
cargo run -q --release -p nfv-bench --bin figures -- profile

echo "== telemetry overhead gate (disabled path within 2% of the plain replay) =="
cargo run --release -p nfv-bench --bin figures -- bench --reps 2
overhead=$(grep -o '"disabled_overhead_pct": *-\{0,1\}[0-9.]*' BENCH_pipeline.json | grep -o '\-\{0,1\}[0-9.]*$')
echo "telemetry disabled-path overhead: ${overhead}%"
awk -v o="$overhead" 'BEGIN { exit (o <= 2.0) ? 0 : 1 }' || {
    echo "telemetry disabled-path overhead ${overhead}% exceeds the 2% budget"
    exit 1
}

echo "ci: all green"
