//! Statistics utilities for the NFV experiment harness.
//!
//! The paper's evaluation reports *averages over 1000 simulation runs*, tail
//! (99th-percentile) response times and enhancement ratios between
//! algorithms. This crate provides the small statistical toolkit those
//! experiments need:
//!
//! * [`OnlineStats`] — streaming count/mean/variance/min/max (Welford),
//! * [`SampleSet`] — exact percentiles over retained samples,
//! * [`Summary`] — the combination of both, with a normal-approximation
//!   confidence interval,
//! * [`Histogram`] — fixed-bin histograms with ASCII rendering,
//! * [`Table`] — plain-text tables for the figure-regeneration binaries.
//!
//! # Examples
//!
//! ```
//! use nfv_metrics::Summary;
//! let mut summary: Summary = (1..=100).map(f64::from).collect();
//! assert_eq!(summary.mean(), 50.5);
//! assert_eq!(summary.percentile(0.99), 99.01);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod histogram;
mod online;
mod samples;
mod summary;
mod table;

pub use histogram::Histogram;
pub use online::OnlineStats;
pub use samples::SampleSet;
pub use summary::Summary;
pub use table::Table;

/// Relative improvement of `candidate` over `baseline` for a
/// smaller-is-better metric: `(baseline − candidate) / baseline`.
///
/// This is the paper's *enhancement ratio*, e.g.
/// `(W_CGA − W_RCKK) / W_CGA` (§V.C). Positive values mean `candidate`
/// improves on `baseline`. Returns 0 when the baseline is not a positive
/// finite number, so sweep plots degrade gracefully instead of emitting NaN.
///
/// # Examples
///
/// ```
/// use nfv_metrics::enhancement_ratio;
/// assert!((enhancement_ratio(2.0, 1.5) - 0.25).abs() < 1e-12);
/// assert_eq!(enhancement_ratio(0.0, 1.0), 0.0);
/// ```
#[must_use]
pub fn enhancement_ratio(baseline: f64, candidate: f64) -> f64 {
    if baseline.is_finite() && baseline > 0.0 && candidate.is_finite() {
        (baseline - candidate) / baseline
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enhancement_ratio_matches_paper_definition() {
        // W_CGA = 1.60, W_RCKK = 1.23 -> 23.1% (paper §V.C tail example).
        let ratio = enhancement_ratio(1.60, 1.23);
        assert!((ratio - 0.23125).abs() < 1e-12);
    }

    #[test]
    fn enhancement_ratio_degrades_gracefully() {
        assert_eq!(enhancement_ratio(f64::NAN, 1.0), 0.0);
        assert_eq!(enhancement_ratio(1.0, f64::NAN), 0.0);
        assert_eq!(enhancement_ratio(-1.0, 0.5), 0.0);
    }

    #[test]
    fn negative_ratio_means_regression() {
        assert!(enhancement_ratio(1.0, 2.0) < 0.0);
    }
}
