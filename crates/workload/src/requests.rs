//! Random request generation.

use nfv_model::{ArrivalRate, DeliveryProbability, Request, RequestId, ServiceChain};
use rand::Rng;

use crate::WorkloadError;

/// Generates requests with arrival rates and delivery probabilities drawn
/// uniformly from configurable ranges.
///
/// Defaults follow the paper's setup (§V.A.3): `λ ∈ [1, 100]` pps and
/// `P ∈ [0.98, 1]`.
///
/// # Examples
///
/// ```
/// use nfv_model::{ServiceChain, VnfId};
/// use nfv_workload::RequestGenerator;
/// use rand::SeedableRng;
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let gen = RequestGenerator::new().arrival_range(1.0, 100.0)?.delivery(0.98)?;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let req = gen.generate(0, ServiceChain::single(VnfId::new(0)), &mut rng);
/// assert!((1.0..=100.0).contains(&req.arrival_rate().value()));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RequestGenerator {
    arrival_lo: f64,
    arrival_hi: f64,
    delivery_lo: f64,
    delivery_hi: f64,
}

impl RequestGenerator {
    /// Creates a generator with the paper's default ranges
    /// (`λ ∈ [1, 100]` pps, `P ∈ [0.98, 1]`).
    #[must_use]
    pub fn new() -> Self {
        Self {
            arrival_lo: 1.0,
            arrival_hi: 100.0,
            delivery_lo: 0.98,
            delivery_hi: 1.0,
        }
    }

    /// Sets the arrival-rate range `[lo, hi]` in pps.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::InvalidParameter`] unless `0 < lo ≤ hi` and
    /// both are finite.
    pub fn arrival_range(mut self, lo: f64, hi: f64) -> Result<Self, WorkloadError> {
        if lo.is_finite() && hi.is_finite() && lo > 0.0 && lo <= hi {
            self.arrival_lo = lo;
            self.arrival_hi = hi;
            Ok(self)
        } else {
            Err(WorkloadError::InvalidParameter {
                reason: "arrival range requires 0 < lo <= hi",
            })
        }
    }

    /// Fixes the delivery probability of every request to `p`.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::InvalidParameter`] unless `0 < p ≤ 1`.
    pub fn delivery(self, p: f64) -> Result<Self, WorkloadError> {
        self.delivery_range(p, p)
    }

    /// Sets the delivery-probability range `[lo, hi] ⊆ (0, 1]`.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::InvalidParameter`] for an invalid range.
    pub fn delivery_range(mut self, lo: f64, hi: f64) -> Result<Self, WorkloadError> {
        if lo.is_finite() && hi.is_finite() && lo > 0.0 && lo <= hi && hi <= 1.0 {
            self.delivery_lo = lo;
            self.delivery_hi = hi;
            Ok(self)
        } else {
            Err(WorkloadError::InvalidParameter {
                reason: "delivery range requires 0 < lo <= hi <= 1",
            })
        }
    }

    /// Generates one request with the given id and chain.
    pub fn generate<R: Rng + ?Sized>(&self, id: u32, chain: ServiceChain, rng: &mut R) -> Request {
        let lambda = if self.arrival_lo == self.arrival_hi {
            self.arrival_lo
        } else {
            rng.gen_range(self.arrival_lo..=self.arrival_hi)
        };
        let p = if self.delivery_lo == self.delivery_hi {
            self.delivery_lo
        } else {
            rng.gen_range(self.delivery_lo..=self.delivery_hi)
        };
        Request::new(
            RequestId::new(id),
            chain,
            ArrivalRate::new(lambda).expect("validated range yields positive rate"),
            DeliveryProbability::new(p).expect("validated range yields probability"),
        )
    }
}

impl Default for RequestGenerator {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nfv_model::VnfId;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn chain() -> ServiceChain {
        ServiceChain::single(VnfId::new(0))
    }

    #[test]
    fn defaults_match_paper_ranges() {
        let gen = RequestGenerator::new();
        let mut rng = StdRng::seed_from_u64(0);
        for i in 0..300 {
            let req = gen.generate(i, chain(), &mut rng);
            assert!((1.0..=100.0).contains(&req.arrival_rate().value()));
            assert!((0.98..=1.0).contains(&req.delivery().value()));
        }
    }

    #[test]
    fn fixed_ranges_produce_constants() {
        let gen = RequestGenerator::new()
            .arrival_range(5.0, 5.0)
            .unwrap()
            .delivery(0.99)
            .unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let req = gen.generate(0, chain(), &mut rng);
        assert_eq!(req.arrival_rate().value(), 5.0);
        assert_eq!(req.delivery().value(), 0.99);
    }

    #[test]
    fn rejects_invalid_ranges() {
        assert!(RequestGenerator::new().arrival_range(0.0, 10.0).is_err());
        assert!(RequestGenerator::new().arrival_range(10.0, 1.0).is_err());
        assert!(RequestGenerator::new().delivery(0.0).is_err());
        assert!(RequestGenerator::new().delivery_range(0.5, 1.1).is_err());
    }

    #[test]
    fn ids_are_assigned_verbatim() {
        let gen = RequestGenerator::new();
        let mut rng = StdRng::seed_from_u64(2);
        assert_eq!(gen.generate(17, chain(), &mut rng).id().index(), 17);
    }
}
