//! # nfv — joint VNF chain placement and request scheduling
//!
//! Facade crate for the workspace reproducing *"Joint Optimization of
//! Chain Placement and Request Scheduling for Network Function
//! Virtualization"* (ICDCS 2017). It re-exports every subsystem under one
//! roof and hosts the cross-crate integration tests (`tests/`) and the
//! runnable examples (`examples/`).
//!
//! The pipeline in one line: generate a [`workload`] scenario, build a
//! [`topology`], run the [`JointOptimizer`] (BFDSU placement + RCKK
//! scheduling by default) and evaluate the Eq. (16) objective.
//!
//! ```
//! use nfv::{topology::builders, workload::ScenarioBuilder, JointOptimizer};
//! use rand::SeedableRng;
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let scenario = ScenarioBuilder::new().vnfs(6).requests(40).seed(1).build()?;
//! let fabric = builders::leaf_spine()
//!     .leaves(2)
//!     .spines(2)
//!     .hosts_per_leaf(4)
//!     .capacity_range(1000.0, 5000.0, 7)
//!     .build()?;
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let solution = JointOptimizer::new().optimize(&scenario, &fabric, &mut rng)?;
//! assert!(solution.objective()?.total_latency().is_finite());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use nfv_core::{experiments, CoreError, JointObjective, JointOptimizer, JointSolution};

/// Shared model vocabulary: ids, quantities, VNFs, nodes, requests, chains.
pub use nfv_model as model;

/// Datacenter topology substrate and fabric generators.
pub use nfv_topology as topology;

/// Open Jackson network analytics (M/M/1, loss feedback, admission).
pub use nfv_queueing as queueing;

/// Statistics utilities (online moments, percentiles, tables).
pub use nfv_metrics as metrics;

/// Workload and trace generation.
pub use nfv_workload as workload;

/// VNF chain placement algorithms (BFDSU, FFD, BFD, NAH, exact oracle).
pub use nfv_placement as placement;

/// Anytime metaheuristic placement search (GA + PSO engines) with
/// deterministic, thread-invariant population evaluation.
pub use nfv_search as search;

/// Request scheduling algorithms (RCKK, CGA, CKK, LPT-by-CGA, round-robin).
pub use nfv_scheduling as scheduling;

/// Discrete-event simulator for chains of service instances.
pub use nfv_sim as sim;

/// Online control plane: churn-driven dispatch, admission control and
/// bounded re-optimization.
pub use nfv_controller as controller;

/// Deterministic observability: structured event journal, hot-phase
/// timing spans and per-tick time-series — all strict observers of the
/// controller (bit-identical results with telemetry on or off).
pub use nfv_telemetry as telemetry;

/// Deterministic worker pool: order-preserving parallel map and
/// `(base seed, task index)` seed derivation, so experiment sweeps are
/// bit-identical at any thread count.
pub use nfv_parallel as parallel;
