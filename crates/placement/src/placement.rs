//! The placement result and its quality metrics.

use std::fmt;

use nfv_model::{NodeId, Utilization, VnfId};
use serde::{Deserialize, Serialize};

use crate::{PlacementError, PlacementProblem};

/// A feasible assignment of every VNF to exactly one computing node
/// (the paper's `x_v^f` with Eq. (2) and the capacity constraint Eq. (6)
/// enforced), plus the quality metrics of the evaluation section.
///
/// # Examples
///
/// ```
/// use nfv_model::{Capacity, ComputeNode, Demand, NodeId, ServiceRate, Vnf, VnfId, VnfKind};
/// use nfv_placement::{Placement, PlacementProblem};
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let nodes = vec![
///     ComputeNode::new(NodeId::new(0), Capacity::new(100.0)?),
///     ComputeNode::new(NodeId::new(1), Capacity::new(100.0)?),
/// ];
/// let vnfs = vec![Vnf::builder(VnfId::new(0), VnfKind::Nat)
///     .demand_per_instance(Demand::new(60.0)?)
///     .service_rate(ServiceRate::new(100.0)?)
///     .build()?];
/// let problem = PlacementProblem::new(nodes, vnfs)?;
/// let placement = Placement::new(&problem, vec![NodeId::new(0)])?;
/// assert_eq!(placement.nodes_in_service(), 1);
/// assert!((placement.average_utilization().value() - 0.6).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Placement {
    /// Node hosting each VNF, indexed by `VnfId`.
    assignment: Vec<NodeId>,
    /// Demand placed on each node, indexed by `NodeId`.
    node_demand: Vec<f64>,
    /// Capacity of each node, indexed by `NodeId`.
    node_capacity: Vec<f64>,
}

impl Placement {
    /// Validates and wraps an assignment (`assignment[f]` = node of VNF
    /// `f`).
    ///
    /// # Errors
    ///
    /// * [`PlacementError::MissingVnf`] if the assignment length differs
    ///   from the VNF count (Eq. (2) violated),
    /// * [`PlacementError::UnknownNode`] for an out-of-range node,
    /// * [`PlacementError::CapacityExceeded`] if a node's demand exceeds its
    ///   capacity (Eq. (6) violated).
    pub fn new(
        problem: &PlacementProblem,
        assignment: Vec<NodeId>,
    ) -> Result<Self, PlacementError> {
        let node_demand = Self::checked_demands(problem, &assignment)?;
        let node_capacity: Vec<f64> = problem
            .nodes()
            .iter()
            .map(|n| n.capacity().value())
            .collect();
        Ok(Self {
            assignment,
            node_demand,
            node_capacity,
        })
    }

    /// Checks an assignment against a problem without constructing a
    /// [`Placement`]: every VNF assigned exactly once (Eq. (2)), no
    /// dangling node ids, and every node's capacity respected (Eq. (6)).
    /// Search repair loops and tests use this as the single feasibility
    /// oracle; [`Placement::new`] applies exactly the same checks.
    ///
    /// # Errors
    ///
    /// * [`PlacementError::MissingVnf`] if the assignment length differs
    ///   from the VNF count,
    /// * [`PlacementError::UnknownNode`] for an out-of-range node,
    /// * [`PlacementError::CapacityExceeded`] for an overloaded node.
    pub fn validate(
        problem: &PlacementProblem,
        assignment: &[NodeId],
    ) -> Result<(), PlacementError> {
        Self::checked_demands(problem, assignment).map(|_| ())
    }

    /// The shared validation core: the per-node demand table of a checked
    /// assignment, or the first violation found.
    fn checked_demands(
        problem: &PlacementProblem,
        assignment: &[NodeId],
    ) -> Result<Vec<f64>, PlacementError> {
        if assignment.len() != problem.vnfs().len() {
            let missing = assignment.len().min(problem.vnfs().len());
            return Err(PlacementError::MissingVnf {
                vnf: VnfId::new(missing as u32),
            });
        }
        let mut node_demand = vec![0.0; problem.nodes().len()];
        for (f, node) in assignment.iter().enumerate() {
            if node.as_usize() >= problem.nodes().len() {
                return Err(PlacementError::UnknownNode { node: *node });
            }
            node_demand[node.as_usize()] += problem.demand_of(VnfId::new(f as u32)).value();
        }
        for (i, (&demand, node)) in node_demand.iter().zip(problem.nodes()).enumerate() {
            let capacity = node.capacity().value();
            // Tolerate floating-point round-off from repeated accumulation.
            if demand > capacity * (1.0 + 1e-9) + 1e-9 {
                return Err(PlacementError::CapacityExceeded {
                    node: NodeId::new(i as u32),
                    demand,
                    capacity,
                });
            }
        }
        Ok(node_demand)
    }

    /// The node hosting `vnf`.
    ///
    /// # Panics
    ///
    /// Panics if `vnf` is outside the problem this placement was built for.
    #[must_use]
    pub fn node_of(&self, vnf: VnfId) -> NodeId {
        self.assignment[vnf.as_usize()]
    }

    /// The VNFs hosted on `node`.
    pub fn vnfs_on(&self, node: NodeId) -> impl Iterator<Item = VnfId> + '_ {
        self.assignment
            .iter()
            .enumerate()
            .filter(move |(_, &n)| n == node)
            .map(|(f, _)| VnfId::new(f as u32))
    }

    /// Whether two VNFs share a node (intra-server processing, Fig. 1(b)).
    #[must_use]
    pub fn colocated(&self, a: VnfId, b: VnfId) -> bool {
        self.node_of(a) == self.node_of(b)
    }

    /// Nodes in service (`y_v = 1`), i.e. hosting at least one VNF.
    pub fn used_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.node_demand
            .iter()
            .enumerate()
            .filter(|(_, &d)| d > 0.0)
            .map(|(i, _)| NodeId::new(i as u32))
    }

    /// Number of nodes in service, `Σ_v y_v` (Eq. (14)).
    #[must_use]
    pub fn nodes_in_service(&self) -> usize {
        self.node_demand.iter().filter(|&&d| d > 0.0).count()
    }

    /// The demand placed on `node`.
    #[must_use]
    pub fn demand_on(&self, node: NodeId) -> f64 {
        self.node_demand[node.as_usize()]
    }

    /// Utilization of one node, `Σ_f x_v^f M_f D_f / A_v`.
    #[must_use]
    pub fn utilization_of(&self, node: NodeId) -> Utilization {
        let i = node.as_usize();
        if self.node_capacity[i] == 0.0 {
            Utilization::ZERO
        } else {
            Utilization::from_ratio(self.node_demand[i] / self.node_capacity[i])
        }
    }

    /// Average resource utilization over the nodes in service — the paper's
    /// objective Eq. (13). Zero if no node is in service.
    #[must_use]
    pub fn average_utilization(&self) -> Utilization {
        let used: Vec<usize> = self
            .node_demand
            .iter()
            .enumerate()
            .filter(|(_, &d)| d > 0.0)
            .map(|(i, _)| i)
            .collect();
        if used.is_empty() {
            return Utilization::ZERO;
        }
        let sum: f64 = used
            .iter()
            .map(|&i| self.node_demand[i] / self.node_capacity[i])
            .sum();
        Utilization::from_ratio(sum / used.len() as f64)
    }

    /// Total resource occupation: the combined capacity `Σ A_v` of the
    /// nodes in service (Fig. 9's metric). Lower is better — capacity on a
    /// powered-on node is paid for whether used or not.
    #[must_use]
    pub fn resource_occupation(&self) -> f64 {
        self.node_demand
            .iter()
            .zip(&self.node_capacity)
            .filter(|(&d, _)| d > 0.0)
            .map(|(_, &c)| c)
            .sum()
    }

    /// The raw assignment table, indexed by VNF id.
    #[must_use]
    pub fn assignment(&self) -> &[NodeId] {
        &self.assignment
    }
}

impl fmt::Display for Placement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "placement: {} VNFs on {} nodes, avg utilization {}",
            self.assignment.len(),
            self.nodes_in_service(),
            self.average_utilization()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nfv_model::{Capacity, ComputeNode, Demand, ServiceRate, Vnf, VnfKind};

    fn problem(caps: &[f64], demands: &[f64]) -> PlacementProblem {
        let nodes = caps
            .iter()
            .enumerate()
            .map(|(i, &c)| ComputeNode::new(NodeId::new(i as u32), Capacity::new(c).unwrap()))
            .collect();
        let vnfs = demands
            .iter()
            .enumerate()
            .map(|(i, &d)| {
                Vnf::builder(VnfId::new(i as u32), VnfKind::Custom(i as u16))
                    .demand_per_instance(Demand::new(d).unwrap())
                    .service_rate(ServiceRate::new(100.0).unwrap())
                    .build()
                    .unwrap()
            })
            .collect();
        PlacementProblem::new(nodes, vnfs).unwrap()
    }

    fn nid(i: u32) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn validates_capacity() {
        let p = problem(&[100.0], &[60.0, 50.0]);
        let err = Placement::new(&p, vec![nid(0), nid(0)]).unwrap_err();
        assert!(matches!(err, PlacementError::CapacityExceeded { .. }));
    }

    #[test]
    fn validates_completeness_and_node_range() {
        let p = problem(&[100.0], &[10.0, 10.0]);
        assert!(matches!(
            Placement::new(&p, vec![nid(0)]).unwrap_err(),
            PlacementError::MissingVnf { .. }
        ));
        assert!(matches!(
            Placement::new(&p, vec![nid(0), nid(7)]).unwrap_err(),
            PlacementError::UnknownNode { .. }
        ));
    }

    #[test]
    fn validate_agrees_with_new() {
        let p = problem(&[100.0], &[60.0, 50.0]);
        assert!(matches!(
            Placement::validate(&p, &[nid(0), nid(0)]).unwrap_err(),
            PlacementError::CapacityExceeded { .. }
        ));
        assert!(matches!(
            Placement::validate(&p, &[nid(0)]).unwrap_err(),
            PlacementError::MissingVnf { .. }
        ));
        assert!(matches!(
            Placement::validate(&p, &[nid(0), nid(3)]).unwrap_err(),
            PlacementError::UnknownNode { .. }
        ));
        let fits = problem(&[100.0], &[60.0, 40.0]);
        Placement::validate(&fits, &[nid(0), nid(0)]).unwrap();
        Placement::new(&fits, vec![nid(0), nid(0)]).unwrap();
    }

    #[test]
    fn eq13_average_utilization() {
        let p = problem(&[100.0, 200.0, 50.0], &[80.0, 100.0]);
        let placement = Placement::new(&p, vec![nid(0), nid(1)]).unwrap();
        // Utilizations: 0.8 and 0.5 over two used nodes; node2 unused.
        assert!((placement.average_utilization().value() - 0.65).abs() < 1e-12);
        assert_eq!(placement.nodes_in_service(), 2);
        assert_eq!(placement.resource_occupation(), 300.0);
    }

    #[test]
    fn lookup_and_colocation() {
        let p = problem(&[100.0, 100.0], &[30.0, 30.0, 30.0]);
        let placement = Placement::new(&p, vec![nid(0), nid(0), nid(1)]).unwrap();
        assert_eq!(placement.node_of(VnfId::new(2)), nid(1));
        assert!(placement.colocated(VnfId::new(0), VnfId::new(1)));
        assert!(!placement.colocated(VnfId::new(0), VnfId::new(2)));
        let on0: Vec<_> = placement.vnfs_on(nid(0)).collect();
        assert_eq!(on0, vec![VnfId::new(0), VnfId::new(1)]);
        assert_eq!(placement.demand_on(nid(0)), 60.0);
        assert!((placement.utilization_of(nid(1)).value() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn used_nodes_excludes_idle() {
        let p = problem(&[10.0, 10.0, 10.0], &[5.0]);
        let placement = Placement::new(&p, vec![nid(1)]).unwrap();
        let used: Vec<_> = placement.used_nodes().collect();
        assert_eq!(used, vec![nid(1)]);
    }

    #[test]
    fn exact_fit_is_allowed() {
        let p = problem(&[100.0], &[60.0, 40.0]);
        let placement = Placement::new(&p, vec![nid(0), nid(0)]).unwrap();
        assert_eq!(placement.average_utilization(), Utilization::FULL);
    }

    #[test]
    fn display_is_compact() {
        let p = problem(&[100.0], &[50.0]);
        let placement = Placement::new(&p, vec![nid(0)]).unwrap();
        assert!(placement.to_string().contains("1 VNFs on 1 nodes"));
    }
}
