//! Error type for simulator configuration.

use std::error::Error;
use std::fmt;

/// Error returned when a simulation cannot be configured.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// A rate or probability was outside its valid domain.
    InvalidParameter {
        /// Description of the violated requirement.
        reason: &'static str,
    },
    /// A request's path referenced a station that does not exist.
    UnknownStation {
        /// The offending station index.
        station: usize,
    },
    /// The configuration has no stations or no requests.
    EmptyConfig,
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::InvalidParameter { reason } => write!(f, "invalid parameter: {reason}"),
            Self::UnknownStation { station } => {
                write!(f, "request path references unknown station {station}")
            }
            Self::EmptyConfig => write!(f, "simulation needs at least one station and one request"),
        }
    }
}

impl Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_concise() {
        assert!(SimError::EmptyConfig.to_string().contains("at least one"));
        assert!(SimError::UnknownStation { station: 3 }
            .to_string()
            .contains('3'));
    }
}
