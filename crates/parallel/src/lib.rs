//! Deterministic parallel sweep engine.
//!
//! The paper's evaluation is embarrassingly parallel — `repetitions ×
//! x-points × algorithms` fully independent trials — but naive
//! parallelization destroys the workspace's central guarantee: every
//! experiment is *bit-identical for a fixed seed*, regardless of how it is
//! executed. This crate supplies the two pieces that make parallelism and
//! determinism compatible:
//!
//! 1. **Input-order results**: [`par_map_indexed`] runs tasks on a scoped
//!    worker pool (hand-rolled over [`std::thread::scope`] + channels — no
//!    external dependencies, matching the workspace's vendored-shim
//!    constraint) and returns results in *input order*, no matter which
//!    worker finished first.
//! 2. **Per-task seed derivation**: [`derive_seed`] maps `(base_seed,
//!    task_index)` to an independent seed through a SplitMix64-style hash,
//!    so a task's randomness depends only on its index — never on which
//!    thread ran it or what ran before it on the same thread.
//!
//! Together these make every caller's output **bit-identical at any thread
//! count, including 1**. The experiment runners in `nfv-core` assert
//! exactly that in their thread-count-invariance regression test.
//!
//! A task that panics does not deadlock the pool: the panic is caught,
//! the remaining tasks still run, and the first panic (by task index) is
//! reported as a [`TaskPanic`] error.
//!
//! # Examples
//!
//! ```
//! use nfv_parallel::{derive_seed, par_map_indexed};
//!
//! let squares = par_map_indexed(4, (0u64..100).collect(), |i, x| {
//!     let _seed = derive_seed(42, i as u64); // per-task RNG seed
//!     x * x
//! })
//! .unwrap();
//! assert_eq!(squares[7], 49); // input order, regardless of scheduling
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::VecDeque;
use std::fmt;
use std::num::NonZeroUsize;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Mutex};
use std::thread;

/// Error returned when one or more tasks panicked. The pool itself never
/// deadlocks on a panic: every task still runs, and the panic with the
/// smallest task index is reported (deterministically, so the error does
/// not depend on scheduling either).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskPanic {
    /// Input index of the first (lowest-index) panicking task.
    pub index: usize,
    /// The panic payload, if it was a string; `"<non-string panic>"`
    /// otherwise.
    pub message: String,
}

impl fmt::Display for TaskPanic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "task {} panicked: {}", self.index, self.message)
    }
}

impl std::error::Error for TaskPanic {}

/// The golden-ratio increment of SplitMix64.
const GOLDEN: u64 = 0x9E37_79B9_7F4A_7C15;

/// Derives the seed of task `task_index` from `base_seed`: the
/// `(task_index + 1)`-th output of a SplitMix64 stream seeded with
/// `base_seed`.
///
/// Tasks seeded this way draw from independent, well-mixed streams — two
/// adjacent indices share no low-bit structure, unlike the
/// `base_seed + index` scheme it replaces (where `(base, i+1)` and
/// `(base + 1, i)` collide). Experiment runners use it for per-trial RNGs
/// so a trial's randomness is a pure function of `(base_seed, trial)`,
/// independent of execution order.
#[must_use]
pub fn derive_seed(base_seed: u64, task_index: u64) -> u64 {
    let mut z = base_seed.wrapping_add(task_index.wrapping_add(1).wrapping_mul(GOLDEN));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Number of hardware threads available to this process (at least 1).
#[must_use]
pub fn available_threads() -> usize {
    thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Process-wide default thread count; `0` means "use
/// [`available_threads`]".
static DEFAULT_THREADS: AtomicUsize = AtomicUsize::new(0);

/// The process-wide default worker count used by the experiment runners:
/// [`available_threads`] unless overridden by [`set_default_threads`].
#[must_use]
pub fn default_threads() -> usize {
    match DEFAULT_THREADS.load(Ordering::Relaxed) {
        0 => available_threads(),
        n => n,
    }
}

/// Overrides the process-wide default worker count (the `figures` binary's
/// `--threads` flag lands here). Passing `0` resets to
/// [`available_threads`]. Because every consumer of the pool is
/// thread-count invariant, changing this never changes any result — only
/// wall-clock.
pub fn set_default_threads(threads: usize) {
    DEFAULT_THREADS.store(threads, Ordering::Relaxed);
}

/// Maps `f` over `items` on a scoped pool of at most `threads` workers and
/// returns the results **in input order**.
///
/// `f` receives `(input_index, item)`; derive any randomness from the
/// index (see [`derive_seed`]), never from shared mutable state, and the
/// output is bit-identical at any thread count. With `threads <= 1` (or a
/// single item) no worker threads are spawned at all — the serial path and
/// the parallel path produce identical results by construction.
///
/// Work is distributed dynamically (a shared queue, not static striping),
/// so uneven task costs don't idle workers.
///
/// # Errors
///
/// Returns [`TaskPanic`] if any task panicked. All tasks run to completion
/// regardless — a panic neither deadlocks the pool nor cancels the
/// remaining tasks — and the lowest-index panic is the one reported.
pub fn par_map_indexed<T, R, F>(threads: usize, items: Vec<T>, f: F) -> Result<Vec<R>, TaskPanic>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let n = items.len();
    if threads <= 1 || n <= 1 {
        let mut results = Vec::with_capacity(n);
        for (index, item) in items.into_iter().enumerate() {
            match catch_unwind(AssertUnwindSafe(|| f(index, item))) {
                Ok(value) => results.push(value),
                Err(payload) => {
                    return Err(TaskPanic {
                        index,
                        message: panic_message(&*payload),
                    })
                }
            }
        }
        return Ok(results);
    }

    let workers = threads.min(n);
    let queue: Mutex<VecDeque<(usize, T)>> = Mutex::new(items.into_iter().enumerate().collect());
    let (sender, receiver) = mpsc::channel::<(usize, Result<R, String>)>();

    let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
    let mut first_panic: Option<TaskPanic> = None;

    thread::scope(|scope| {
        for _ in 0..workers {
            let sender = sender.clone();
            let queue = &queue;
            let f = &f;
            scope.spawn(move || loop {
                // Never run user code while holding the queue lock: pop,
                // release, compute.
                let next = queue.lock().expect("task queue lock").pop_front();
                let Some((index, item)) = next else { break };
                let outcome = catch_unwind(AssertUnwindSafe(|| f(index, item)))
                    .map_err(|payload| panic_message(&*payload));
                if sender.send((index, outcome)).is_err() {
                    break; // receiver gone; nothing left to report to
                }
            });
        }
        drop(sender); // workers hold the remaining clones

        // Exactly one message per task arrives; collecting until the
        // channel closes (all workers done) cannot deadlock.
        for (index, outcome) in receiver {
            match outcome {
                Ok(value) => slots[index] = Some(value),
                Err(message) => {
                    if first_panic.as_ref().is_none_or(|p| index < p.index) {
                        first_panic = Some(TaskPanic { index, message });
                    }
                }
            }
        }
    });

    if let Some(panic) = first_panic {
        return Err(panic);
    }
    Ok(slots
        .into_iter()
        .map(|slot| slot.expect("every task sent exactly one result"))
        .collect())
}

/// Maps `f` over `items` with the process-wide [`default_threads`] count.
///
/// # Errors
///
/// Returns [`TaskPanic`] exactly as [`par_map_indexed`] does.
pub fn par_map<T, R, F>(items: Vec<T>, f: F) -> Result<Vec<R>, TaskPanic>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    par_map_indexed(default_threads(), items, f)
}

/// Runs `f` with panic containment and reports a panic as a [`TaskPanic`]
/// carrying `index`, exactly like a pool task would.
///
/// This is the supervision primitive for callers that must keep ownership
/// of their data across a panic: [`par_map_indexed`] consumes items by
/// value, so a panicking task's item is lost with the unwound stack.
/// Supervised callers (the fleet's chaos-hardened drain phase) instead
/// pass *borrows* through the pool and wrap the fallible body in
/// `catch_task` inside the task closure — the borrowed state survives the
/// unwind and can be restored from a checkpoint.
///
/// # Errors
///
/// Returns [`TaskPanic`] with the given `index` if `f` panicked.
pub fn catch_task<R>(index: usize, f: impl FnOnce() -> R) -> Result<R, TaskPanic> {
    catch_unwind(AssertUnwindSafe(f)).map_err(|payload| TaskPanic {
        index,
        message: panic_message(&*payload),
    })
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic>".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order_across_thread_counts() {
        let items: Vec<u64> = (0..257).collect();
        let expected: Vec<u64> = items.iter().map(|x| x * 3 + 1).collect();
        for threads in [1, 2, 3, 8, 64] {
            let got = par_map_indexed(threads, items.clone(), |_, x| x * 3 + 1).unwrap();
            assert_eq!(got, expected, "threads={threads}");
        }
    }

    #[test]
    fn index_matches_item_position() {
        let got = par_map_indexed(4, vec!['a', 'b', 'c', 'd', 'e'], |i, c| (i, c)).unwrap();
        assert_eq!(got, vec![(0, 'a'), (1, 'b'), (2, 'c'), (3, 'd'), (4, 'e')]);
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let got: Vec<u32> = par_map_indexed(8, Vec::<u32>::new(), |_, x| x).unwrap();
        assert!(got.is_empty());
    }

    #[test]
    fn panic_is_reported_not_deadlocked() {
        let err = par_map_indexed(4, (0..32).collect::<Vec<i32>>(), |_, x| {
            assert!(x != 20, "boom at 20");
            x
        })
        .unwrap_err();
        assert_eq!(err.index, 20);
        assert!(err.message.contains("boom at 20"), "{}", err.message);
    }

    #[test]
    fn lowest_index_panic_wins_deterministically() {
        for threads in [1, 2, 8] {
            let err = par_map_indexed(threads, (0..64).collect::<Vec<i32>>(), |_, x| {
                assert!(x % 10 != 3, "multiple panics");
                x
            })
            .unwrap_err();
            assert_eq!(err.index, 3, "threads={threads}");
        }
    }

    #[test]
    fn catch_task_contains_panics_and_keeps_borrowed_state() {
        let mut counters = vec![0u64; 3];
        let results: Vec<Result<u64, TaskPanic>> = counters
            .iter_mut()
            .enumerate()
            .map(|(i, c)| {
                catch_task(i, || {
                    *c += 1;
                    assert!(i != 1, "boom at 1");
                    *c
                })
            })
            .collect();
        assert_eq!(results[0], Ok(1));
        let err = results[1].clone().unwrap_err();
        assert_eq!(err.index, 1);
        assert!(err.message.contains("boom at 1"), "{}", err.message);
        assert_eq!(results[2], Ok(1));
        // The borrowed state survived the contained panic.
        assert_eq!(counters, vec![1, 1, 1]);
    }

    #[test]
    fn derived_seeds_differ_between_tasks_and_bases() {
        let a: Vec<u64> = (0..64).map(|i| derive_seed(1, i)).collect();
        let b: Vec<u64> = (0..64).map(|i| derive_seed(2, i)).collect();
        let mut all: Vec<u64> = a.iter().chain(b.iter()).copied().collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 128, "seed collision across tasks/bases");
        // The old additive scheme collides: (base, i+1) == (base+1, i).
        assert_ne!(derive_seed(1, 1), derive_seed(2, 0));
    }

    #[test]
    fn default_threads_is_at_least_one_and_overridable() {
        assert!(default_threads() >= 1);
        assert!(available_threads() >= 1);
    }

    #[test]
    fn borrowed_state_is_visible_to_tasks() {
        // Scoped workers may borrow from the caller — no 'static bound.
        let base = [10u64, 20, 30];
        let got = par_map_indexed(2, vec![0usize, 1, 2], |_, i| base[i] + 1).unwrap();
        assert_eq!(got, vec![11, 21, 31]);
    }
}
