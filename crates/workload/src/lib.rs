//! Workload and trace generation for NFV experiments.
//!
//! The paper's evaluation (§V.A) is *trace-driven*: parameter ranges are
//! calibrated from datacenter measurements (Benson et al., IMC'10) and a VNF
//! survey (Li & Chen, 2015). This crate substitutes seeded synthetic
//! generators that reproduce exactly the published ranges:
//!
//! * 6–30 VNFs drawn from a nine-kind catalog ([`VnfCatalog`]), each
//!   deploying `M_f` service instances;
//! * 30–1000 requests, each traversing a chain of at most 6 VNFs
//!   ([`ChainGenerator`]);
//! * Poisson arrivals with `λ ∈ [1, 100]` pps and delivery probability
//!   `P ∈ [0.98, 1]`;
//! * per-node capacities of 1–5000 units (handled by `nfv-topology`).
//!
//! Everything is driven by an explicit seed, so a [`Scenario`] is
//! reproducible bit-for-bit.
//!
//! # Examples
//!
//! ```
//! use nfv_workload::ScenarioBuilder;
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let scenario = ScenarioBuilder::new()
//!     .vnfs(15)
//!     .requests(200)
//!     .max_chain_len(6)
//!     .seed(7)
//!     .build()?;
//! assert_eq!(scenario.vnfs().len(), 15);
//! assert_eq!(scenario.requests().len(), 200);
//! scenario.validate()?;
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod catalog;
mod chains;
pub mod churn;
mod error;
pub mod replicate;
mod requests;
mod scenario;
mod templates;
pub mod tenancy;

pub use catalog::{VnfCatalog, VnfProfile};
pub use chains::ChainGenerator;
pub use error::WorkloadError;
pub use requests::RequestGenerator;
pub use scenario::{InstancePolicy, Scenario, ScenarioBuilder, ServiceRatePolicy};
pub use templates::ChainTemplate;
pub use tenancy::{TenantEvent, TenantId, TenantInterleave};
