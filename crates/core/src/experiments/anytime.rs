//! Anytime-search experiments: quality-vs-time Pareto fronts for the
//! metaheuristic placement searchers (`nfv-search`, GA + PSO).
//!
//! Three questions, three runners:
//!
//! * [`quality_vs_generations`] — how quickly does the anytime search
//!   close on (and pass) the greedy placers? The sweep reports mean nodes
//!   in service at generation checkpoints, with BFDSU/FFD/NAH as
//!   constant baselines: each row is one point of the quality-vs-time
//!   Pareto front.
//! * [`oracle_ratio`] — on instances small enough for the exact
//!   branch-and-bound oracle, how close do the searchers get to optimal?
//!   Reported as the mean `nodes used / optimal nodes` ratio, exactly as
//!   the placement experiments score the greedy placers.
//! * [`refiner_replay`] — the online counterpart: one churn trace
//!   replayed through the joint-reopt controller with and without the
//!   background refiner ([`ControllerConfig::refined`]), showing the
//!   searcher committing migration plans through the hysteresis path.
//!
//! Everything is seeded and thread-invariant: searches derive
//! per-individual streams from `(seed, generation·population + i)`, and
//! repetitions are replayed in index order.

use std::collections::BTreeSet;

use nfv_controller::{Controller, ControllerConfig};
use nfv_model::NodeId;
use nfv_parallel::{derive_seed, par_map};
use nfv_placement::{exact, PlacementProblem, Placer};
use nfv_search::{Engine, SearchConfig, SearchRun};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::experiments::churn::{self, ChurnComparison, ChurnOutcome, ChurnPoint};
use crate::experiments::placement::{build_problem, standard_placers, PlacementPoint};
use crate::experiments::Sweep;
use crate::CoreError;

/// Generation checkpoints of the quality-vs-time sweep; checkpoint 0 is
/// the seeded population (the deterministic FFD warm start plus random
/// genomes), so the first row is "zero search time spent".
pub const GENERATION_CHECKPOINTS: [usize; 6] = [0, 2, 5, 10, 20, 40];

/// The instance shape of the Pareto sweep: a mid-size placement problem
/// where the greedy placers leave a little quality on the table.
#[must_use]
pub fn pareto_point() -> PlacementPoint {
    PlacementPoint {
        nodes: 8,
        vnfs: 12,
        requests: 120,
        requests_per_instance: 10,
        fill: 0.7,
    }
}

/// The [`pareto_point`] instance for external harnesses — the `figures
/// bench` search entry times GA generations on exactly this problem.
///
/// # Errors
///
/// Propagates structural configuration errors.
pub fn bench_problem(seed: u64) -> Result<PlacementProblem, CoreError> {
    build_problem(&pareto_point(), seed)
}

/// Nodes hosting at least one VNF under `assignment`.
fn nodes_used(assignment: &[NodeId]) -> f64 {
    assignment.iter().collect::<BTreeSet<_>>().len() as f64
}

/// Steps one engine through the checkpoints, recording nodes in service
/// of the best-so-far assignment at each.
fn checkpointed_search(
    problem: &PlacementProblem,
    engine: Engine,
    seed: u64,
) -> Result<Vec<f64>, CoreError> {
    let config = match engine {
        Engine::Ga => SearchConfig::ga(seed),
        Engine::Pso => SearchConfig::pso(seed),
    };
    let mut run = SearchRun::new(problem, &config).map_err(CoreError::from)?;
    let mut at_checkpoints = Vec::with_capacity(GENERATION_CHECKPOINTS.len());
    for &checkpoint in &GENERATION_CHECKPOINTS {
        while run.generation() < checkpoint {
            run.step();
        }
        at_checkpoints.push(nodes_used(run.best_assignment()));
    }
    Ok(at_checkpoints)
}

/// The quality-vs-time Pareto front: mean nodes in service of the GA and
/// PSO incumbents at each generation checkpoint, against the (constant)
/// greedy baselines on the same instances. Repetitions are averaged; a
/// baseline that fails an instance is excluded from that repetition's
/// average.
///
/// # Errors
///
/// Propagates structural configuration errors.
pub fn quality_vs_generations(repetitions: u64, base_seed: u64) -> Result<Sweep, CoreError> {
    let point = pareto_point();
    let placers = standard_placers();
    let mut series: Vec<String> = vec!["ga".into(), "pso".into()];
    series.extend(placers.iter().map(|p| p.name().to_owned()));
    let mut sweep = Sweep::new("generations", series);

    // One row of per-checkpoint engine quality + baseline quality per
    // repetition, folded in repetition order.
    let mut ga = vec![0.0f64; GENERATION_CHECKPOINTS.len()];
    let mut pso = vec![0.0f64; GENERATION_CHECKPOINTS.len()];
    let mut baselines = vec![(0.0f64, 0u64); placers.len()];
    for rep in 0..repetitions {
        let seed = derive_seed(base_seed, rep);
        let problem = build_problem(&point, seed)?;
        let ga_row = checkpointed_search(&problem, Engine::Ga, derive_seed(seed, 1))?;
        let pso_row = checkpointed_search(&problem, Engine::Pso, derive_seed(seed, 2))?;
        for (acc, value) in ga.iter_mut().zip(&ga_row) {
            *acc += value;
        }
        for (acc, value) in pso.iter_mut().zip(&pso_row) {
            *acc += value;
        }
        for (i, placer) in placers.iter().enumerate() {
            let mut rng = StdRng::seed_from_u64(derive_seed(seed, 3 + i as u64));
            if let Ok(outcome) = placer.place(&problem, &mut rng) {
                baselines[i].0 += outcome.placement().nodes_in_service() as f64;
                baselines[i].1 += 1;
            }
        }
    }
    let reps = repetitions.max(1) as f64;
    let baseline_means: Vec<f64> = baselines
        .iter()
        .map(|&(sum, n)| if n > 0 { sum / n as f64 } else { f64::NAN })
        .collect();
    for (c, &checkpoint) in GENERATION_CHECKPOINTS.iter().enumerate() {
        let mut values = vec![ga[c] / reps, pso[c] / reps];
        values.extend(baseline_means.iter().copied());
        sweep.push(checkpoint as f64, values);
    }
    Ok(sweep)
}

/// Searcher optimality on small instances: mean `nodes used / optimal
/// nodes` for GA and PSO (after [`ORACLE_GENERATIONS`] generations) with
/// BFDSU for context,
/// over the same 5-node instances the placement experiments solve
/// exactly. A ratio of 1.0 means the searcher matched the
/// branch-and-bound oracle on every repetition.
///
/// # Errors
///
/// Propagates structural configuration errors.
pub fn oracle_ratio(repetitions: u64, base_seed: u64) -> Result<Sweep, CoreError> {
    oracle_ratio_with(repetitions, base_seed, ORACLE_GENERATIONS)
}

/// Generation budget of [`oracle_ratio`]: enough for both engines to
/// close on the branch-and-bound optimum on every 5-node instance.
pub const ORACLE_GENERATIONS: usize = 60;

fn oracle_ratio_with(
    repetitions: u64,
    base_seed: u64,
    generations: usize,
) -> Result<Sweep, CoreError> {
    let mut sweep = Sweep::new("vnfs", vec!["ga".into(), "pso".into(), "bfdsu".into()]);
    let bfdsu = nfv_placement::Bfdsu::new();
    for vnfs in [5usize, 6, 7, 8] {
        let point = PlacementPoint {
            nodes: 5,
            vnfs,
            requests: 60,
            requests_per_instance: 10,
            fill: 0.7,
        };
        let mut sums = [0.0f64; 3];
        let mut counted = 0u64;
        for rep in 0..repetitions {
            let seed = derive_seed(base_seed, rep);
            let problem = build_problem(&point, seed)?;
            let Some(opt) = exact::optimal_node_count(&problem) else {
                continue;
            };
            let opt = opt.max(1) as f64;
            let ga = nfv_search::search(
                &problem,
                &SearchConfig::ga(derive_seed(seed, 1)),
                generations,
            )
            .map_err(CoreError::from)?;
            let pso = nfv_search::search(
                &problem,
                &SearchConfig::pso(derive_seed(seed, 2)),
                generations,
            )
            .map_err(CoreError::from)?;
            let mut rng = StdRng::seed_from_u64(derive_seed(seed, 3));
            let Ok(greedy) = bfdsu.place(&problem, &mut rng) else {
                continue;
            };
            sums[0] += nodes_used(ga.best_assignment()) / opt;
            sums[1] += nodes_used(pso.best_assignment()) / opt;
            sums[2] += greedy.placement().nodes_in_service() as f64 / opt;
            counted += 1;
        }
        let n = counted.max(1) as f64;
        sweep.push(vnfs as f64, sums.iter().map(|s| s / n).collect());
    }
    Ok(sweep)
}

/// Replays one churn trace through the resilient controller with and
/// without the background refiner — [`ControllerConfig::refined`] differs
/// from [`ControllerConfig::resilient`] by exactly that one knob, so any
/// delta between the rows is the searcher's doing. The refined policy's
/// report carries the searcher's committed/rejected plan counts
/// ([`nfv_controller::ControllerReport::refines_applied`]).
///
/// # Errors
///
/// Propagates scenario/trace construction errors.
pub fn refiner_replay(seed: u64) -> Result<ChurnComparison, CoreError> {
    let point = ChurnPoint::base();
    let (scenario, trace) = churn::setup(&point, seed)?;
    let (nodes, placement) = churn::setup_cluster(&point, seed, &scenario)?;
    let controllers: Vec<(&str, Controller)> = vec![
        (
            "resilient",
            Controller::with_cluster(
                &scenario,
                nodes.clone(),
                &placement,
                ControllerConfig::resilient(),
            )?,
        ),
        (
            "refined",
            Controller::with_cluster(&scenario, nodes, &placement, ControllerConfig::refined())?,
        ),
    ];
    let outcomes = par_map(controllers, |_, (name, mut controller)| ChurnOutcome {
        policy: name.to_string(),
        report: controller.run_trace(&trace),
    })
    .map_err(CoreError::from)?;
    Ok(ChurnComparison {
        point,
        seed,
        outcomes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pareto_front_is_monotone_and_reaches_the_best_baseline() {
        let sweep = quality_vs_generations(2, 42).unwrap();
        assert_eq!(sweep.rows().len(), GENERATION_CHECKPOINTS.len());
        for name in ["ga", "pso"] {
            let values = sweep.series_values(name).unwrap();
            for pair in values.windows(2) {
                assert!(pair[1] <= pair[0] + 1e-9, "{name} must not regress");
            }
        }
        let best_baseline = ["bfdsu", "ffd", "nah"]
            .iter()
            .map(|n| sweep.series_values(n).unwrap()[0])
            .fold(f64::INFINITY, f64::min);
        let ga_final = *sweep.series_values("ga").unwrap().last().unwrap();
        assert!(
            ga_final <= best_baseline + 1e-9,
            "40 GA generations must match or beat the best greedy placer: \
             {ga_final} vs {best_baseline}"
        );
    }

    #[test]
    fn searchers_match_the_oracle_on_small_instances() {
        let sweep = oracle_ratio(3, 5).unwrap();
        for name in ["ga", "pso", "bfdsu"] {
            for &ratio in &sweep.series_values(name).unwrap() {
                assert!(ratio >= 1.0 - 1e-9, "{name} below optimal: {ratio}");
            }
        }
        let ga = sweep.series_mean("ga").unwrap();
        let bfdsu = sweep.series_mean("bfdsu").unwrap();
        assert!(
            ga <= 1.0 + 1e-9,
            "GA must match the exact oracle on small instances: {ga}"
        );
        assert!(ga <= bfdsu + 1e-9, "GA {ga} worse than BFDSU {bfdsu}");
    }

    #[test]
    fn refiner_replay_commits_searched_plans_at_seed_42() {
        let comparison = refiner_replay(42).unwrap();
        let baseline = &comparison.outcome("resilient").unwrap().report;
        let refined = &comparison.outcome("refined").unwrap().report;
        assert_eq!(baseline.refines_applied + baseline.refines_rejected, 0);
        assert!(
            refined.refines_applied >= 1,
            "the refiner must commit at least one searched plan: {refined}"
        );
        assert!(
            refined.mean_latency.is_finite() && refined.peak_utilization < 1.0,
            "refinement must not destabilize the run"
        );
    }

    #[test]
    fn runs_are_deterministic() {
        assert_eq!(
            quality_vs_generations(2, 3).unwrap(),
            quality_vs_generations(2, 3).unwrap()
        );
        assert_eq!(refiner_replay(7).unwrap(), refiner_replay(7).unwrap());
    }
}
