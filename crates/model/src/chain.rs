//! Ordered service chains of VNFs.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{ModelError, VnfId};

/// An ordered chain of VNFs that a request must traverse, e.g.
/// `NAT → FW → LB`.
///
/// The paper's indicator `U_r^f` (whether request `r` uses VNF `f`) is
/// derivable from the chain via [`ServiceChain::uses`]. A chain is non-empty
/// and visits each VNF at most once: the paper models additional copies of a
/// VNF as replica VNFs with fresh identifiers (Eq. (2)), so a single id never
/// appears twice on one path.
///
/// # Examples
///
/// ```
/// use nfv_model::{ServiceChain, VnfId};
/// # fn main() -> Result<(), nfv_model::ModelError> {
/// let chain = ServiceChain::new(vec![VnfId::new(0), VnfId::new(2)])?;
/// assert_eq!(chain.len(), 2);
/// assert!(chain.uses(VnfId::new(2)));
/// assert!(!chain.uses(VnfId::new(1)));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ServiceChain {
    vnfs: Vec<VnfId>,
}

impl ServiceChain {
    /// Creates a chain from the ordered list of VNFs to traverse.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::EmptyChain`] for an empty list and
    /// [`ModelError::DuplicateVnfInChain`] if any VNF id repeats.
    pub fn new(vnfs: Vec<VnfId>) -> Result<Self, ModelError> {
        if vnfs.is_empty() {
            return Err(ModelError::EmptyChain);
        }
        let mut seen = vnfs.clone();
        seen.sort_unstable();
        for pair in seen.windows(2) {
            if pair[0] == pair[1] {
                return Err(ModelError::DuplicateVnfInChain { vnf: pair[0] });
            }
        }
        Ok(Self { vnfs })
    }

    /// Creates a single-VNF chain.
    #[must_use]
    pub fn single(vnf: VnfId) -> Self {
        Self { vnfs: vec![vnf] }
    }

    /// Number of VNFs on the chain.
    #[must_use]
    pub fn len(&self) -> usize {
        self.vnfs.len()
    }

    /// Whether the chain is empty. Always `false` for a constructed chain;
    /// provided for API completeness alongside [`len`](Self::len).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.vnfs.is_empty()
    }

    /// Whether the chain traverses `vnf` — the paper's `U_r^f`.
    #[must_use]
    pub fn uses(&self, vnf: VnfId) -> bool {
        self.vnfs.contains(&vnf)
    }

    /// Position of `vnf` on the chain, if present.
    #[must_use]
    pub fn position(&self, vnf: VnfId) -> Option<usize> {
        self.vnfs.iter().position(|&v| v == vnf)
    }

    /// The VNF at zero-based `hop`, if within the chain.
    #[must_use]
    pub fn hop(&self, hop: usize) -> Option<VnfId> {
        self.vnfs.get(hop).copied()
    }

    /// Iterator over the VNFs in traversal order.
    pub fn iter(&self) -> impl Iterator<Item = VnfId> + '_ {
        self.vnfs.iter().copied()
    }

    /// The chain as a slice in traversal order.
    #[must_use]
    pub fn as_slice(&self) -> &[VnfId] {
        &self.vnfs
    }

    /// First VNF on the chain.
    #[must_use]
    pub fn first(&self) -> VnfId {
        self.vnfs[0]
    }

    /// Last VNF on the chain.
    #[must_use]
    pub fn last(&self) -> VnfId {
        *self.vnfs.last().expect("chains are non-empty")
    }
}

impl fmt::Display for ServiceChain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, vnf) in self.vnfs.iter().enumerate() {
            if i > 0 {
                f.write_str(" -> ")?;
            }
            write!(f, "{vnf}")?;
        }
        Ok(())
    }
}

impl<'a> IntoIterator for &'a ServiceChain {
    type Item = &'a VnfId;
    type IntoIter = std::slice::Iter<'a, VnfId>;

    fn into_iter(self) -> Self::IntoIter {
        self.vnfs.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(raw: &[u32]) -> Vec<VnfId> {
        raw.iter().map(|&i| VnfId::new(i)).collect()
    }

    #[test]
    fn rejects_empty_chain() {
        assert_eq!(ServiceChain::new(vec![]), Err(ModelError::EmptyChain));
    }

    #[test]
    fn rejects_duplicate_vnfs() {
        let err = ServiceChain::new(ids(&[0, 1, 0])).unwrap_err();
        assert_eq!(err, ModelError::DuplicateVnfInChain { vnf: VnfId::new(0) });
    }

    #[test]
    fn preserves_traversal_order() {
        let chain = ServiceChain::new(ids(&[2, 0, 1])).unwrap();
        assert_eq!(chain.hop(0), Some(VnfId::new(2)));
        assert_eq!(chain.hop(1), Some(VnfId::new(0)));
        assert_eq!(chain.hop(2), Some(VnfId::new(1)));
        assert_eq!(chain.hop(3), None);
        assert_eq!(chain.first(), VnfId::new(2));
        assert_eq!(chain.last(), VnfId::new(1));
    }

    #[test]
    fn uses_and_position_agree() {
        let chain = ServiceChain::new(ids(&[3, 5])).unwrap();
        assert!(chain.uses(VnfId::new(5)));
        assert_eq!(chain.position(VnfId::new(5)), Some(1));
        assert!(!chain.uses(VnfId::new(4)));
        assert_eq!(chain.position(VnfId::new(4)), None);
    }

    #[test]
    fn single_builds_length_one_chain() {
        let chain = ServiceChain::single(VnfId::new(7));
        assert_eq!(chain.len(), 1);
        assert!(!chain.is_empty());
        assert_eq!(chain.first(), chain.last());
    }

    #[test]
    fn display_shows_arrows() {
        let chain = ServiceChain::new(ids(&[0, 1])).unwrap();
        assert_eq!(chain.to_string(), "vnf0 -> vnf1");
    }

    #[test]
    fn iterates_in_order() {
        let chain = ServiceChain::new(ids(&[4, 2, 9])).unwrap();
        let collected: Vec<_> = chain.iter().collect();
        assert_eq!(collected, ids(&[4, 2, 9]));
        let borrowed: Vec<_> = (&chain).into_iter().copied().collect();
        assert_eq!(borrowed, ids(&[4, 2, 9]));
    }
}
