#!/usr/bin/env bash
# Tier-1 gate: formatting, lints, and the full test suite.
# Usage: ./ci.sh
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo clippy (workspace, all targets, deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== figures command list (every ALL_COMMANDS entry must reach a dispatch arm) =="
figures_src=crates/bench/src/bin/figures.rs
command_gate_failed=0
commands=$(sed -n '/ALL_COMMANDS:/,/^];$/p' "$figures_src" | grep -o '"[a-z0-9]*"' | tr -d '"' | tr '\n' ' ')
[ -n "$commands" ] || { echo "could not extract ALL_COMMANDS from $figures_src"; exit 1; }
for cmd in $commands; do
    grep -q "\"$cmd\" =>" "$figures_src" || {
        echo "command \"$cmd\" is listed in ALL_COMMANDS but has no dispatch arm in $figures_src"
        command_gate_failed=1
    }
done
# And the reverse: every dispatch arm (other than the synthetic all/bench
# drivers and the catch-all) must be listed, so `all` really runs everything.
for cmd in $(grep -o '^        "[a-z0-9]*" =>' "$figures_src" | grep -o '"[a-z0-9]*"' | tr -d '"'); do
    case " all bench $commands " in
        *" $cmd "*) ;;
        *)
            echo "dispatch arm \"$cmd\" in $figures_src is missing from ALL_COMMANDS"
            command_gate_failed=1
            ;;
    esac
done
if [ "$command_gate_failed" != 0 ]; then
    echo "figures command list and dispatch table drifted apart; update ALL_COMMANDS and usage() together"
    exit 1
fi

echo "== panic-site gate (non-test unwrap/expect in controller + fleet + telemetry vs ci/panic_allowlist.txt) =="
panic_gate_failed=0
for f in $(find crates/controller/src crates/fleet/src crates/telemetry/src -name '*.rs' | sort); do
    count=$(awk '/^#\[cfg\(test\)\]/{exit} { line=$0; sub(/\/\/.*/, "", line); if (line ~ /\.unwrap\(\)|\.expect\(/) c++ } END{print c+0}' "$f")
    allowed=$(awk -v f="$f" '$1 == f {print $2}' ci/panic_allowlist.txt)
    allowed=${allowed:-0}
    if [ "$count" -ne "$allowed" ]; then
        echo "$f has $count non-test unwrap/expect sites; the allowlist budgets $allowed"
        panic_gate_failed=1
    fi
done
if [ "$panic_gate_failed" != 0 ]; then
    echo "panic-site budget mismatch: audit the sites and update ci/panic_allowlist.txt in the same commit"
    exit 1
fi

echo "== cargo test (facade + workspace) =="
cargo test -q
cargo test -q --workspace

echo "== thread-count invariance (experiment results at 1/2/8 threads) =="
cargo test -q -p nfv-core --test thread_invariance

echo "== node-failure domains (total-loss, overlap, stale accounting, outage interleavings) =="
cargo test -q -p nfv-controller --test node_failure
cargo test -q -p nfv-controller --test properties outage_interleavings

echo "== queueing formula guards (rho >= 1 stays an error, never a number) =="
cargo test -q -p nfv-queueing rho_

echo "== ledger equivalence (incremental balanced-W bit-identical to the from-scratch oracle) =="
cargo test -q -p nfv-controller --test properties interleaved_mutations_undo_to_identity
cargo test -q -p nfv-controller cached_balanced_latency

echo "== replay engine (streamed == materialized trace, batched path preserves decisions) =="
cargo test -q -p nfv-workload stream
cargo test -q -p nfv-core --lib replay

echo "== anytime search (GA/PSO determinism, repair, refiner hand-off) =="
cargo test -q -p nfv-search
cargo test -q -p nfv-controller refiner
cargo test -q -p nfv-core --lib anytime
cargo test -q -p nfv-core --test thread_invariance search

echo "== retry timer wheel (pop order bit-identical to the BTreeMap oracle) =="
cargo test -q -p nfv-controller wheel

echo "== fleet (sharded tenants: conservation, two-phase handoff, merged journals) =="
cargo test -q -p nfv-fleet
cargo test -q -p nfv-core --lib fleet
cargo test -q -p nfv-core --test thread_invariance fleet

echo "== chaos harness (seeded fault plans, checkpoint/restore, byte-identical recovery) =="
cargo test -q -p nfv-chaos
cargo test -q -p nfv-controller --test snapshot_roundtrip
cargo test -q -p nfv-fleet --test chaos_recovery
cargo test -q -p nfv-core --lib chaos
cargo test -q -p nfv-core --test thread_invariance chaos

echo "== observability plane (span trees, registry byte-identity, flight recorder) =="
cargo test -q -p nfv-fleet --test observability
cargo test -q -p nfv-core --test thread_invariance observability

echo "== cargo build --release =="
cargo build --release

echo "== anytime figure (searchers must reach the greedy placers and the exact oracle) =="
cargo run -q --release -p nfv-bench --bin figures -- anytime --reps 2

echo "== churn figure (joint re-placement must beat scheduling-only when saturated) =="
cargo run -q --release -p nfv-bench --bin figures -- churn

echo "== resilience figure (emergency re-placement + retries must beat tick-only recovery) =="
cargo run -q --release -p nfv-bench --bin figures -- resilience

echo "== chaos figure (every recovered run byte-identical to the undisturbed baseline) =="
cargo run -q --release -p nfv-bench --bin figures -- chaos

echo "== telemetry layer (strict observer, journal round-trip, merge order) =="
cargo test -q -p nfv-telemetry
cargo test -q -p nfv-controller telemetry
cargo test -q -p nfv-core --test thread_invariance telemetry

echo "== telemetry exposure (JSONL journal + outage episode + hot-phase profile) =="
mkdir -p results
cargo run -q --release -p nfv-bench --bin figures -- trace --csv results
test -s results/trace_resilience.jsonl
test -s results/trace_series.csv
cargo run -q --release -p nfv-bench --bin figures -- profile
cargo run -q --release -p nfv-bench --bin figures -- obs --csv results
test -s results/registry.txt
test -s results/registry.prom
test -s results/registry.json

# Extracts one scalar field from one top-level object ("replay", "telemetry")
# of a BENCH_pipeline.json document fed on stdin. The fleet section repeats
# field names like "events", so the grep must be scoped to the object.
bench_field() { # <object> <field>
    sed -n "/\"$1\": {/,/}/p" | grep -o "\"$2\": *-\{0,1\}[0-9.]*" | grep -o '\-\{0,1\}[0-9.]*$'
}
# Extracts one scalar field from the largest fleet point (256 tenants).
fleet_field() { # <field>
    grep -o '{"tenants": 256,[^}]*}' | grep -o "\"$1\": *[0-9.]*" | grep -o '[0-9.]*$'
}

echo "== telemetry overhead gate (disabled path within 2% of the plain replay) =="
# Capture the committed throughput figures before the bench overwrites them.
committed=$(git show HEAD:BENCH_pipeline.json 2>/dev/null || true)
committed_eps=$(printf '%s' "$committed" | bench_field replay events_per_second || true)
committed_fleet_eps=$(printf '%s' "$committed" | fleet_field events_per_second || true)
committed_recovery_eps=$(printf '%s' "$committed" | bench_field recovery faulted_events_per_second || true)
cargo run --release -p nfv-bench --bin figures -- bench --reps 2
overhead=$(bench_field telemetry disabled_overhead_pct < BENCH_pipeline.json)
echo "telemetry disabled-path overhead: ${overhead}%"
awk -v o="$overhead" 'BEGIN { exit (o <= 2.0) ? 0 : 1 }' || {
    echo "telemetry disabled-path overhead ${overhead}% exceeds the 2% budget"
    exit 1
}

echo "== replay throughput gate (1M-event floor, >= 80% of the committed events/s) =="
# The wall-clock measurement gets one retry: a loaded CI host can produce a
# single bad sample, and failing the gate on it is noise, not signal.
for attempt in 1 2; do
    events=$(bench_field replay events < BENCH_pipeline.json)
    eps=$(bench_field replay events_per_second < BENCH_pipeline.json)
    echo "replay: ${events} events at ${eps} events/s (committed: ${committed_eps:-none})"
    # Hard: the streamed trace itself is deterministic, so a short event
    # count is a workload regression, not host noise.
    awk -v n="$events" 'BEGIN { exit (n >= 1000000) ? 0 : 1 }' || {
        echo "replay trace streamed ${events} events, below the 1M floor"
        exit 1
    }
    # Advisory: absolute throughput depends on the host, so a miss only
    # warns (slow/loaded CI machines false-failed this as a hard gate).
    awk -v e="$eps" 'BEGIN { exit (e >= 1000000) ? 0 : 1 }' \
        || echo "warning: replay throughput ${eps} events/s is below the 1M ev/s reference (host-dependent; not failing)"
    # Hard (with one retry): relative regression against the committed run.
    if [ -z "${committed_eps}" ]; then
        echo "no committed replay figure yet; regression gate skipped"
        break
    fi
    if awk -v e="$eps" -v c="$committed_eps" 'BEGIN { exit (e >= 0.8 * c) ? 0 : 1 }'; then
        break
    fi
    if [ "$attempt" = 2 ]; then
        echo "replay throughput ${eps} events/s regressed below 80% of the committed ${committed_eps}"
        exit 1
    fi
    echo "replay throughput ${eps} events/s below 80% of committed ${committed_eps}; retrying the measurement once"
    cargo run --release -p nfv-bench --bin figures -- bench --reps 2
done

echo "== fleet throughput gate (256-tenant point: migrations recorded, >= 80% of committed ev/s) =="
fleet_eps=$(fleet_field events_per_second < BENCH_pipeline.json)
fleet_migrations=$(fleet_field migrations < BENCH_pipeline.json)
fleet_latency=$(fleet_field mean_rebalance_latency_seconds < BENCH_pipeline.json)
echo "fleet: 256 tenants at ${fleet_eps} events/s, ${fleet_migrations} migrations, ${fleet_latency}s mean rebalance latency (committed: ${committed_fleet_eps:-none})"
# Hard: migration count and rebalance latency are virtual-clock values —
# deterministic per seed, so zeros mean the handoff path stopped running.
awk -v m="$fleet_migrations" -v l="$fleet_latency" 'BEGIN { exit (m >= 1 && l > 0) ? 0 : 1 }' || {
    echo "fleet bench recorded no cross-shard migrations (or zero rebalance latency); the handoff path is dead"
    exit 1
}
if [ -n "${committed_fleet_eps}" ]; then
    awk -v e="$fleet_eps" -v c="$committed_fleet_eps" 'BEGIN { exit (e >= 0.8 * c) ? 0 : 1 }' || {
        echo "fleet throughput ${fleet_eps} events/s regressed below 80% of the committed ${committed_fleet_eps}"
        exit 1
    }
else
    echo "no committed fleet figure yet; regression gate skipped"
fi

echo "== recovery gate (faulted bench run byte-identical; >= 80% of committed faulted ev/s) =="
# Hard: byte-identity of the recovered run is deterministic per seed, so
# a divergence is a recovery bug, never host noise.
sed -n '/"recovery": {/,/}/p' BENCH_pipeline.json | grep -q '"byte_identical": true' || {
    echo "recovery bench: the faulted run diverged from the undisturbed baseline"
    exit 1
}
# Hard (with one retry, like the replay gate): relative throughput of the
# faulted run — checkpoints, restores and replay ride the hot path, so a
# collapse here means recovery overhead regressed.
for attempt in 1 2; do
    recovery_eps=$(bench_field recovery faulted_events_per_second < BENCH_pipeline.json)
    recovery_replayed=$(bench_field recovery events_replayed < BENCH_pipeline.json)
    recovery_faults=$(bench_field recovery faults_injected < BENCH_pipeline.json)
    echo "recovery: ${recovery_faults} faults, ${recovery_replayed} events replayed, faulted run at ${recovery_eps} events/s (committed: ${committed_recovery_eps:-none})"
    # Hard: the seeded plan must actually disturb the run and the
    # replay-to-catch-up path must actually replay events.
    awk -v f="$recovery_faults" -v r="$recovery_replayed" 'BEGIN { exit (f >= 1 && r >= 1) ? 0 : 1 }' || {
        echo "recovery bench injected no faults (or replayed no events); the chaos path is dead"
        exit 1
    }
    if [ -z "${committed_recovery_eps}" ]; then
        echo "no committed recovery figure yet; regression gate skipped"
        break
    fi
    if awk -v e="$recovery_eps" -v c="$committed_recovery_eps" 'BEGIN { exit (e >= 0.8 * c) ? 0 : 1 }'; then
        break
    fi
    if [ "$attempt" = 2 ]; then
        echo "recovery throughput ${recovery_eps} events/s regressed below 80% of the committed ${committed_recovery_eps}"
        exit 1
    fi
    echo "recovery throughput ${recovery_eps} events/s below 80% of committed ${committed_recovery_eps}; retrying the measurement once"
    cargo run --release -p nfv-bench --bin figures -- bench --reps 2
done

echo "== observability overhead gate (obs-enabled fleet within 5% ev/s of the plain run) =="
# Hard (with one retry, like the replay gate): the observability plane is
# counters, fixed-shape histograms and a bounded span tree on the epoch
# loop, so its price must stay inside the 5% budget. A single bad sample
# on a loaded host gets one re-measurement before failing.
for attempt in 1 2; do
    obs_overhead=$(bench_field obs enabled_overhead_pct < BENCH_pipeline.json)
    obs_metrics=$(bench_field obs registry_metrics < BENCH_pipeline.json)
    echo "observability: enabled-path overhead ${obs_overhead}% on the 256-tenant fleet point, ${obs_metrics} registry metrics"
    # Hard: the registry must actually fill — an empty registry means the
    # enabled run silently stopped recording, which would also make the
    # overhead figure meaningless.
    awk -v m="$obs_metrics" 'BEGIN { exit (m >= 1) ? 0 : 1 }' || {
        echo "observability bench recorded an empty registry; the metrics plane is dead"
        exit 1
    }
    if awk -v o="$obs_overhead" 'BEGIN { exit (o <= 5.0) ? 0 : 1 }'; then
        break
    fi
    if [ "$attempt" = 2 ]; then
        echo "observability enabled-path overhead ${obs_overhead}% exceeds the 5% budget"
        exit 1
    fi
    echo "observability overhead ${obs_overhead}% above the 5% budget; retrying the measurement once"
    cargo run --release -p nfv-bench --bin figures -- bench --reps 2
done

echo "ci: all green"
