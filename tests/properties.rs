//! Cross-crate property tests: random scenarios and topologies through the
//! full pipeline, and the heuristics against the exact oracle.

use nfv::model::{
    ArrivalRate, Capacity, ComputeNode, Demand, NodeId, ServiceRate, Vnf, VnfId, VnfKind,
};
use nfv::placement::{exact, Bfdsu, Ffd, Nah, PlacementProblem, Placer};
use nfv::scheduling::{Cga, Rckk, Scheduler};
use nfv::topology::builders;
use nfv::workload::ScenarioBuilder;
use nfv::JointOptimizer;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn small_problem(caps: &[f64], demands: &[f64]) -> PlacementProblem {
    let nodes = caps
        .iter()
        .enumerate()
        .map(|(i, &c)| ComputeNode::new(NodeId::new(i as u32), Capacity::new(c).unwrap()))
        .collect();
    let vnfs = demands
        .iter()
        .enumerate()
        .map(|(i, &d)| {
            Vnf::builder(VnfId::new(i as u32), VnfKind::Custom(i as u16))
                .demand_per_instance(Demand::new(d).unwrap())
                .service_rate(ServiceRate::new(100.0).unwrap())
                .build()
                .unwrap()
        })
        .collect();
    PlacementProblem::new(nodes, vnfs).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Theorem 2: BFDSU's node count is within the asymptotic factor-2
    /// worst-case bound of the optimum, verified against the
    /// branch-and-bound oracle. The paper's bound is *asymptotic*
    /// (`lim sup SUM/OPT = 2` as `|V| → ∞`); on tiny instances the
    /// weighted-random choice can overshoot by an additive node (e.g.
    /// OPT = 1 but an unlucky tight-fit draw fragments across 3), so the
    /// finite-instance form asserted here is `SUM ≤ 2·OPT + 1`.
    #[test]
    fn bfdsu_respects_factor_two_bound(
        caps in prop::collection::vec(50.0..200.0f64, 3..7),
        demands in prop::collection::vec(10.0..120.0f64, 2..8),
        seed in 0u64..1000,
    ) {
        let problem = small_problem(&caps, &demands);
        let Some(opt) = exact::optimal_node_count(&problem) else {
            return Ok(()); // infeasible instance: nothing to bound
        };
        let mut rng = StdRng::seed_from_u64(seed);
        // BFDSU's used-node priority makes a few extremely tight feasible
        // instances unreachable (documented on `Bfdsu`); the bound applies
        // to the placements it does produce.
        let Ok(outcome) = Bfdsu::new().place(&problem, &mut rng) else {
            return Ok(());
        };
        let used = outcome.placement().nodes_in_service();
        prop_assert!(
            used <= 2 * opt.max(1) + 1,
            "BFDSU used {used} nodes, optimal {opt}"
        );
    }

    /// Any placement produced by any algorithm respects per-node capacity
    /// and places every VNF exactly once.
    #[test]
    fn placements_are_always_feasible(
        caps in prop::collection::vec(100.0..400.0f64, 2..8),
        demands in prop::collection::vec(10.0..90.0f64, 1..10),
        seed in 0u64..1000,
    ) {
        let problem = small_problem(&caps, &demands);
        let placers: Vec<Box<dyn Placer>> =
            vec![Box::new(Bfdsu::new()), Box::new(Ffd::new()), Box::new(Nah::new())];
        for placer in &placers {
            let mut rng = StdRng::seed_from_u64(seed);
            if let Ok(outcome) = placer.place(&problem, &mut rng) {
                let placement = outcome.placement();
                for node in problem.nodes() {
                    prop_assert!(
                        placement.demand_on(node.id())
                            <= node.capacity().value() * (1.0 + 1e-9) + 1e-9,
                        "{} overloaded by {}",
                        node.id(),
                        placer.name()
                    );
                }
                prop_assert_eq!(placement.assignment().len(), problem.vnfs().len());
            }
        }
    }

    /// RCKK's makespan is never worse than round-robin's worst case and
    /// never better than the perfect fractional split.
    #[test]
    fn rckk_makespan_is_sane(
        rates in prop::collection::vec(1.0..100.0f64, 1..40),
        m in 1usize..8,
    ) {
        let rates: Vec<ArrivalRate> =
            rates.iter().map(|&v| ArrivalRate::new(v).unwrap()).collect();
        let total: f64 = rates.iter().map(|r| r.value()).sum();
        let schedule = Rckk::new().schedule(&rates, m).unwrap();
        let perfect = total / m as f64;
        prop_assert!(schedule.makespan() >= perfect - 1e-9);
        prop_assert!(schedule.makespan() <= total + 1e-9);
    }

    /// RCKK is at least as balanced as the greedy baseline on every input
    /// (KK differencing dominates LPT on imbalance in these ranges) — the
    /// invariant behind every scheduling figure.
    #[test]
    fn rckk_never_less_balanced_than_cga_by_much(
        rates in prop::collection::vec(1.0..100.0f64, 5..60),
        m in 2usize..7,
    ) {
        let rates: Vec<ArrivalRate> =
            rates.iter().map(|&v| ArrivalRate::new(v).unwrap()).collect();
        let rckk = Rckk::new().schedule(&rates, m).unwrap();
        let cga = Cga::new().schedule(&rates, m).unwrap();
        // Allow a tiny epsilon: on some inputs both are perfect.
        prop_assert!(
            rckk.makespan() <= cga.makespan() * 1.10 + 1e-9,
            "rckk makespan {} far above cga {}",
            rckk.makespan(),
            cga.makespan()
        );
    }

    /// Hop distances on random fabrics are a metric: symmetric, zero on
    /// the diagonal, and satisfying the triangle inequality.
    #[test]
    fn topology_hop_distances_form_a_metric(
        nodes in 2usize..15,
        extra in 0.0..0.5f64,
        seed in 0u64..500,
    ) {
        use nfv::model::NodeId;
        let topo = builders::random_connected()
            .nodes(nodes)
            .extra_edge_probability(extra)
            .seed(seed)
            .uniform_capacity(100.0)
            .build()
            .unwrap();
        for a in 0..nodes as u32 {
            prop_assert_eq!(topo.hop_count(NodeId::new(a), NodeId::new(a)).unwrap(), 0);
            for b in 0..nodes as u32 {
                let ab = topo.hop_count(NodeId::new(a), NodeId::new(b)).unwrap();
                let ba = topo.hop_count(NodeId::new(b), NodeId::new(a)).unwrap();
                prop_assert_eq!(ab, ba, "asymmetric hops {}-{}", a, b);
                for c in 0..nodes as u32 {
                    let ac = topo.hop_count(NodeId::new(a), NodeId::new(c)).unwrap();
                    let cb = topo.hop_count(NodeId::new(c), NodeId::new(b)).unwrap();
                    prop_assert!(ab <= ac + cb, "triangle violated {}-{}-{}", a, c, b);
                }
            }
        }
    }

    /// Replica splitting conserves demand, instances and per-VNF users for
    /// any budget it accepts.
    #[test]
    fn replication_conserves_everything(
        vnfs in 3usize..9,
        requests in 30usize..90,
        divisor in 1.5..6.0f64,
        seed in 0u64..300,
    ) {
        use nfv::model::Demand;
        use nfv::workload::{replicate, InstancePolicy};
        let scenario = ScenarioBuilder::new()
            .vnfs(vnfs)
            .requests(requests)
            .instance_policy(InstancePolicy::PerUsers { requests_per_instance: 4 })
            .seed(seed)
            .build()
            .unwrap();
        let max_vnf = scenario
            .vnfs()
            .iter()
            .map(|v| v.total_demand().value())
            .fold(0.0f64, f64::max);
        let budget = Demand::new(max_vnf / divisor).unwrap();
        let Ok((rewritten, map)) = replicate::split_oversized(&scenario, budget) else {
            return Ok(()); // budget below a single instance: correctly refused
        };
        rewritten.validate().unwrap();
        prop_assert!(
            (rewritten.total_demand().value() - scenario.total_demand().value()).abs() < 1e-6
        );
        for vnf in scenario.vnfs() {
            let users: usize =
                map.replicas_of(vnf.id()).iter().map(|&r| rewritten.users_of(r)).sum();
            prop_assert_eq!(users, scenario.users_of(vnf.id()));
            let instances: u32 = map
                .replicas_of(vnf.id())
                .iter()
                .map(|&r| rewritten.vnf(r).unwrap().instances())
                .sum();
            prop_assert_eq!(instances, vnf.instances());
        }
    }

    /// The full pipeline succeeds and satisfies its invariants on random
    /// mid-size scenarios whenever the fabric has comfortable capacity.
    #[test]
    fn pipeline_handles_random_scenarios(
        vnfs in 3usize..12,
        requests in 20usize..80,
        seed in 0u64..200,
    ) {
        let scenario = ScenarioBuilder::new()
            .vnfs(vnfs)
            .requests(requests)
            .seed(seed)
            .build()
            .unwrap();
        let max_vnf = scenario
            .vnfs()
            .iter()
            .map(|v| v.total_demand().value())
            .fold(0.0f64, f64::max);
        // Every host can take any single VNF, and two hosts cover the fleet.
        let per_host = (scenario.total_demand().value() / 2.0).max(1.1 * max_vnf);
        let topology = builders::star()
            .hosts(6)
            .uniform_capacity(per_host.max(1.0))
            .build()
            .unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let solution = JointOptimizer::new()
            .optimize(&scenario, &topology, &mut rng)
            .expect("comfortable capacity must be feasible");
        let objective = solution.objective().expect("scaled rates keep instances stable");
        prop_assert!(objective.total_latency().is_finite());
        prop_assert!(objective.average_total_latency() > 0.0);
    }
}
