//! The chaos invariant: a fleet run with injected *recoverable* faults,
//! repaired through epoch checkpoints and event replay, is
//! byte-identical to the undisturbed run — report, epoch records,
//! migrations, per-tenant reports, and the merged journal. Unrecoverable
//! faults degrade gracefully and typed: quarantine for a corrupt
//! checkpoint, `PumpStalled` for a wedged drain.

use nfv_fleet::{
    run, run_with_faults, FaultKind, FaultPlan, FaultRates, FleetError, FleetOutcome, FleetSpec,
};
use nfv_workload::TenantId;

fn spec() -> FleetSpec {
    FleetSpec {
        seed: 42,
        ..FleetSpec::smoke()
    }
}

/// Asserts the full byte-identity contract between a faulted-but-
/// recovered outcome and the undisturbed baseline.
fn assert_byte_identical(faulted: &FleetOutcome, baseline: &FleetOutcome) {
    assert_eq!(faulted.report, baseline.report, "fleet report diverged");
    assert_eq!(
        faulted.epoch_records, baseline.epoch_records,
        "epoch records diverged"
    );
    assert_eq!(faulted.migrations, baseline.migrations, "handoffs diverged");
    assert_eq!(
        faulted.tenant_reports, baseline.tenant_reports,
        "tenant reports diverged"
    );
    assert_eq!(
        faulted.artifacts.journal_jsonl(),
        baseline.artifacts.journal_jsonl(),
        "merged journal not byte-identical"
    );
}

#[test]
fn empty_plan_is_exactly_the_undisturbed_run() {
    let spec = spec();
    let a = run(&spec).unwrap();
    let b = run_with_faults(&spec, &FaultPlan::none()).unwrap();
    assert_byte_identical(&b, &a);
    assert_eq!(b.recovery, Default::default(), "no recovery machinery ran");
    assert!(b.quarantines.is_empty());
    assert!(
        b.chaos_artifacts.journal_jsonl().is_empty(),
        "no chaos journal without faults"
    );
}

#[test]
fn seeded_recoverable_faults_recover_byte_identically() {
    let spec = spec();
    let plan = FaultPlan::seeded(
        42,
        spec.epochs() as usize,
        spec.shards,
        spec.tenants as u32,
        &FaultRates::recoverable(0.4),
    );
    assert!(plan.fault_count() > 0, "rate 0.4 must schedule faults");
    let baseline = run(&spec).unwrap();
    let faulted = run_with_faults(&spec, &plan).unwrap();
    assert!(
        faulted.recovery.faults_injected > 0,
        "scheduled faults must actually fire: {:?}",
        faulted.recovery
    );
    assert!(faulted.recovery.checkpoints > 0);
    assert!(
        faulted.recovery.shard_restores + faulted.recovery.tenant_restores > 0,
        "recovery must have repaired something: {:?}",
        faulted.recovery
    );
    assert!(
        faulted.quarantines.is_empty(),
        "recoverable plans never quarantine"
    );
    assert!(
        !faulted.chaos_artifacts.journal_jsonl().is_empty(),
        "recovery emits chaos telemetry"
    );
    assert_byte_identical(&faulted, &baseline);
}

#[test]
fn shard_panic_mid_drain_restores_and_replays_byte_identically() {
    let spec = spec();
    let plan = FaultPlan::none().with_fault(1, FaultKind::ShardPanic { shard: 0 });
    let baseline = run(&spec).unwrap();
    let faulted = run_with_faults(&spec, &plan).unwrap();
    assert_eq!(faulted.recovery.shard_restores, 1, "the panic must fire");
    assert!(
        faulted.recovery.events_replayed > 0,
        "replay caught the shard up"
    );
    assert_byte_identical(&faulted, &baseline);
}

#[test]
fn boundary_faults_restore_and_replay_byte_identically() {
    let spec = spec();
    // One of each epoch-boundary fault kind, on distinct tenants and
    // epochs; `nth: 0` so the channel faults fire on the first pumped
    // event of their epoch.
    let plan = FaultPlan::none()
        .with_fault(0, FaultKind::TenantCrash { tenant: 0 })
        .with_fault(1, FaultKind::ChannelDrop { tenant: 1, nth: 0 })
        .with_fault(1, FaultKind::ChannelDup { tenant: 2, nth: 0 })
        .with_fault(2, FaultKind::CorruptState { tenant: 3 });
    let baseline = run(&spec).unwrap();
    let faulted = run_with_faults(&spec, &plan).unwrap();
    assert!(
        faulted.recovery.tenant_restores >= 3,
        "crash + channel faults + corruption all recover: {:?}",
        faulted.recovery
    );
    assert_byte_identical(&faulted, &baseline);
}

#[test]
fn corrupt_checkpoint_quarantines_the_tenant_and_conserves() {
    let spec = spec();
    let plan = FaultPlan::none().with_fault(1, FaultKind::CorruptCheckpoint { tenant: 1 });
    let outcome = run_with_faults(&spec, &plan).unwrap();
    assert_eq!(outcome.recovery.tenants_quarantined, 1);
    assert_eq!(outcome.quarantines.len(), 1);
    let quarantine = &outcome.quarantines[0];
    assert_eq!(quarantine.tenant, TenantId::new(1));
    assert_eq!(quarantine.epoch, 1);
    assert_eq!(quarantine.cause, "corrupt_checkpoint");
    // The frozen checkpoint report keeps the fleet-wide books balanced.
    let report = &outcome.report;
    assert_eq!(
        report.admitted + report.retry_admitted,
        report.active + report.departed + report.shed,
        "fleet-wide conservation with a quarantined tenant"
    );
    for record in &outcome.epoch_records {
        assert!(record.conserved(), "epoch {} conserves", record.epoch);
    }
    // Every tenant still reports — the quarantined one with its frozen
    // checkpoint counters.
    assert_eq!(outcome.tenant_reports.len(), spec.tenants);
    assert!(outcome
        .tenant_reports
        .iter()
        .any(|(t, r)| *t == TenantId::new(1) && *r == quarantine.report));
    assert!(!outcome.chaos_artifacts.journal_jsonl().is_empty());
}

#[test]
fn wedged_drain_with_a_one_slot_channel_stalls_typed() {
    // Satellite regression: a tenant whose channel stays full across an
    // entire epoch surfaces a typed error instead of spinning.
    let spec = FleetSpec {
        channel_capacity: 1,
        ..spec()
    };
    // Wedge tenant 0 across the first two epochs: epoch 1 always pumps
    // at least the re-optimization tick, so the stall is guaranteed.
    let plan = FaultPlan::none()
        .with_fault(0, FaultKind::WedgeDrain { tenant: 0 })
        .with_fault(1, FaultKind::WedgeDrain { tenant: 0 });
    match run_with_faults(&spec, &plan) {
        Err(FleetError::PumpStalled { tenant, epoch }) => {
            assert_eq!(tenant, TenantId::new(0));
            assert!(epoch <= 1, "stall detected in a wedged epoch, got {epoch}");
        }
        other => panic!("expected PumpStalled, got {other:?}"),
    }
}

#[test]
fn faulted_runs_are_thread_count_invariant() {
    let base = spec();
    let plan = FaultPlan::seeded(
        7,
        base.epochs() as usize,
        base.shards,
        base.tenants as u32,
        &FaultRates::recoverable(0.5),
    );
    let one = run_with_faults(&FleetSpec { threads: 1, ..base }, &plan).unwrap();
    let two = run_with_faults(&FleetSpec { threads: 2, ..base }, &plan).unwrap();
    assert_byte_identical(&two, &one);
    assert_eq!(one.recovery, two.recovery);
    assert_eq!(
        one.chaos_artifacts.journal_jsonl(),
        two.chaos_artifacts.journal_jsonl(),
        "chaos journal thread-invariant"
    );
}
