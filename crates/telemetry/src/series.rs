//! Bounded per-tick time-series sampling.

use std::collections::VecDeque;
use std::fmt::Write as _;

use serde::{Deserialize, Serialize};

/// One per-tick snapshot of the controller's load state — everything is
/// derived from the deterministic ledger, so same-seed series are
/// bit-identical.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TickSample {
    /// Re-optimization ticks observed so far (1-based at the first tick).
    pub tick: u64,
    /// Virtual time of the tick, seconds.
    pub time: f64,
    /// Requests active after the tick.
    pub active: u64,
    /// Service instances currently provisioned (all VNFs).
    pub instances: u64,
    /// Highest per-instance utilization `ρ`.
    pub max_rho: f64,
    /// Mean per-instance utilization `ρ` (0 with no instances).
    pub mean_rho: f64,
    /// Balanced predicted latency `W` of the ledger, seconds.
    pub balanced_latency: f64,
    /// Requests waiting in the retry/backoff queue.
    pub retry_backlog: u64,
    /// Cluster nodes currently in service (0 when no cluster is known).
    pub nodes_in_service: u64,
    /// Cluster nodes total (0 when no cluster is known).
    pub nodes_total: u64,
}

/// CSV header of [`TickSeries::to_csv`].
pub const SERIES_CSV_HEADER: &str =
    "Tick,Time,Active,Instances,MaxRho,MeanRho,BalancedLatency,RetryBacklog,NodesInService,NodesTotal";

impl TickSample {
    /// One CSV row under [`SERIES_CSV_HEADER`].
    #[must_use]
    pub fn to_csv_row(&self) -> String {
        format!(
            "{},{:.6},{},{},{:.6},{:.6},{:.6},{},{},{}",
            self.tick,
            self.time,
            self.active,
            self.instances,
            self.max_rho,
            self.mean_rho,
            self.balanced_latency,
            self.retry_backlog,
            self.nodes_in_service,
            self.nodes_total,
        )
    }
}

/// A bounded time-series of [`TickSample`]s: keeps the most recent
/// `capacity` samples (dropping the oldest) so long sweeps cannot grow
/// memory without bound.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TickSeries {
    capacity: usize,
    samples: VecDeque<TickSample>,
    dropped: u64,
}

impl TickSeries {
    /// Creates a series holding at most `capacity` samples.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            samples: VecDeque::with_capacity(capacity.min(1024)),
            dropped: 0,
        }
    }

    /// Appends one sample, evicting the oldest when full.
    pub fn push(&mut self, sample: TickSample) {
        if self.capacity == 0 {
            self.dropped += 1;
            return;
        }
        if self.samples.len() == self.capacity {
            self.samples.pop_front();
            self.dropped += 1;
        }
        self.samples.push_back(sample);
    }

    /// Retained samples, oldest first.
    pub fn samples(&self) -> impl Iterator<Item = &TickSample> {
        self.samples.iter()
    }

    /// Number of retained samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether nothing is retained.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Samples evicted to honor the capacity bound.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Appends another worker's series after this one (in-order merge:
    /// callers fold worker results in worker-index order, so the merged
    /// series is identical at any thread count).
    pub fn merge(&mut self, other: &TickSeries) {
        self.dropped += other.dropped;
        for sample in &other.samples {
            self.push(*sample);
        }
    }

    /// Renders the retained samples as CSV under [`SERIES_CSV_HEADER`].
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{SERIES_CSV_HEADER}");
        for sample in &self.samples {
            let _ = writeln!(out, "{}", sample.to_csv_row());
        }
        out
    }
}

impl Default for TickSeries {
    fn default() -> Self {
        Self::new(4096)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(tick: u64) -> TickSample {
        TickSample {
            tick,
            time: tick as f64 * 15.0,
            active: 10 + tick,
            instances: 8,
            max_rho: 0.8,
            mean_rho: 0.5,
            balanced_latency: 0.01,
            retry_backlog: 0,
            nodes_in_service: 4,
            nodes_total: 4,
        }
    }

    #[test]
    fn bounded_push_evicts_the_oldest() {
        let mut series = TickSeries::new(2);
        for tick in 1..=4 {
            series.push(sample(tick));
        }
        assert_eq!(series.len(), 2);
        assert_eq!(series.dropped(), 2);
        let ticks: Vec<u64> = series.samples().map(|s| s.tick).collect();
        assert_eq!(ticks, vec![3, 4]);
    }

    #[test]
    fn merge_appends_in_order() {
        let mut a = TickSeries::new(16);
        a.push(sample(1));
        let mut b = TickSeries::new(16);
        b.push(sample(2));
        b.push(sample(3));
        a.merge(&b);
        let ticks: Vec<u64> = a.samples().map(|s| s.tick).collect();
        assert_eq!(ticks, vec![1, 2, 3]);
        assert_eq!(a.dropped(), 0);
    }

    #[test]
    fn csv_has_header_plus_one_row_per_sample() {
        let mut series = TickSeries::default();
        series.push(sample(1));
        series.push(sample(2));
        let csv = series.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0], SERIES_CSV_HEADER);
        assert_eq!(
            lines[1].split(',').count(),
            SERIES_CSV_HEADER.split(',').count()
        );
        assert!(lines[1].starts_with("1,15.000000,11,8,"));
    }
}
