//! Error type for topology construction and queries.

use std::error::Error;
use std::fmt;

use nfv_model::NodeId;

/// Error returned when a topology cannot be built or a query is invalid.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TopologyError {
    /// The requested topology would contain no computing nodes.
    NoComputeNodes,
    /// The constructed graph is not connected; the paper assumes a connected
    /// datacenter network.
    Disconnected,
    /// An edge referenced a vertex that does not exist.
    UnknownVertex {
        /// Raw vertex index used in the invalid reference.
        index: usize,
    },
    /// A query referenced a compute node not present in this topology.
    UnknownNode {
        /// The offending node id.
        node: NodeId,
    },
    /// A generator parameter was invalid (zero leaves, odd fat-tree arity, …).
    InvalidParameter {
        /// Description of the violated requirement.
        reason: &'static str,
    },
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::NoComputeNodes => write!(f, "topology contains no computing nodes"),
            Self::Disconnected => write!(f, "topology is not connected"),
            Self::UnknownVertex { index } => write!(f, "edge references unknown vertex {index}"),
            Self::UnknownNode { node } => write!(f, "unknown compute node {node}"),
            Self::InvalidParameter { reason } => write!(f, "invalid parameter: {reason}"),
        }
    }
}

impl Error for TopologyError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_concise() {
        assert_eq!(
            TopologyError::NoComputeNodes.to_string(),
            "topology contains no computing nodes"
        );
        assert_eq!(
            TopologyError::UnknownNode {
                node: NodeId::new(3)
            }
            .to_string(),
            "unknown compute node node3"
        );
    }
}
