//! Criterion micro-benchmarks for the placement algorithms (runtime
//! counterpart of the quality comparisons in Figs. 5–10).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nfv_bench::placement_problem;
use nfv_placement::{Bfd, Bfdsu, Ffd, Nah, Placer};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_placers(c: &mut Criterion) {
    let mut group = c.benchmark_group("placement");
    for &(nodes, vnfs, requests) in &[(10usize, 15usize, 200usize), (20, 30, 500), (50, 30, 1000)] {
        let problem = placement_problem(nodes, vnfs, requests, 7);
        let placers: Vec<Box<dyn Placer>> = vec![
            Box::new(Bfdsu::new()),
            Box::new(Bfd::new()),
            Box::new(Ffd::new()),
            Box::new(Nah::new()),
        ];
        for placer in &placers {
            group.bench_with_input(
                BenchmarkId::new(placer.name(), format!("{nodes}n-{vnfs}f-{requests}r")),
                &problem,
                |b, problem| {
                    let mut rng = StdRng::seed_from_u64(1);
                    b.iter(|| placer.place(problem, &mut rng).expect("feasible fixture"));
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_placers);
criterion_main!(benches);
