//! Criterion benchmarks for the discrete-event simulator (events per
//! second on M/M/1, chains and loss feedback).

use criterion::{criterion_group, criterion_main, Criterion};
use nfv_sim::{SimConfig, Simulator};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn mm1(c: &mut Criterion) {
    let config = SimConfig::builder()
        .station(100.0)
        .unwrap()
        .request(70.0, 1.0, vec![0])
        .unwrap()
        .target_deliveries(20_000)
        .warmup_deliveries(1_000)
        .build()
        .unwrap();
    c.bench_function("sim/mm1-20k-deliveries", |b| {
        let sim = Simulator::new(config.clone());
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            sim.run(&mut StdRng::seed_from_u64(seed))
        });
    });
}

fn chain_with_loss(c: &mut Criterion) {
    let config = SimConfig::builder()
        .stations(100.0, 4)
        .unwrap()
        .request(40.0, 0.95, vec![0, 1, 2, 3])
        .unwrap()
        .target_deliveries(20_000)
        .warmup_deliveries(1_000)
        .build()
        .unwrap();
    c.bench_function("sim/4-chain-lossy-20k-deliveries", |b| {
        let sim = Simulator::new(config.clone());
        let mut seed = 100u64;
        b.iter(|| {
            seed += 1;
            sim.run(&mut StdRng::seed_from_u64(seed))
        });
    });
}

fn many_requests(c: &mut Criterion) {
    let mut builder = SimConfig::builder().stations(2000.0, 5).unwrap();
    for r in 0..50 {
        builder = builder.request(50.0, 0.98, vec![r % 5]).unwrap();
    }
    let config = builder
        .target_deliveries(20_000)
        .warmup_deliveries(1_000)
        .build()
        .unwrap();
    c.bench_function("sim/50-requests-5-instances-20k-deliveries", |b| {
        let sim = Simulator::new(config.clone());
        let mut seed = 200u64;
        b.iter(|| {
            seed += 1;
            sim.run(&mut StdRng::seed_from_u64(seed))
        });
    });
}

criterion_group!(benches, mm1, chain_with_loss, many_requests);
criterion_main!(benches);
