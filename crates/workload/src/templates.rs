//! Named service-chain templates.
//!
//! The paper's introduction motivates chaining with concrete policies:
//! "some flows need to traverse a firewall function and a load balancer
//! function, while other flows need only to traverse the firewall
//! function". This module captures the common middlebox policies as named
//! templates over [`VnfKind`]s, resolvable against any VNF universe; the
//! [`crate::ScenarioBuilder`] can mix them with random chains via
//! [`crate::ScenarioBuilder::template_fraction`].

use nfv_model::{ServiceChain, VnfId, VnfKind};

/// A named chain of VNF kinds, e.g. `NAT → FW → LB`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChainTemplate {
    name: &'static str,
    kinds: &'static [VnfKind],
}

impl ChainTemplate {
    /// North–south web traffic: `NAT → Firewall → Load balancer`.
    pub const WEB_SERVICE: ChainTemplate = ChainTemplate {
        name: "web-service",
        kinds: &[VnfKind::Nat, VnfKind::Firewall, VnfKind::LoadBalancer],
    };

    /// Security inspection: `Firewall → IDS → IPS`.
    pub const SECURITY: ChainTemplate = ChainTemplate {
        name: "security",
        kinds: &[VnfKind::Firewall, VnfKind::Ids, VnfKind::Ips],
    };

    /// Branch-office WAN access: `NAT → WAN optimizer → Flow monitor`.
    pub const WAN_ACCESS: ChainTemplate = ChainTemplate {
        name: "wan-access",
        kinds: &[VnfKind::Nat, VnfKind::WanOptimizer, VnfKind::FlowMonitor],
    };

    /// Content delivery: `Load balancer → Proxy cache`.
    pub const CONTENT_DELIVERY: ChainTemplate = ChainTemplate {
        name: "content-delivery",
        kinds: &[VnfKind::LoadBalancer, VnfKind::ProxyCache],
    };

    /// Compliance monitoring: `Firewall → DPI → Flow monitor`.
    pub const COMPLIANCE: ChainTemplate = ChainTemplate {
        name: "compliance",
        kinds: &[VnfKind::Firewall, VnfKind::Dpi, VnfKind::FlowMonitor],
    };

    /// Minimal firewall-only policy (the paper's "other flows need only to
    /// traverse the firewall function").
    pub const FIREWALL_ONLY: ChainTemplate = ChainTemplate {
        name: "firewall-only",
        kinds: &[VnfKind::Firewall],
    };

    /// The standard template mix, in rough order of real-world frequency.
    #[must_use]
    pub fn standard() -> Vec<ChainTemplate> {
        vec![
            Self::WEB_SERVICE,
            Self::SECURITY,
            Self::WAN_ACCESS,
            Self::CONTENT_DELIVERY,
            Self::COMPLIANCE,
            Self::FIREWALL_ONLY,
        ]
    }

    /// The template's name.
    #[must_use]
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The VNF kinds in traversal order.
    #[must_use]
    pub fn kinds(&self) -> &'static [VnfKind] {
        self.kinds
    }

    /// Resolves the template against a VNF universe described by the kind
    /// at each id (as produced by [`crate::VnfCatalog::kind_at`]): each
    /// template kind maps to the first id of that kind. Returns `None` if
    /// any kind is absent.
    #[must_use]
    pub fn resolve(&self, kinds_by_id: &[VnfKind]) -> Option<ServiceChain> {
        let ids: Vec<VnfId> = self
            .kinds
            .iter()
            .map(|kind| {
                kinds_by_id
                    .iter()
                    .position(|k| k == kind)
                    .map(|i| VnfId::new(i as u32))
            })
            .collect::<Option<_>>()?;
        ServiceChain::new(ids).ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::VnfCatalog;

    fn kinds(universe: usize) -> Vec<VnfKind> {
        let catalog = VnfCatalog::standard();
        (0..universe).map(|i| catalog.kind_at(i).0).collect()
    }

    #[test]
    fn resolves_against_full_catalog() {
        let kinds = kinds(9);
        for template in ChainTemplate::standard() {
            let chain = template.resolve(&kinds).unwrap_or_else(|| {
                panic!(
                    "template {} should resolve against the full catalog",
                    template.name()
                )
            });
            assert_eq!(chain.len(), template.kinds().len());
        }
    }

    #[test]
    fn fails_when_kind_missing() {
        // Only NAT and Firewall in the universe: templates needing more
        // cannot resolve.
        let kinds = kinds(2);
        assert!(ChainTemplate::WEB_SERVICE.resolve(&kinds).is_none());
        assert!(ChainTemplate::FIREWALL_ONLY.resolve(&kinds).is_some());
    }

    #[test]
    fn resolution_preserves_order() {
        let kinds = kinds(9);
        let chain = ChainTemplate::WEB_SERVICE.resolve(&kinds).unwrap();
        let resolved_kinds: Vec<VnfKind> = chain.iter().map(|id| kinds[id.as_usize()]).collect();
        assert_eq!(resolved_kinds, ChainTemplate::WEB_SERVICE.kinds());
    }

    #[test]
    fn templates_have_distinct_names() {
        let mut names: Vec<&str> = ChainTemplate::standard().iter().map(|t| t.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), ChainTemplate::standard().len());
    }
}
