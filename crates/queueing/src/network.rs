//! General open Jackson networks with probabilistic routing.
//!
//! The paper applies Jackson's theorem to the special topology of NFV
//! chains (serial visits plus an end-to-end loss feedback). This module
//! implements the general machinery those results are instances of: a
//! network of M/M/1 stations with external Poisson arrivals `λ⁰_i` and a
//! substochastic routing matrix `P` (`P[i][j]` = probability a packet
//! leaving station `i` proceeds to station `j`; the deficit
//! `1 − Σ_j P[i][j]` is the probability of leaving the network). The
//! *traffic equations* `λ = λ⁰ + Pᵀλ` (Kleinrock's flow conservation)
//! determine each station's equivalent total arrival rate; by Jackson's
//! theorem the stationary distribution is then the product of independent
//! M/M/1 marginals.

use std::fmt;

use nfv_model::ServiceRate;
use serde::{Deserialize, Serialize};

use crate::{Mm1Queue, QueueingError};

/// An open Jackson network: stations, external arrivals and routing.
///
/// # Examples
///
/// The paper's Fig. 3 — two VNFs in series with end-to-end loss feedback
/// `1 − P` routed back to the first station — recovers the closed form
/// `λ = λ₀ / P`:
///
/// ```
/// use nfv_model::ServiceRate;
/// use nfv_queueing::JacksonNetwork;
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let (lambda0, p) = (30.0, 0.9);
/// let network = JacksonNetwork::new(
///     vec![ServiceRate::new(80.0)?, ServiceRate::new(120.0)?],
///     vec![lambda0, 0.0],
///     vec![
///         vec![0.0, 1.0],       // station 0 always forwards to station 1
///         vec![1.0 - p, 0.0],   // station 1 feeds back on loss, else departs
///     ],
/// )?;
/// let solved = network.solve()?;
/// assert!((solved.arrival_rates()[0] - lambda0 / p).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JacksonNetwork {
    service: Vec<ServiceRate>,
    external: Vec<f64>,
    routing: Vec<Vec<f64>>,
}

impl JacksonNetwork {
    /// Creates a network from per-station service rates, external arrival
    /// rates and a routing matrix.
    ///
    /// # Errors
    ///
    /// Returns [`QueueingError::InvalidNetwork`] if the dimensions
    /// disagree, any rate or probability is negative/non-finite, or some
    /// routing row sums to more than 1.
    pub fn new(
        service: Vec<ServiceRate>,
        external: Vec<f64>,
        routing: Vec<Vec<f64>>,
    ) -> Result<Self, QueueingError> {
        let n = service.len();
        if n == 0 {
            return Err(QueueingError::InvalidNetwork {
                reason: "network has no stations",
            });
        }
        if external.len() != n || routing.len() != n {
            return Err(QueueingError::InvalidNetwork {
                reason: "external arrivals and routing must have one entry per station",
            });
        }
        if external.iter().any(|&x| !x.is_finite() || x < 0.0) {
            return Err(QueueingError::InvalidNetwork {
                reason: "external arrival rates must be finite and non-negative",
            });
        }
        for row in &routing {
            if row.len() != n {
                return Err(QueueingError::InvalidNetwork {
                    reason: "routing matrix must be square",
                });
            }
            if row.iter().any(|&p| !p.is_finite() || p < 0.0) {
                return Err(QueueingError::InvalidNetwork {
                    reason: "routing probabilities must be finite and non-negative",
                });
            }
            let sum: f64 = row.iter().sum();
            if sum > 1.0 + 1e-12 {
                return Err(QueueingError::InvalidNetwork {
                    reason: "a routing row sums to more than 1",
                });
            }
        }
        Ok(Self {
            service,
            external,
            routing,
        })
    }

    /// Number of stations.
    #[must_use]
    pub fn stations(&self) -> usize {
        self.service.len()
    }

    /// Solves the traffic equations `λ = λ⁰ + Pᵀ λ`, i.e.
    /// `(I − Pᵀ) λ = λ⁰`, by Gaussian elimination with partial pivoting.
    ///
    /// # Errors
    ///
    /// Returns [`QueueingError::InvalidNetwork`] if the system is singular
    /// (packets can be trapped forever — the network is not *open*), or if
    /// the solution contains a negative rate (numerically inconsistent
    /// routing).
    pub fn traffic_rates(&self) -> Result<Vec<f64>, QueueingError> {
        let n = self.stations();
        // Build the augmented matrix [I - P^T | λ⁰].
        let mut a = vec![vec![0.0f64; n + 1]; n];
        for (i, row) in a.iter_mut().enumerate() {
            for (j, cell) in row.iter_mut().take(n).enumerate() {
                let identity = if i == j { 1.0 } else { 0.0 };
                *cell = identity - self.routing[j][i];
            }
            row[n] = self.external[i];
        }

        for col in 0..n {
            // Partial pivot.
            let pivot = (col..n)
                .max_by(|&x, &y| {
                    a[x][col]
                        .abs()
                        .partial_cmp(&a[y][col].abs())
                        .expect("finite matrix entries")
                })
                .expect("non-empty column");
            if a[pivot][col].abs() < 1e-12 {
                return Err(QueueingError::InvalidNetwork {
                    reason: "traffic equations are singular: the network is not open",
                });
            }
            a.swap(col, pivot);
            for row in (col + 1)..n {
                let factor = a[row][col] / a[col][col];
                let (pivot_row, rest) = a.split_at_mut(col + 1);
                let pivot_row = &pivot_row[col];
                let target = &mut rest[row - col - 1];
                for (t, &p) in target[col..=n].iter_mut().zip(&pivot_row[col..=n]) {
                    *t -= factor * p;
                }
            }
        }
        // Back substitution.
        let mut lambda = vec![0.0f64; n];
        for row in (0..n).rev() {
            let mut acc = a[row][n];
            for col in (row + 1)..n {
                acc -= a[row][col] * lambda[col];
            }
            lambda[row] = acc / a[row][row];
        }
        if lambda.iter().any(|&l| l < -1e-9) {
            return Err(QueueingError::InvalidNetwork {
                reason: "traffic equations produced a negative rate",
            });
        }
        Ok(lambda.into_iter().map(|l| l.max(0.0)).collect())
    }

    /// Solves the network: traffic equations plus per-station M/M/1
    /// steady states.
    ///
    /// # Errors
    ///
    /// Propagates [`QueueingError::InvalidNetwork`] from
    /// [`traffic_rates`](Self::traffic_rates) and
    /// [`QueueingError::Unstable`] if some station's equivalent arrival
    /// rate reaches its service rate.
    pub fn solve(&self) -> Result<SolvedNetwork, QueueingError> {
        let arrivals = self.traffic_rates()?;
        let queues = arrivals
            .iter()
            .zip(&self.service)
            .map(|(&lambda, &mu)| Mm1Queue::new(lambda, mu))
            .collect::<Result<Vec<_>, _>>()?;
        let total_external: f64 = self.external.iter().sum();
        Ok(SolvedNetwork {
            arrivals,
            queues,
            total_external,
        })
    }
}

impl fmt::Display for JacksonNetwork {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "open Jackson network: {} stations, total external rate {:.3} pps",
            self.stations(),
            self.external.iter().sum::<f64>()
        )
    }
}

/// A solved open Jackson network: equivalent arrival rates and per-station
/// M/M/1 steady states.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SolvedNetwork {
    arrivals: Vec<f64>,
    queues: Vec<Mm1Queue>,
    total_external: f64,
}

impl SolvedNetwork {
    /// The equivalent total arrival rate `λ_i` at each station.
    #[must_use]
    pub fn arrival_rates(&self) -> &[f64] {
        &self.arrivals
    }

    /// The per-station M/M/1 steady states.
    #[must_use]
    pub fn queues(&self) -> &[Mm1Queue] {
        &self.queues
    }

    /// Expected total number of packets in the network,
    /// `E[N] = Σ_i ρ_i/(1 − ρ_i)` (Jackson's product form).
    #[must_use]
    pub fn mean_packets_in_network(&self) -> f64 {
        self.queues
            .iter()
            .map(Mm1Queue::mean_packets_in_system)
            .sum()
    }

    /// Expected end-to-end sojourn time of a packet admitted to the
    /// network, by Little's law over the whole network:
    /// `E[T] = E[N] / Σ_i λ⁰_i`. Zero if there is no external traffic.
    #[must_use]
    pub fn mean_sojourn_time(&self) -> f64 {
        if self.total_external == 0.0 {
            0.0
        } else {
            self.mean_packets_in_network() / self.total_external
        }
    }

    /// The bottleneck: the station with the highest utilization.
    #[must_use]
    pub fn bottleneck(&self) -> usize {
        self.queues
            .iter()
            .enumerate()
            .max_by(|(_, a), (_, b)| {
                a.utilization()
                    .value()
                    .partial_cmp(&b.utilization().value())
                    .expect("utilizations are finite")
            })
            .map(|(i, _)| i)
            .expect("networks have stations")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mu(v: f64) -> ServiceRate {
        ServiceRate::new(v).unwrap()
    }

    #[test]
    fn tandem_chain_carries_full_rate_everywhere() {
        let network = JacksonNetwork::new(
            vec![mu(100.0), mu(100.0), mu(100.0)],
            vec![40.0, 0.0, 0.0],
            vec![
                vec![0.0, 1.0, 0.0],
                vec![0.0, 0.0, 1.0],
                vec![0.0, 0.0, 0.0],
            ],
        )
        .unwrap();
        let solved = network.solve().unwrap();
        for &l in solved.arrival_rates() {
            assert!((l - 40.0).abs() < 1e-9);
        }
        // E[T] = 3 / (100 - 40).
        assert!((solved.mean_sojourn_time() - 3.0 / 60.0).abs() < 1e-12);
    }

    #[test]
    fn paper_fig3_feedback_matches_burke_closed_form() {
        let (lambda0, p) = (30.0, 0.9);
        let network = JacksonNetwork::new(
            vec![mu(80.0), mu(120.0)],
            vec![lambda0, 0.0],
            vec![vec![0.0, 1.0], vec![1.0 - p, 0.0]],
        )
        .unwrap();
        let solved = network.solve().unwrap();
        let lambda = lambda0 / p;
        assert!((solved.arrival_rates()[0] - lambda).abs() < 1e-9);
        assert!((solved.arrival_rates()[1] - lambda).abs() < 1e-9);
        // E[T_i] = 1/(Pμ_i − λ0) per the paper's derivation; total sojourn
        // by network-wide Little's law matches the sum.
        let expected = 1.0 / (p * 80.0 - lambda0) + 1.0 / (p * 120.0 - lambda0);
        assert!((solved.mean_sojourn_time() - expected).abs() < 1e-9);
    }

    #[test]
    fn merging_flows_sum_at_shared_station() {
        // Two sources feed one shared backend.
        let network = JacksonNetwork::new(
            vec![mu(100.0), mu(100.0), mu(200.0)],
            vec![30.0, 50.0, 0.0],
            vec![
                vec![0.0, 0.0, 1.0],
                vec![0.0, 0.0, 1.0],
                vec![0.0, 0.0, 0.0],
            ],
        )
        .unwrap();
        let solved = network.solve().unwrap();
        assert!((solved.arrival_rates()[2] - 80.0).abs() < 1e-9);
        assert_eq!(solved.bottleneck(), 1); // 50/100 beats 30/100 and 80/200
    }

    #[test]
    fn probabilistic_split_divides_traffic() {
        let network = JacksonNetwork::new(
            vec![mu(100.0), mu(50.0), mu(50.0)],
            vec![60.0, 0.0, 0.0],
            vec![
                vec![0.0, 0.7, 0.3],
                vec![0.0, 0.0, 0.0],
                vec![0.0, 0.0, 0.0],
            ],
        )
        .unwrap();
        let solved = network.solve().unwrap();
        assert!((solved.arrival_rates()[1] - 42.0).abs() < 1e-9);
        assert!((solved.arrival_rates()[2] - 18.0).abs() < 1e-9);
    }

    #[test]
    fn rejects_malformed_networks() {
        assert!(JacksonNetwork::new(vec![], vec![], vec![]).is_err());
        assert!(JacksonNetwork::new(vec![mu(1.0)], vec![1.0, 2.0], vec![vec![0.0]]).is_err());
        assert!(JacksonNetwork::new(vec![mu(1.0)], vec![-1.0], vec![vec![0.0]]).is_err());
        assert!(JacksonNetwork::new(vec![mu(1.0)], vec![1.0], vec![vec![1.5]]).is_err());
        assert!(JacksonNetwork::new(vec![mu(1.0)], vec![1.0], vec![vec![0.5, 0.5]]).is_err());
    }

    #[test]
    fn closed_loop_is_not_an_open_network() {
        // Station 0 -> 1 -> 0 with probability 1 and external input:
        // packets never leave, the traffic equations are singular.
        let network = JacksonNetwork::new(
            vec![mu(10.0), mu(10.0)],
            vec![1.0, 0.0],
            vec![vec![0.0, 1.0], vec![1.0, 0.0]],
        )
        .unwrap();
        assert!(matches!(
            network.traffic_rates(),
            Err(QueueingError::InvalidNetwork { .. })
        ));
    }

    #[test]
    fn overload_surfaces_as_unstable() {
        let network = JacksonNetwork::new(vec![mu(10.0)], vec![20.0], vec![vec![0.0]]).unwrap();
        assert!(matches!(
            network.solve(),
            Err(QueueingError::Unstable { .. })
        ));
    }

    #[test]
    fn no_external_traffic_means_empty_network() {
        let network = JacksonNetwork::new(vec![mu(10.0)], vec![0.0], vec![vec![0.0]]).unwrap();
        let solved = network.solve().unwrap();
        assert_eq!(solved.mean_packets_in_network(), 0.0);
        assert_eq!(solved.mean_sojourn_time(), 0.0);
    }
}
