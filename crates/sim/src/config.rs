//! Simulation configuration.

use serde::{Deserialize, Serialize};

use crate::SimError;

/// One service instance: a single-server FCFS station with exponential
/// service at the given rate and an optionally bounded buffer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StationSpec {
    /// Exponential service rate `μ` in packets per second.
    pub service_rate: f64,
    /// Maximum number of *waiting* packets; `None` models the paper's
    /// unbounded M/M/1 buffer, `Some(k)` an M/M/1/(k+1) station that drops
    /// arrivals on overflow (congestion loss).
    pub buffer: Option<usize>,
}

/// One request: a Poisson packet source traversing a path of stations with
/// end-to-end delivery probability `P`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RequestSpec {
    /// Poisson arrival rate `λ` in packets per second.
    pub arrival_rate: f64,
    /// Probability that the destination delivers a packet; failures are
    /// retransmitted from the source.
    pub delivery_probability: f64,
    /// Station indices visited in order (the request's chain, after
    /// scheduling has mapped each VNF to a concrete instance).
    pub path: Vec<usize>,
}

/// A validated simulation configuration; build with [`SimConfig::builder`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    pub(crate) stations: Vec<StationSpec>,
    pub(crate) requests: Vec<RequestSpec>,
    pub(crate) target_deliveries: u64,
    pub(crate) warmup_deliveries: u64,
    pub(crate) max_events: u64,
}

impl SimConfig {
    /// Starts building a configuration.
    #[must_use]
    pub fn builder() -> SimConfigBuilder {
        SimConfigBuilder {
            stations: Vec::new(),
            requests: Vec::new(),
            target_deliveries: 100_000,
            warmup_deliveries: 10_000,
            max_events: 50_000_000,
        }
    }

    /// The configured stations.
    #[must_use]
    pub fn stations(&self) -> &[StationSpec] {
        &self.stations
    }

    /// The configured requests.
    #[must_use]
    pub fn requests(&self) -> &[RequestSpec] {
        &self.requests
    }

    /// Returns a copy of this configuration with a different measurement
    /// window. Used to split one long run into independent replications
    /// that execute concurrently; a zero `target_deliveries` is clamped to
    /// one so the copy stays valid.
    #[must_use]
    pub fn with_window(&self, target_deliveries: u64, warmup_deliveries: u64) -> Self {
        Self {
            target_deliveries: target_deliveries.max(1),
            warmup_deliveries,
            ..self.clone()
        }
    }
}

/// Builder for [`SimConfig`].
#[derive(Debug, Clone)]
pub struct SimConfigBuilder {
    stations: Vec<StationSpec>,
    requests: Vec<RequestSpec>,
    target_deliveries: u64,
    warmup_deliveries: u64,
    max_events: u64,
}

impl SimConfigBuilder {
    /// Adds a station with service rate `mu` (pps) and returns the builder;
    /// stations are indexed in insertion order.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidParameter`] unless `mu` is finite and
    /// positive.
    pub fn station(mut self, mu: f64) -> Result<Self, SimError> {
        if !(mu.is_finite() && mu > 0.0) {
            return Err(SimError::InvalidParameter {
                reason: "service rate must be positive",
            });
        }
        self.stations.push(StationSpec {
            service_rate: mu,
            buffer: None,
        });
        Ok(self)
    }

    /// Adds a station with service rate `mu` (pps) and a finite buffer of
    /// `buffer` waiting slots (an M/M/1/(buffer+1) station): arrivals that
    /// find the buffer full are dropped and counted as congestion losses.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidParameter`] unless `mu` is finite and
    /// positive.
    pub fn station_with_buffer(mut self, mu: f64, buffer: usize) -> Result<Self, SimError> {
        if !(mu.is_finite() && mu > 0.0) {
            return Err(SimError::InvalidParameter {
                reason: "service rate must be positive",
            });
        }
        self.stations.push(StationSpec {
            service_rate: mu,
            buffer: Some(buffer),
        });
        Ok(self)
    }

    /// Adds `count` identical stations at rate `mu`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidParameter`] for a non-positive rate.
    pub fn stations(mut self, mu: f64, count: usize) -> Result<Self, SimError> {
        for _ in 0..count {
            self = self.station(mu)?;
        }
        Ok(self)
    }

    /// Adds a request with arrival rate `lambda` (pps), delivery
    /// probability `p` and the given station path.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidParameter`] for a non-positive rate, a
    /// probability outside `(0, 1]` or an empty path.
    pub fn request(mut self, lambda: f64, p: f64, path: Vec<usize>) -> Result<Self, SimError> {
        if !(lambda.is_finite() && lambda > 0.0) {
            return Err(SimError::InvalidParameter {
                reason: "arrival rate must be positive",
            });
        }
        if !(p.is_finite() && p > 0.0 && p <= 1.0) {
            return Err(SimError::InvalidParameter {
                reason: "delivery probability must lie in (0, 1]",
            });
        }
        if path.is_empty() {
            return Err(SimError::InvalidParameter {
                reason: "request path must be non-empty",
            });
        }
        self.requests.push(RequestSpec {
            arrival_rate: lambda,
            delivery_probability: p,
            path,
        });
        Ok(self)
    }

    /// Number of *measured* deliveries to simulate after warmup
    /// (default 100 000).
    #[must_use]
    pub fn target_deliveries(mut self, count: u64) -> Self {
        self.target_deliveries = count;
        self
    }

    /// Number of initial deliveries discarded as warmup (default 10 000).
    #[must_use]
    pub fn warmup_deliveries(mut self, count: u64) -> Self {
        self.warmup_deliveries = count;
        self
    }

    /// Hard cap on processed events, a safety net against accidentally
    /// unstable configurations whose queues grow without bound
    /// (default 50 000 000).
    #[must_use]
    pub fn max_events(mut self, count: u64) -> Self {
        self.max_events = count;
        self
    }

    /// Validates and builds the configuration.
    ///
    /// # Errors
    ///
    /// * [`SimError::EmptyConfig`] without stations or requests,
    /// * [`SimError::UnknownStation`] if a path references a missing
    ///   station,
    /// * [`SimError::InvalidParameter`] for a zero delivery target.
    pub fn build(self) -> Result<SimConfig, SimError> {
        if self.stations.is_empty() || self.requests.is_empty() {
            return Err(SimError::EmptyConfig);
        }
        if self.target_deliveries == 0 {
            return Err(SimError::InvalidParameter {
                reason: "target deliveries must be positive",
            });
        }
        for request in &self.requests {
            if let Some(&bad) = request.path.iter().find(|&&s| s >= self.stations.len()) {
                return Err(SimError::UnknownStation { station: bad });
            }
        }
        Ok(SimConfig {
            stations: self.stations,
            requests: self.requests,
            target_deliveries: self.target_deliveries,
            warmup_deliveries: self.warmup_deliveries,
            max_events: self.max_events,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_minimal_config() {
        let config = SimConfig::builder()
            .station(10.0)
            .unwrap()
            .request(5.0, 1.0, vec![0])
            .unwrap()
            .build()
            .unwrap();
        assert_eq!(config.stations().len(), 1);
        assert_eq!(config.requests().len(), 1);
    }

    #[test]
    fn stations_helper_adds_count() {
        let builder = SimConfig::builder().stations(10.0, 3).unwrap();
        let config = builder.request(1.0, 1.0, vec![2]).unwrap().build().unwrap();
        assert_eq!(config.stations().len(), 3);
    }

    #[test]
    fn finite_buffer_station_builds() {
        let config = SimConfig::builder()
            .station_with_buffer(10.0, 3)
            .unwrap()
            .request(5.0, 1.0, vec![0])
            .unwrap()
            .build()
            .unwrap();
        assert_eq!(config.stations()[0].buffer, Some(3));
        assert!(SimConfig::builder().station_with_buffer(0.0, 3).is_err());
    }

    #[test]
    fn rejects_invalid_station_and_request() {
        assert!(SimConfig::builder().station(0.0).is_err());
        assert!(SimConfig::builder().station(f64::NAN).is_err());
        let b = SimConfig::builder().station(10.0).unwrap();
        assert!(b.clone().request(0.0, 1.0, vec![0]).is_err());
        assert!(b.clone().request(1.0, 0.0, vec![0]).is_err());
        assert!(b.clone().request(1.0, 1.1, vec![0]).is_err());
        assert!(b.request(1.0, 1.0, vec![]).is_err());
    }

    #[test]
    fn rejects_empty_and_dangling_configs() {
        assert_eq!(
            SimConfig::builder().build().unwrap_err(),
            SimError::EmptyConfig
        );
        let err = SimConfig::builder()
            .station(10.0)
            .unwrap()
            .request(1.0, 1.0, vec![3])
            .unwrap()
            .build()
            .unwrap_err();
        assert_eq!(err, SimError::UnknownStation { station: 3 });
    }

    #[test]
    fn rejects_zero_target() {
        let err = SimConfig::builder()
            .station(10.0)
            .unwrap()
            .request(1.0, 1.0, vec![0])
            .unwrap()
            .target_deliveries(0)
            .build()
            .unwrap_err();
        assert!(matches!(err, SimError::InvalidParameter { .. }));
    }
}
