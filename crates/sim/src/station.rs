//! FCFS single-server stations.

use std::collections::VecDeque;

/// A packet in flight: which request it belongs to, when its *original*
/// transmission entered the system (retransmissions keep this timestamp, so
/// measured latency includes all retransmission rounds, matching Eq. (11)'s
/// per-delivered-packet accounting), and the current hop on its path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct Packet {
    pub(crate) request: usize,
    pub(crate) first_arrival: f64,
    pub(crate) hop: usize,
}

/// Result of offering a packet to a station.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Offer {
    /// The server was idle; service starts now.
    StartService,
    /// The packet joined the buffer.
    Queued,
    /// The buffer was full; the packet was dropped (congestion loss).
    Dropped,
}

/// A single-server FCFS station with an optionally bounded buffer,
/// tracking the busy-time and packets-in-system integrals for utilization
/// and mean-queue-length estimates.
#[derive(Debug)]
pub(crate) struct Station {
    /// Waiting packets (excluding the one in service).
    queue: VecDeque<Packet>,
    /// The packet currently in service, if any.
    in_service: Option<Packet>,
    /// Maximum number of *waiting* packets; `None` = unbounded (M/M/1),
    /// `Some(k)` = M/M/1/(k+1) with drops on overflow.
    buffer_limit: Option<usize>,
    /// Accumulated busy time.
    busy_time: f64,
    /// When the current service began (valid while `in_service.is_some()`).
    service_started: f64,
    /// Time integral of the number of packets in the system.
    area: f64,
    /// When `area` was last advanced.
    last_event: f64,
    /// Total packets that entered this station (visits, not unique packets).
    arrivals: u64,
    /// Packets dropped due to a full buffer.
    dropped: u64,
}

impl Station {
    pub(crate) fn new(buffer_limit: Option<usize>) -> Self {
        Self {
            queue: VecDeque::new(),
            in_service: None,
            buffer_limit,
            busy_time: 0.0,
            service_started: 0.0,
            area: 0.0,
            last_event: 0.0,
            arrivals: 0,
            dropped: 0,
        }
    }

    fn packets_in_system(&self) -> usize {
        self.queue.len() + usize::from(self.in_service.is_some())
    }

    fn advance(&mut self, now: f64) {
        self.area += self.packets_in_system() as f64 * (now - self.last_event);
        self.last_event = now;
    }

    /// Offers a packet.
    pub(crate) fn arrive(&mut self, packet: Packet, now: f64) -> Offer {
        self.advance(now);
        self.arrivals += 1;
        if self.in_service.is_none() {
            self.in_service = Some(packet);
            self.service_started = now;
            Offer::StartService
        } else if self
            .buffer_limit
            .is_some_and(|limit| self.queue.len() >= limit)
        {
            self.dropped += 1;
            Offer::Dropped
        } else {
            self.queue.push_back(packet);
            Offer::Queued
        }
    }

    /// Completes the packet in service; returns it plus whether another
    /// service should start immediately.
    ///
    /// # Panics
    ///
    /// Panics if no packet is in service (a scheduling bug).
    pub(crate) fn complete(&mut self, now: f64) -> (Packet, bool) {
        self.advance(now);
        let done = self
            .in_service
            .take()
            .expect("completion without packet in service");
        self.busy_time += now - self.service_started;
        if let Some(next) = self.queue.pop_front() {
            self.in_service = Some(next);
            self.service_started = now;
            (done, true)
        } else {
            (done, false)
        }
    }

    /// Packets currently waiting (excluding in service).
    #[cfg(test)]
    pub(crate) fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Whether a packet is in service.
    #[cfg(test)]
    pub(crate) fn is_busy(&self) -> bool {
        self.in_service.is_some()
    }

    /// Busy time accumulated up to the last completion, plus the in-flight
    /// service up to `now`.
    pub(crate) fn busy_time(&self, now: f64) -> f64 {
        if self.in_service.is_some() {
            self.busy_time + (now - self.service_started)
        } else {
            self.busy_time
        }
    }

    /// Time-averaged number of packets in the system up to `now`
    /// (converges to `ρ/(1 − ρ)` for a stable unbounded station).
    pub(crate) fn mean_packets(&self, now: f64) -> f64 {
        if now <= 0.0 {
            return 0.0;
        }
        let area = self.area + self.packets_in_system() as f64 * (now - self.last_event);
        area / now
    }

    /// Total visits to this station.
    pub(crate) fn arrivals(&self) -> u64 {
        self.arrivals
    }

    /// Packets dropped because the buffer was full.
    pub(crate) fn dropped(&self) -> u64 {
        self.dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn packet(request: usize) -> Packet {
        Packet {
            request,
            first_arrival: 0.0,
            hop: 0,
        }
    }

    #[test]
    fn idle_arrival_starts_service() {
        let mut s = Station::new(None);
        assert_eq!(s.arrive(packet(0), 1.0), Offer::StartService);
        assert!(s.is_busy());
        assert_eq!(s.queue_len(), 0);
    }

    #[test]
    fn busy_arrival_queues_fcfs() {
        let mut s = Station::new(None);
        s.arrive(packet(0), 0.0);
        assert_eq!(s.arrive(packet(1), 0.5), Offer::Queued);
        assert_eq!(s.arrive(packet(2), 0.6), Offer::Queued);
        assert_eq!(s.queue_len(), 2);
        let (done, more) = s.complete(1.0);
        assert_eq!(done.request, 0);
        assert!(more);
        let (done, more) = s.complete(1.5);
        assert_eq!(done.request, 1, "FCFS order violated");
        assert!(more);
        let (done, more) = s.complete(2.0);
        assert_eq!(done.request, 2);
        assert!(!more);
    }

    #[test]
    fn finite_buffer_drops_overflow() {
        let mut s = Station::new(Some(1));
        assert_eq!(s.arrive(packet(0), 0.0), Offer::StartService);
        assert_eq!(s.arrive(packet(1), 0.1), Offer::Queued);
        assert_eq!(s.arrive(packet(2), 0.2), Offer::Dropped);
        assert_eq!(s.dropped(), 1);
        assert_eq!(s.queue_len(), 1);
        // After a completion there is room again.
        s.complete(0.5);
        assert_eq!(s.arrive(packet(3), 0.6), Offer::Queued);
        assert_eq!(s.dropped(), 1);
    }

    #[test]
    fn zero_buffer_is_pure_loss_system() {
        let mut s = Station::new(Some(0));
        assert_eq!(s.arrive(packet(0), 0.0), Offer::StartService);
        assert_eq!(s.arrive(packet(1), 0.1), Offer::Dropped);
        s.complete(0.2);
        assert_eq!(s.arrive(packet(2), 0.3), Offer::StartService);
    }

    #[test]
    fn busy_time_accounts_in_flight_service() {
        let mut s = Station::new(None);
        s.arrive(packet(0), 1.0);
        assert_eq!(s.busy_time(3.0), 2.0);
        s.complete(4.0);
        assert_eq!(s.busy_time(10.0), 3.0);
    }

    #[test]
    fn mean_packets_integrates_over_time() {
        let mut s = Station::new(None);
        // Empty until t=1 (N=0), one packet until t=3 (N=1), two until t=4.
        s.arrive(packet(0), 1.0);
        s.arrive(packet(1), 3.0);
        // area at t=4: 0*1 + 1*2 + 2*1 = 4; mean = 1.0.
        assert!((s.mean_packets(4.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn arrivals_count_visits_including_dropped() {
        let mut s = Station::new(Some(0));
        s.arrive(packet(0), 0.0);
        s.arrive(packet(0), 0.1); // dropped
        assert_eq!(s.arrivals(), 2);
        assert_eq!(s.dropped(), 1);
    }

    #[test]
    #[should_panic(expected = "completion without packet")]
    fn completing_idle_station_panics() {
        Station::new(None).complete(1.0);
    }
}
