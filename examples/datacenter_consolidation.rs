//! Datacenter consolidation: how many servers does a middlebox fleet need?
//!
//! The paper's motivating workload (§I): an operator must deploy a fleet
//! of firewalls, load balancers, IDSes and friends for a datacenter's
//! traffic, and wants to power the fewest servers at the highest
//! utilization. This example compares the three placement algorithms on
//! the same fat-tree and prints the consolidation report an operator would
//! look at: servers powered, utilization, stranded capacity and an
//! estimate of the CPU cores committed.
//!
//! ```text
//! cargo run --example datacenter_consolidation
//! ```

use nfv::metrics::Table;
use nfv::model::ServiceChain;
use nfv::placement::{Bfdsu, Ffd, Nah, PlacementProblem, Placer};
use nfv::topology::builders;
use nfv::workload::{InstancePolicy, ScenarioBuilder};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 300 requests across 12 VNFs; one service instance per 10 requests.
    let scenario = ScenarioBuilder::new()
        .vnfs(12)
        .requests(300)
        .instance_policy(InstancePolicy::PerUsers {
            requests_per_instance: 10,
        })
        .seed(2026)
        .build()?;

    // A k=4 fat-tree: 16 hosts. Capacities sized so the fleet needs most
    // of the fabric at ~70% fill.
    let demand = scenario.total_demand().value();
    let per_host = demand / (16.0 * 0.7);
    let max_vnf = scenario
        .vnfs()
        .iter()
        .map(|v| v.total_demand().value())
        .fold(0.0f64, f64::max);
    // The biggest host must be able to carry the biggest VNF (all of a
    // VNF's instances co-locate, Eq. (2)).
    let fabric = builders::fat_tree()
        .arity(4)
        .capacity_range(0.5 * per_host, (1.5 * per_host).max(1.1 * max_vnf), 5)
        .build()?;

    let chains: Vec<ServiceChain> = scenario
        .requests()
        .iter()
        .map(|r| r.chain().clone())
        .collect();
    let problem = PlacementProblem::with_chains(
        fabric.compute_nodes().to_vec(),
        scenario.vnfs().to_vec(),
        chains,
    )?;

    println!(
        "fleet: {} VNFs, total demand {:.0} units over {} hosts ({:.0} units each on average)\n",
        scenario.vnfs().len(),
        demand,
        fabric.compute_nodes().len(),
        per_host
    );

    let placers: Vec<Box<dyn Placer>> = vec![
        Box::new(Bfdsu::new()),
        Box::new(Ffd::new()),
        Box::new(Nah::new()),
    ];
    let mut table = Table::new(vec![
        "algorithm",
        "servers",
        "avg util",
        "stranded units",
        "approx cores",
        "iterations",
    ]);
    for placer in &placers {
        let mut rng = StdRng::seed_from_u64(99);
        let outcome = placer.place(&problem, &mut rng)?;
        let placement = outcome.placement();
        let stranded = placement.resource_occupation() - demand;
        // Paper calibration: 150 units per physical core.
        let cores = placement.resource_occupation() / 150.0;
        table.row(vec![
            placer.name().to_owned(),
            placement.nodes_in_service().to_string(),
            placement.average_utilization().to_string(),
            format!("{stranded:.0}"),
            format!("{cores:.0}"),
            outcome.iterations().to_string(),
        ]);
    }
    print!("{table}");
    println!(
        "\nstranded units = capacity powered on but idle; every stranded 150 units is a wasted core"
    );
    Ok(())
}
