//! Derive macros for the vendored serde shim.
//!
//! The shim's `Serialize`/`Deserialize` are marker traits (the workspace
//! carries no serialization format crate), so the derives only need to name
//! the deriving type and emit empty impls. Parsing is done by hand over the
//! token stream — no `syn`/`quote`, which are unavailable offline.

use proc_macro::{TokenStream, TokenTree};

/// Derives the `serde::Serialize` marker impl.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    emit_marker_impl(input, "impl ::serde::Serialize for", "")
}

/// Derives the `serde::Deserialize` marker impl.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    emit_marker_impl(input, "impl<'de> ::serde::Deserialize<'de> for", "")
}

/// Finds the name of the deriving `struct`/`enum` and emits
/// `{head} Name {tail} {}`. Generic types are rejected — the workspace
/// derives only on concrete types, and supporting generics would mean
/// re-growing half of `syn`.
fn emit_marker_impl(input: TokenStream, head: &str, tail: &str) -> TokenStream {
    let mut tokens = input.into_iter();
    let mut name: Option<String> = None;
    while let Some(token) = tokens.next() {
        if let TokenTree::Ident(ident) = &token {
            let word = ident.to_string();
            if word == "struct" || word == "enum" || word == "union" {
                if let Some(TokenTree::Ident(type_name)) = tokens.next() {
                    name = Some(type_name.to_string());
                }
                break;
            }
        }
    }
    let Some(name) = name else {
        return "compile_error!(\"serde shim derive: could not find type name\");"
            .parse()
            .expect("static error snippet parses");
    };
    if let Some(TokenTree::Punct(p)) = tokens.next() {
        if p.as_char() == '<' {
            return format!(
                "compile_error!(\"serde shim derive does not support generic type `{name}`\");"
            )
            .parse()
            .expect("static error snippet parses");
        }
    }
    format!("{head} {name} {tail} {{}}").parse().expect("generated impl parses")
}
