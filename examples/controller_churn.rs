//! Controller churn: keeping a good assignment alive under request churn.
//!
//! Replays one seeded churn trace — arrivals, departures, instance
//! outages, periodic re-optimization ticks — through three control-plane
//! policies and compares the time-weighted mean response time against the
//! migration bill:
//!
//! * **online-only** dispatches each arrival to the least-loaded instance
//!   and never looks back;
//! * **periodic-reopt** additionally re-runs the paper's RCKK scheduler on
//!   every tick and applies a *bounded* migration plan (hysteresis + a
//!   per-tick budget);
//! * **offline-oracle** adopts the full fresh RCKK assignment on every
//!   tick — the latency ideal, at an unrealistic migration cost.
//!
//! ```text
//! cargo run --example controller_churn
//! ```

use nfv::controller::{Controller, ControllerConfig};
use nfv::experiments::churn::{setup, ChurnPoint};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let point = ChurnPoint::base();
    let (scenario, trace) = setup(&point, 42)?;
    println!("{scenario}");
    println!(
        "trace: {} events over {:.0}s (churn {:.1}/s, mean holding {:.0}s, \
         ticks every {:.0}s, outages {:.2}/s)\n",
        trace.len(),
        trace.horizon(),
        point.arrival_rate,
        point.mean_holding,
        point.tick_period,
        point.outage_rate,
    );

    for (name, config) in [
        ("online-only", ControllerConfig::online_only()),
        ("periodic-reopt", ControllerConfig::periodic_reopt()),
        ("offline-oracle", ControllerConfig::offline_oracle()),
    ] {
        let mut controller = Controller::new(&scenario, config);
        let report = controller.run_trace(&trace);
        println!("-- {name} --");
        println!("{}", report.render());
        if let Some(histogram) = controller.latency_histogram(10) {
            println!("{histogram}");
        }
    }
    Ok(())
}
