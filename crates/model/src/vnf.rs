//! Virtual network functions and their service instances.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{Demand, InstanceId, ModelError, ServiceRate, VnfId};

/// The functional category of a VNF.
///
/// The catalog follows the survey cited by the paper (Li & Chen, 2015), which
/// the evaluation draws its "at least six commonly-deployed VNFs" from. The
/// [`VnfKind::Custom`] variant lets workload generators scale past the named
/// kinds (the paper sweeps 6–30 VNFs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum VnfKind {
    /// Network address translator.
    Nat,
    /// Stateful firewall.
    Firewall,
    /// Intrusion detection system.
    Ids,
    /// Layer-4/7 load balancer.
    LoadBalancer,
    /// WAN optimizer / accelerator.
    WanOptimizer,
    /// Passive flow monitor.
    FlowMonitor,
    /// Intrusion prevention system.
    Ips,
    /// Deep packet inspection engine.
    Dpi,
    /// Forward/reverse proxy cache.
    ProxyCache,
    /// An unnamed VNF kind, used when scaling the catalog synthetically.
    Custom(u16),
}

impl VnfKind {
    /// The nine named kinds, in a fixed order convenient for round-robin
    /// catalog generation.
    pub const NAMED: [VnfKind; 9] = [
        VnfKind::Nat,
        VnfKind::Firewall,
        VnfKind::Ids,
        VnfKind::LoadBalancer,
        VnfKind::WanOptimizer,
        VnfKind::FlowMonitor,
        VnfKind::Ips,
        VnfKind::Dpi,
        VnfKind::ProxyCache,
    ];

    /// A short human-readable name for the kind.
    #[must_use]
    pub fn name(self) -> String {
        match self {
            Self::Nat => "NAT".to_owned(),
            Self::Firewall => "FW".to_owned(),
            Self::Ids => "IDS".to_owned(),
            Self::LoadBalancer => "LB".to_owned(),
            Self::WanOptimizer => "WANopt".to_owned(),
            Self::FlowMonitor => "FM".to_owned(),
            Self::Ips => "IPS".to_owned(),
            Self::Dpi => "DPI".to_owned(),
            Self::ProxyCache => "Proxy".to_owned(),
            Self::Custom(n) => format!("VNF#{n}"),
        }
    }
}

impl fmt::Display for VnfKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name())
    }
}

/// A virtual network function `f ∈ F` with its deployment parameters.
///
/// A VNF deploys `M_f ≥ 1` identical service instances, each demanding
/// [`demand_per_instance`](Vnf::demand_per_instance) resource units and
/// serving packets at an exponential rate
/// [`service_rate`](Vnf::service_rate). Following Eq. (2) of the paper, all
/// instances of one VNF are co-located on a single computing node; scaling
/// beyond that is modeled by declaring replica VNFs with fresh ids.
///
/// # Examples
///
/// ```
/// use nfv_model::{Demand, ServiceRate, Vnf, VnfId, VnfKind};
/// # fn main() -> Result<(), nfv_model::ModelError> {
/// let ids = Vnf::builder(VnfId::new(3), VnfKind::Ids)
///     .demand_per_instance(Demand::new(25.0)?)
///     .instances(4)
///     .service_rate(ServiceRate::new(90.0)?)
///     .build()?;
/// assert_eq!(ids.total_demand().value(), 100.0);
/// assert_eq!(ids.instance_ids().count(), 4);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Vnf {
    id: VnfId,
    kind: VnfKind,
    demand_per_instance: Demand,
    instances: u32,
    service_rate: ServiceRate,
}

impl Vnf {
    /// Starts building a VNF with the given identity.
    #[must_use]
    pub fn builder(id: VnfId, kind: VnfKind) -> VnfBuilder {
        VnfBuilder {
            id,
            kind,
            demand_per_instance: None,
            instances: 1,
            service_rate: None,
        }
    }

    /// The VNF's identifier.
    #[must_use]
    pub fn id(&self) -> VnfId {
        self.id
    }

    /// The VNF's functional category.
    #[must_use]
    pub fn kind(&self) -> VnfKind {
        self.kind
    }

    /// Resource demand `D_f` of one service instance.
    #[must_use]
    pub fn demand_per_instance(&self) -> Demand {
        self.demand_per_instance
    }

    /// Number of service instances `M_f` this VNF deploys.
    #[must_use]
    pub fn instances(&self) -> u32 {
        self.instances
    }

    /// Exponential service rate `μ_f` of each instance.
    #[must_use]
    pub fn service_rate(&self) -> ServiceRate {
        self.service_rate
    }

    /// Total resource demand `D_f^sum = M_f · D_f`, the quantity the
    /// placement algorithms pack.
    #[must_use]
    pub fn total_demand(&self) -> Demand {
        self.demand_per_instance.scaled(self.instances)
    }

    /// Iterator over the identifiers of this VNF's service instances.
    pub fn instance_ids(&self) -> impl Iterator<Item = InstanceId> + '_ {
        let id = self.id;
        (0..self.instances).map(move |slot| InstanceId::new(id, slot))
    }
}

impl fmt::Display for Vnf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({}, {} × {})",
            self.id, self.kind, self.instances, self.demand_per_instance
        )
    }
}

/// Builder for [`Vnf`]; see [`Vnf::builder`].
#[derive(Debug, Clone)]
pub struct VnfBuilder {
    id: VnfId,
    kind: VnfKind,
    demand_per_instance: Option<Demand>,
    instances: u32,
    service_rate: Option<ServiceRate>,
}

impl VnfBuilder {
    /// Sets the per-instance resource demand `D_f` (required).
    #[must_use]
    pub fn demand_per_instance(mut self, demand: Demand) -> Self {
        self.demand_per_instance = Some(demand);
        self
    }

    /// Sets the number of service instances `M_f` (default 1).
    #[must_use]
    pub fn instances(mut self, instances: u32) -> Self {
        self.instances = instances;
        self
    }

    /// Sets the per-instance service rate `μ_f` (required).
    #[must_use]
    pub fn service_rate(mut self, rate: ServiceRate) -> Self {
        self.service_rate = Some(rate);
        self
    }

    /// Finishes building the VNF.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::NoInstances`] if the instance count is zero, or
    /// [`ModelError::MissingField`] if a required field was not set.
    pub fn build(self) -> Result<Vnf, ModelError> {
        if self.instances == 0 {
            return Err(ModelError::NoInstances { vnf: self.id });
        }
        let demand_per_instance = self.demand_per_instance.ok_or(ModelError::MissingField {
            field: "demand_per_instance",
        })?;
        let service_rate = self.service_rate.ok_or(ModelError::MissingField {
            field: "service_rate",
        })?;
        Ok(Vnf {
            id: self.id,
            kind: self.kind,
            demand_per_instance,
            instances: self.instances,
            service_rate,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demand(v: f64) -> Demand {
        Demand::new(v).unwrap()
    }

    fn rate(v: f64) -> ServiceRate {
        ServiceRate::new(v).unwrap()
    }

    #[test]
    fn builder_requires_all_fields() {
        let err = Vnf::builder(VnfId::new(0), VnfKind::Nat)
            .build()
            .unwrap_err();
        assert!(matches!(err, ModelError::MissingField { .. }));

        let err = Vnf::builder(VnfId::new(0), VnfKind::Nat)
            .demand_per_instance(demand(1.0))
            .build()
            .unwrap_err();
        assert!(matches!(
            err,
            ModelError::MissingField {
                field: "service_rate"
            }
        ));
    }

    #[test]
    fn builder_rejects_zero_instances() {
        let err = Vnf::builder(VnfId::new(5), VnfKind::Dpi)
            .demand_per_instance(demand(1.0))
            .service_rate(rate(10.0))
            .instances(0)
            .build()
            .unwrap_err();
        assert_eq!(err, ModelError::NoInstances { vnf: VnfId::new(5) });
    }

    #[test]
    fn total_demand_is_m_times_d() {
        let vnf = Vnf::builder(VnfId::new(1), VnfKind::Firewall)
            .demand_per_instance(demand(7.5))
            .instances(3)
            .service_rate(rate(10.0))
            .build()
            .unwrap();
        assert_eq!(vnf.total_demand().value(), 22.5);
    }

    #[test]
    fn instance_ids_enumerate_slots() {
        let vnf = Vnf::builder(VnfId::new(2), VnfKind::Ids)
            .demand_per_instance(demand(1.0))
            .instances(3)
            .service_rate(rate(10.0))
            .build()
            .unwrap();
        let ids: Vec<_> = vnf.instance_ids().collect();
        assert_eq!(
            ids,
            vec![
                InstanceId::new(VnfId::new(2), 0),
                InstanceId::new(VnfId::new(2), 1),
                InstanceId::new(VnfId::new(2), 2),
            ]
        );
    }

    #[test]
    fn kind_names_are_distinct() {
        let mut names: Vec<_> = VnfKind::NAMED.iter().map(|k| k.name()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), VnfKind::NAMED.len());
        assert_eq!(VnfKind::Custom(12).name(), "VNF#12");
    }

    #[test]
    fn display_mentions_id_and_kind() {
        let vnf = Vnf::builder(VnfId::new(9), VnfKind::LoadBalancer)
            .demand_per_instance(demand(2.0))
            .service_rate(rate(5.0))
            .build()
            .unwrap();
        let s = vnf.to_string();
        assert!(s.contains("vnf9") && s.contains("LB"));
    }
}
