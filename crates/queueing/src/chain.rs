//! End-to-end response time of a request traversing a chain of stations.

use std::fmt;

use nfv_model::DeliveryProbability;
use serde::{Deserialize, Serialize};

use crate::{InstanceLoad, QueueingError};

/// The expected end-to-end response time of one request's open Jackson
/// network: the chain of M/M/1 stations it traverses plus the end-to-end
/// loss feedback loop.
///
/// Reproduces the paper's worked example (§III.B, Fig. 3): a packet stream
/// with external rate `λ₀` and delivery probability `P` traversing stations
/// with service rates `μ_i` has per-station response `E[T_i] = 1/(Pμ_i − λ₀)`
/// and total `E[T] = Σ_i E[T_i]`. Equivalently, each *visit* costs
/// `1/(μ_i − Λ)` and the expected number of end-to-end transmission rounds is
/// `1/P`, so the total is `(1/P) · Σ_i 1/(μ_i − Λ_i)` — the form implemented
/// here, which also covers stations shared with other requests (each station
/// brings its own merged `Λ_i`).
///
/// Intermediate results (per-stage visit times, expected rounds) are exposed
/// so callers can attribute latency to stages.
///
/// # Examples
///
/// ```
/// use nfv_model::{ArrivalRate, DeliveryProbability, ServiceRate};
/// use nfv_queueing::{ChainResponse, InstanceLoad};
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let p = DeliveryProbability::new(0.98)?;
/// let mut fw = InstanceLoad::new(ServiceRate::new(100.0)?);
/// let mut lb = InstanceLoad::new(ServiceRate::new(150.0)?);
/// fw.add_request(ArrivalRate::new(49.0)?, p);
/// lb.add_request(ArrivalRate::new(49.0)?, p);
/// let resp = ChainResponse::compute([&fw, &lb], p)?;
/// assert_eq!(resp.stage_visit_times().len(), 2);
/// assert!(resp.total() > resp.total_per_round());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChainResponse {
    stage_visit_times: Vec<f64>,
    expected_rounds: f64,
}

impl ChainResponse {
    /// Computes the response of a request that traverses `stations` in order
    /// and is delivered end-to-end with probability `delivery`.
    ///
    /// # Errors
    ///
    /// Returns [`QueueingError::Unstable`] if any station is at or beyond
    /// its capacity, or [`QueueingError::MissingAssignment`] for an empty
    /// chain.
    pub fn compute<'a, I>(stations: I, delivery: DeliveryProbability) -> Result<Self, QueueingError>
    where
        I: IntoIterator<Item = &'a InstanceLoad>,
    {
        let stage_visit_times = stations
            .into_iter()
            .map(InstanceLoad::mean_visit_response_time)
            .collect::<Result<Vec<_>, _>>()?;
        if stage_visit_times.is_empty() {
            return Err(QueueingError::MissingAssignment);
        }
        Ok(Self {
            stage_visit_times,
            expected_rounds: 1.0 / delivery.value(),
        })
    }

    /// Per-station mean visit response times `1/(μ_i − Λ_i)`, in chain order.
    #[must_use]
    pub fn stage_visit_times(&self) -> &[f64] {
        &self.stage_visit_times
    }

    /// Expected number of end-to-end transmission rounds, `1/P`.
    #[must_use]
    pub fn expected_rounds(&self) -> f64 {
        self.expected_rounds
    }

    /// Response time of a single end-to-end round, `Σ_i 1/(μ_i − Λ_i)`.
    #[must_use]
    pub fn total_per_round(&self) -> f64 {
        self.stage_visit_times.iter().sum()
    }

    /// Total expected response time including retransmissions,
    /// `(1/P) · Σ_i 1/(μ_i − Λ_i)` seconds.
    #[must_use]
    pub fn total(&self) -> f64 {
        self.expected_rounds * self.total_per_round()
    }
}

impl fmt::Display for ChainResponse {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "chain response: {} stages, {:.3} rounds, E[T]={:.6}s",
            self.stage_visit_times.len(),
            self.expected_rounds,
            self.total()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nfv_model::{ArrivalRate, ServiceRate};

    fn p(v: f64) -> DeliveryProbability {
        DeliveryProbability::new(v).unwrap()
    }

    fn loaded(mu: f64, lambda: f64, pv: f64) -> InstanceLoad {
        let mut load = InstanceLoad::new(ServiceRate::new(mu).unwrap());
        if lambda > 0.0 {
            load.add_request(ArrivalRate::new(lambda).unwrap(), p(pv));
        }
        load
    }

    #[test]
    fn reproduces_paper_two_vnf_example() {
        // Fig. 3: E[T] = 1/(Pμ1 − λ0) + 1/(Pμ2 − λ0).
        let (lambda0, pv, mu1, mu2) = (30.0, 0.95, 80.0, 120.0);
        let fw = loaded(mu1, lambda0, pv);
        let lb = loaded(mu2, lambda0, pv);
        let resp = ChainResponse::compute([&fw, &lb], p(pv)).unwrap();
        let expected = 1.0 / (pv * mu1 - lambda0) + 1.0 / (pv * mu2 - lambda0);
        assert!((resp.total() - expected).abs() < 1e-12);
    }

    #[test]
    fn empty_chain_is_an_error() {
        let err = ChainResponse::compute([], p(1.0)).unwrap_err();
        assert_eq!(err, QueueingError::MissingAssignment);
    }

    #[test]
    fn unstable_station_propagates() {
        let sat = loaded(10.0, 20.0, 1.0);
        assert!(matches!(
            ChainResponse::compute([&sat], p(1.0)),
            Err(QueueingError::Unstable { .. })
        ));
    }

    #[test]
    fn perfect_delivery_means_single_round() {
        let s = loaded(100.0, 40.0, 1.0);
        let resp = ChainResponse::compute([&s], p(1.0)).unwrap();
        assert_eq!(resp.expected_rounds(), 1.0);
        assert_eq!(resp.total(), resp.total_per_round());
    }

    #[test]
    fn stages_add_up() {
        let a = loaded(100.0, 10.0, 1.0);
        let b = loaded(200.0, 10.0, 1.0);
        let c = loaded(300.0, 10.0, 1.0);
        let resp = ChainResponse::compute([&a, &b, &c], p(1.0)).unwrap();
        assert_eq!(resp.stage_visit_times().len(), 3);
        let sum: f64 = resp.stage_visit_times().iter().sum();
        assert!((resp.total_per_round() - sum).abs() < 1e-15);
    }

    #[test]
    fn loss_multiplies_total_by_expected_rounds() {
        let s = loaded(100.0, 10.0, 0.8);
        let resp = ChainResponse::compute([&s], p(0.8)).unwrap();
        assert!((resp.expected_rounds() - 1.25).abs() < 1e-12);
        assert!((resp.total() - 1.25 * resp.total_per_round()).abs() < 1e-15);
    }
}
