//! Causal span trees: flame-style wall-clock attribution with explicit
//! parent/child structure.
//!
//! The controller's [`PhaseProfile`](crate::PhaseProfile) answers "how
//! long does each hot phase take?", but it is flat — it cannot say where
//! an *epoch's* wall-clock went across the fleet loop's phases (pump vs.
//! drain vs. handoff vs. checkpoint/restore). A [`SpanTree`] holds that
//! structure: every node has a label, a duration in seconds, and an
//! optional parent, and [`SpanTree::render`] prints the tree with a
//! synthetic `(other)` row per parent so children always sum *exactly*
//! to the measured parent time.
//!
//! Determinism: the tree's **structure** (node labels, parent/child
//! edges, ordering) is a pure function of the run and is identical at
//! any thread count; the **durations** are wall-clock and vary run to
//! run, exactly like `PhaseProfile`. Nothing in a span tree may flow
//! back into a scheduling or placement decision.

use std::fmt::Write as _;

use crate::span::{Phase, PhaseProfile};

/// Handle to one node of a [`SpanTree`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanId(usize);

#[derive(Debug, Clone, PartialEq)]
struct SpanNode {
    label: String,
    parent: Option<usize>,
    seconds: f64,
}

/// A tree of labelled wall-clock spans (see the module docs).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SpanTree {
    nodes: Vec<SpanNode>,
}

impl SpanTree {
    /// An empty tree.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    fn push(&mut self, label: String, parent: Option<usize>, seconds: f64) -> SpanId {
        self.nodes.push(SpanNode {
            label,
            parent,
            seconds,
        });
        SpanId(self.nodes.len() - 1)
    }

    /// Number of spans recorded.
    #[must_use]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tree has no spans.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Adds a root span (no parent) with an initial duration.
    pub fn root(&mut self, label: impl Into<String>, seconds: f64) -> SpanId {
        self.push(label.into(), None, seconds)
    }

    /// Adds a child span under `parent` with an initial duration.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `parent` does not belong to this tree.
    pub fn child(&mut self, parent: SpanId, label: impl Into<String>, seconds: f64) -> SpanId {
        debug_assert!(parent.0 < self.nodes.len(), "parent span exists");
        self.push(label.into(), Some(parent.0), seconds)
    }

    /// Adds `seconds` to the child of `parent` labelled `label`,
    /// creating the child (after any existing children of `parent`) if
    /// it does not exist yet. This is the accumulation entry point for
    /// phases that run many times per parent (e.g. one drain per
    /// backpressure round).
    pub fn accumulate(&mut self, parent: SpanId, label: &str, seconds: f64) -> SpanId {
        let found = self
            .nodes
            .iter()
            .position(|n| n.parent == Some(parent.0) && n.label == label);
        match found {
            Some(at) => {
                self.nodes[at].seconds += seconds;
                SpanId(at)
            }
            None => self.push(label.to_string(), Some(parent.0), seconds),
        }
    }

    /// Adds `seconds` to an existing span.
    pub fn add_seconds(&mut self, id: SpanId, seconds: f64) {
        self.nodes[id.0].seconds += seconds;
    }

    /// Overwrites a span's measured duration (closing a span whose
    /// total was measured by an outer stopwatch).
    pub fn set_seconds(&mut self, id: SpanId, seconds: f64) {
        self.nodes[id.0].seconds = seconds;
    }

    /// A span's measured duration, seconds.
    #[must_use]
    pub fn seconds(&self, id: SpanId) -> f64 {
        self.nodes[id.0].seconds
    }

    /// A span's label.
    #[must_use]
    pub fn label(&self, id: SpanId) -> &str {
        &self.nodes[id.0].label
    }

    /// Direct children of `id`, insertion order.
    #[must_use]
    pub fn children(&self, id: SpanId) -> Vec<SpanId> {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.parent == Some(id.0))
            .map(|(i, _)| SpanId(i))
            .collect()
    }

    /// Root spans (no parent), insertion order.
    #[must_use]
    pub fn roots(&self) -> Vec<SpanId> {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.parent.is_none())
            .map(|(i, _)| SpanId(i))
            .collect()
    }

    /// The part of `id`'s measured time not covered by its children
    /// (clamped at zero) — rendered as the `(other)` row. Zero for a
    /// leaf.
    #[must_use]
    pub fn residual(&self, id: SpanId) -> f64 {
        let covered: f64 = self
            .children(id)
            .iter()
            .map(|child| self.seconds(*child))
            .sum();
        (self.seconds(id) - covered).max(0.0)
    }

    /// Grafts a [`PhaseProfile`]'s per-phase totals as children of
    /// `parent`, one child per phase that recorded at least one span —
    /// the bridge from the fleet-level tree down to the controller's
    /// hot-phase attribution.
    pub fn graft_profile(&mut self, parent: SpanId, profile: &PhaseProfile) {
        for phase in Phase::ALL {
            let summary = profile.summary(phase);
            if summary.count() == 0 {
                continue;
            }
            let total: f64 = summary.samples().as_slice().iter().sum();
            self.accumulate(parent, phase.name(), total);
        }
    }

    /// A flame-style attribution table: one row per span, indented by
    /// depth, with milliseconds and the share of the parent's time; a
    /// synthetic `(other)` row absorbs each parent's residual so child
    /// rows sum exactly to the parent's measured time. Structure is
    /// deterministic; the numbers are wall-clock.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{:<48} {:>12} {:>8}", "span", "ms", "parent%");
        for root in self.roots() {
            self.render_node(&mut out, root, 0, None);
        }
        out
    }

    fn render_node(&self, out: &mut String, id: SpanId, depth: usize, parent_seconds: Option<f64>) {
        let seconds = self.seconds(id);
        let label = format!("{}{}", "  ".repeat(depth), self.label(id));
        let share = match parent_seconds {
            Some(p) if p > 0.0 => format!("{:.1}%", 100.0 * seconds / p),
            _ => "-".to_string(),
        };
        let _ = writeln!(out, "{:<48} {:>12.3} {:>8}", label, seconds * 1e3, share);
        let children = self.children(id);
        if children.is_empty() {
            return;
        }
        for child in &children {
            self.render_node(out, *child, depth + 1, Some(seconds));
        }
        let residual = self.residual(id);
        let label = format!("{}(other)", "  ".repeat(depth + 1));
        let share = if seconds > 0.0 {
            format!("{:.1}%", 100.0 * residual / seconds)
        } else {
            "-".to_string()
        };
        let _ = writeln!(out, "{:<48} {:>12.3} {:>8}", label, residual * 1e3, share);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulate_reuses_children_by_label() {
        let mut tree = SpanTree::new();
        let root = tree.root("run", 1.0);
        let a = tree.accumulate(root, "pump", 0.1);
        let b = tree.accumulate(root, "pump", 0.2);
        assert_eq!(a, b);
        assert!((tree.seconds(a) - 0.3).abs() < 1e-12);
        tree.accumulate(root, "drain", 0.5);
        assert_eq!(tree.children(root).len(), 2);
    }

    #[test]
    fn residual_absorbs_uncovered_parent_time() {
        let mut tree = SpanTree::new();
        let root = tree.root("epoch", 1.0);
        tree.child(root, "pump", 0.25);
        tree.child(root, "drain", 0.5);
        assert!((tree.residual(root) - 0.25).abs() < 1e-12);
        // Children sum exactly to the measured parent time with the
        // residual included.
        let covered: f64 = tree
            .children(root)
            .iter()
            .map(|c| tree.seconds(*c))
            .sum::<f64>()
            + tree.residual(root);
        assert!((covered - tree.seconds(root)).abs() < 1e-12);
    }

    #[test]
    fn residual_clamps_when_children_overrun() {
        let mut tree = SpanTree::new();
        let root = tree.root("epoch", 0.1);
        tree.child(root, "drain", 0.2);
        assert_eq!(tree.residual(root), 0.0);
    }

    #[test]
    fn graft_profile_adds_one_child_per_recorded_phase() {
        let mut profile = PhaseProfile::new();
        profile.record(Phase::RckkPlan, 0.002);
        profile.record(Phase::RckkPlan, 0.003);
        profile.record(Phase::RetryDrain, 0.001);
        let mut tree = SpanTree::new();
        let root = tree.root("controller", 0.0);
        tree.graft_profile(root, &profile);
        let children = tree.children(root);
        assert_eq!(children.len(), 2);
        assert_eq!(tree.label(children[0]), "rckk-plan");
        assert!((tree.seconds(children[0]) - 0.005).abs() < 1e-12);
    }

    #[test]
    fn render_indents_and_includes_other_rows() {
        let mut tree = SpanTree::new();
        let root = tree.root("fleet run", 1.0);
        let epoch = tree.child(root, "epoch 0", 0.6);
        tree.child(epoch, "pump", 0.1);
        let table = tree.render();
        assert!(table.contains("fleet run"));
        assert!(table.contains("  epoch 0"));
        assert!(table.contains("    pump"));
        assert_eq!(table.matches("(other)").count(), 2, "{table}");
        assert!(table.lines().next().unwrap().contains("parent%"));
    }

    #[test]
    fn structure_is_deterministic() {
        let build = || {
            let mut tree = SpanTree::new();
            let root = tree.root("run", 2.0);
            for e in 0..3 {
                let epoch = tree.child(root, format!("epoch {e}"), 0.5);
                tree.accumulate(epoch, "pump", 0.1);
                tree.accumulate(epoch, "drain shard 0", 0.2);
            }
            tree
        };
        assert_eq!(build(), build());
    }
}
