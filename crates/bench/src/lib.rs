//! Shared fixtures for the criterion benchmarks and the `figures` binary.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod report;

pub use report::{
    BenchReport, FigureTiming, ReplayReport, ReportError, SearchReport, TelemetryReport,
};

use nfv_model::{ArrivalRate, ServiceChain};
use nfv_placement::PlacementProblem;
use nfv_topology::builders;
use nfv_workload::{InstancePolicy, ScenarioBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Builds a placement problem of the given size, mirroring the paper's
/// parameter ranges (capacities 1000–5000 units, chains ≤ 6).
///
/// # Panics
///
/// Panics on structurally impossible sizes (zero nodes/VNFs); bench
/// fixtures are meant to be valid by construction.
#[must_use]
pub fn placement_problem(
    nodes: usize,
    vnfs: usize,
    requests: usize,
    seed: u64,
) -> PlacementProblem {
    let topology = builders::random_connected()
        .nodes(nodes)
        .seed(seed)
        .capacity_range(1000.0, 5000.0, seed ^ 0xAA)
        .build()
        .expect("valid fixture topology");
    let scenario = ScenarioBuilder::new()
        .vnfs(vnfs)
        .requests(requests)
        .instance_policy(InstancePolicy::PerUsers {
            requests_per_instance: 10,
        })
        .seed(seed)
        .build()
        .expect("valid fixture scenario");
    let chains: Vec<ServiceChain> = scenario
        .requests()
        .iter()
        .map(|r| r.chain().clone())
        .collect();
    PlacementProblem::with_chains(
        topology.compute_nodes().to_vec(),
        scenario.vnfs().to_vec(),
        chains,
    )
    .expect("valid fixture problem")
}

/// Draws `n` arrival rates uniformly from the paper's `[1, 100]` pps range.
#[must_use]
pub fn arrival_rates(n: usize, seed: u64) -> Vec<ArrivalRate> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| ArrivalRate::new(rng.gen_range(1.0..=100.0)).expect("positive range"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_are_deterministic() {
        assert_eq!(
            placement_problem(8, 10, 50, 1),
            placement_problem(8, 10, 50, 1)
        );
        assert_eq!(arrival_rates(10, 2), arrival_rates(10, 2));
    }

    #[test]
    fn rates_are_in_paper_range() {
        assert!(arrival_rates(200, 3)
            .iter()
            .all(|r| (1.0..=100.0).contains(&r.value())));
    }
}
