//! Typed identifiers for the entities of the NFV model.
//!
//! Each identifier is a thin newtype over `u32` (`usize` would waste space in
//! the large assignment tables kept by the placement and scheduling crates).
//! The types are deliberately distinct so that, e.g., a [`NodeId`] can never
//! be used to index a request table.

use std::fmt;

use serde::{Deserialize, Serialize};

macro_rules! define_id {
    ($(#[$meta:meta])* $name:ident, $prefix:expr) => {
        $(#[$meta])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
        )]
        pub struct $name(u32);

        impl $name {
            /// Creates an identifier from its raw index.
            ///
            /// # Examples
            ///
            /// ```
            #[doc = concat!("use nfv_model::", stringify!($name), ";")]
            #[doc = concat!("let id = ", stringify!($name), "::new(3);")]
            /// assert_eq!(id.index(), 3);
            /// ```
            #[must_use]
            pub const fn new(index: u32) -> Self {
                Self(index)
            }

            /// Returns the raw index backing this identifier.
            #[must_use]
            pub const fn index(self) -> u32 {
                self.0
            }

            /// Returns the raw index as `usize`, convenient for slice indexing.
            #[must_use]
            pub const fn as_usize(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<u32> for $name {
            fn from(index: u32) -> Self {
                Self::new(index)
            }
        }

        impl From<$name> for u32 {
            fn from(id: $name) -> Self {
                id.index()
            }
        }
    };
}

define_id!(
    /// Identifier of a computing node `v ∈ V`.
    NodeId,
    "node"
);
define_id!(
    /// Identifier of a VNF `f ∈ F`.
    VnfId,
    "vnf"
);
define_id!(
    /// Identifier of a request `r ∈ R`.
    RequestId,
    "req"
);

/// Identifier of the `k`-th service instance of a VNF, i.e. the pair `(f, k)`.
///
/// The paper indexes service instances as `k = 1, …, M_f`; we use zero-based
/// `k` internally and render it one-based in [`fmt::Display`] to match the
/// paper's notation.
///
/// # Examples
///
/// ```
/// use nfv_model::{InstanceId, VnfId};
/// let inst = InstanceId::new(VnfId::new(2), 0);
/// assert_eq!(inst.vnf(), VnfId::new(2));
/// assert_eq!(inst.slot(), 0);
/// assert_eq!(inst.to_string(), "vnf2/inst1");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct InstanceId {
    vnf: VnfId,
    slot: u32,
}

impl InstanceId {
    /// Creates the identifier of the zero-based `slot`-th instance of `vnf`.
    #[must_use]
    pub const fn new(vnf: VnfId, slot: u32) -> Self {
        Self { vnf, slot }
    }

    /// The VNF this instance belongs to.
    #[must_use]
    pub const fn vnf(self) -> VnfId {
        self.vnf
    }

    /// Zero-based instance slot `k` within the VNF.
    #[must_use]
    pub const fn slot(self) -> u32 {
        self.slot
    }
}

impl fmt::Display for InstanceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/inst{}", self.vnf, self.slot + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_round_trip_through_u32() {
        assert_eq!(NodeId::from(7u32).index(), 7);
        assert_eq!(u32::from(VnfId::new(9)), 9);
        assert_eq!(RequestId::new(11).as_usize(), 11);
    }

    #[test]
    fn ids_are_ordered_by_index() {
        assert!(NodeId::new(1) < NodeId::new(2));
        assert!(RequestId::new(0) < RequestId::new(10));
    }

    #[test]
    fn display_uses_domain_prefixes() {
        assert_eq!(NodeId::new(4).to_string(), "node4");
        assert_eq!(VnfId::new(0).to_string(), "vnf0");
        assert_eq!(RequestId::new(2).to_string(), "req2");
    }

    #[test]
    fn instance_id_orders_by_vnf_then_slot() {
        let a = InstanceId::new(VnfId::new(0), 5);
        let b = InstanceId::new(VnfId::new(1), 0);
        let c = InstanceId::new(VnfId::new(1), 1);
        assert!(a < b && b < c);
    }

    #[test]
    fn instance_id_display_is_one_based() {
        assert_eq!(InstanceId::new(VnfId::new(3), 2).to_string(), "vnf3/inst3");
    }
}
