#!/usr/bin/env bash
# Tier-1 gate: formatting, lints, and the full test suite.
# Usage: ./ci.sh
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo clippy (workspace, all targets, deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo test (facade + workspace) =="
cargo test -q
cargo test -q --workspace

echo "== thread-count invariance (experiment results at 1/2/8 threads) =="
cargo test -q -p nfv-core --test thread_invariance

echo "== node-failure domains (total-loss, overlap, stale accounting, outage interleavings) =="
cargo test -q -p nfv-controller --test node_failure
cargo test -q -p nfv-controller --test properties outage_interleavings

echo "== queueing formula guards (rho >= 1 stays an error, never a number) =="
cargo test -q -p nfv-queueing rho_

echo "== ledger equivalence (incremental balanced-W bit-identical to the from-scratch oracle) =="
cargo test -q -p nfv-controller --test properties interleaved_mutations_undo_to_identity
cargo test -q -p nfv-controller cached_balanced_latency

echo "== replay engine (streamed == materialized trace, batched path preserves decisions) =="
cargo test -q -p nfv-workload stream
cargo test -q -p nfv-core --lib replay

echo "== anytime search (GA/PSO determinism, repair, refiner hand-off) =="
cargo test -q -p nfv-search
cargo test -q -p nfv-controller refiner
cargo test -q -p nfv-core --lib anytime
cargo test -q -p nfv-core --test thread_invariance search

echo "== cargo build --release =="
cargo build --release

echo "== anytime figure (searchers must reach the greedy placers and the exact oracle) =="
cargo run -q --release -p nfv-bench --bin figures -- anytime --reps 2

echo "== churn figure (joint re-placement must beat scheduling-only when saturated) =="
cargo run -q --release -p nfv-bench --bin figures -- churn

echo "== resilience figure (emergency re-placement + retries must beat tick-only recovery) =="
cargo run -q --release -p nfv-bench --bin figures -- resilience

echo "== telemetry layer (strict observer, journal round-trip, merge order) =="
cargo test -q -p nfv-telemetry
cargo test -q -p nfv-controller telemetry
cargo test -q -p nfv-core --test thread_invariance telemetry

echo "== telemetry exposure (JSONL journal + outage episode + hot-phase profile) =="
mkdir -p results
cargo run -q --release -p nfv-bench --bin figures -- trace --csv results
test -s results/trace_resilience.jsonl
test -s results/trace_series.csv
cargo run -q --release -p nfv-bench --bin figures -- profile

echo "== telemetry overhead gate (disabled path within 2% of the plain replay) =="
# Capture the committed replay throughput before the bench overwrites it.
committed_eps=$(git show HEAD:BENCH_pipeline.json 2>/dev/null \
    | grep -o '"events_per_second": *[0-9.]*' | grep -o '[0-9.]*$' || true)
cargo run --release -p nfv-bench --bin figures -- bench --reps 2
overhead=$(grep -o '"disabled_overhead_pct": *-\{0,1\}[0-9.]*' BENCH_pipeline.json | grep -o '\-\{0,1\}[0-9.]*$')
echo "telemetry disabled-path overhead: ${overhead}%"
awk -v o="$overhead" 'BEGIN { exit (o <= 2.0) ? 0 : 1 }' || {
    echo "telemetry disabled-path overhead ${overhead}% exceeds the 2% budget"
    exit 1
}

echo "== replay throughput gate (>= 1M streamed events, >= 80% of the committed events/s) =="
events=$(grep -o '"events": *[0-9]*' BENCH_pipeline.json | grep -o '[0-9]*$')
eps=$(grep -o '"events_per_second": *[0-9.]*' BENCH_pipeline.json | grep -o '[0-9.]*$')
echo "replay: ${events} events at ${eps} events/s (committed: ${committed_eps:-none})"
awk -v n="$events" 'BEGIN { exit (n >= 1000000) ? 0 : 1 }' || {
    echo "replay trace streamed ${events} events, below the 1M floor"
    exit 1
}
if [ -n "${committed_eps}" ]; then
    awk -v e="$eps" -v c="$committed_eps" 'BEGIN { exit (e >= 0.8 * c) ? 0 : 1 }' || {
        echo "replay throughput ${eps} events/s regressed below 80% of the committed ${committed_eps}"
        exit 1
    }
else
    echo "no committed replay figure yet; regression gate skipped"
fi

echo "ci: all green"
