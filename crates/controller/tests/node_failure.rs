//! Deterministic node-failure-domain scenarios: total-loss edge cases,
//! overlapping outages, and stale-event accounting.

use nfv_controller::{Controller, ControllerConfig, EventOutcome};
use nfv_model::{Capacity, ComputeNode, NodeId, VnfId};
use nfv_placement::{Bfdsu, Placement, PlacementProblem, Placer};
use nfv_workload::churn::{ChurnEvent, TimedEvent};
use nfv_workload::{Scenario, ScenarioBuilder, ServiceRatePolicy};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn scenario() -> Scenario {
    ScenarioBuilder::new()
        .vnfs(3)
        .requests(6)
        .service_rate_policy(ServiceRatePolicy::ScaledToLoad {
            target_utilization: 0.5,
        })
        .seed(91)
        .build()
        .unwrap()
}

/// A cluster of `n` identical nodes, each roomy enough to host the whole
/// fleet, with the initial BFDSU placement.
fn cluster(s: &Scenario, n: usize) -> (Vec<ComputeNode>, Placement) {
    let total: f64 = s.vnfs().iter().map(|v| v.total_demand().value()).sum();
    let nodes: Vec<ComputeNode> = (0..n)
        .map(|i| ComputeNode::new(NodeId::new(i as u32), Capacity::new(total * 2.0).unwrap()))
        .collect();
    let problem = PlacementProblem::new(nodes.clone(), s.vnfs().to_vec()).unwrap();
    let mut rng = StdRng::seed_from_u64(5);
    let placement = Bfdsu::new()
        .place(&problem, &mut rng)
        .unwrap()
        .into_placement();
    (nodes, placement)
}

/// The worst case a failure domain allows: a single-node cluster loses its
/// only node. Everything must be shed (there is nowhere to fail over or
/// re-place to), ticks during the outage must be harmless, and once the
/// node returns the retry queue must re-admit the entire population.
#[test]
fn single_node_outage_sheds_everything_and_retries_recover_it() {
    let s = scenario();
    let (nodes, placement) = cluster(&s, 1);
    let mut controller =
        Controller::with_cluster(&s, nodes, &placement, ControllerConfig::resilient()).unwrap();

    let population = s.requests().len() as u64;
    for request in s.requests() {
        let outcome =
            controller.handle(&TimedEvent::new(0.0, ChurnEvent::Arrival(request.clone())));
        assert!(matches!(outcome, EventOutcome::Admitted { .. }));
    }
    assert_eq!(controller.active_requests() as u64, population);

    // The node dies: every VNF loses every instance at once; nothing can
    // fail over and the emergency pass finds no surviving capacity.
    let node = NodeId::new(0);
    let outcome = controller.handle(&TimedEvent::new(5.0, ChurnEvent::NodeDown { node }));
    match outcome {
        EventOutcome::NodeDownHandled {
            vnfs_lost,
            shed,
            instances_added,
            relocations,
        } => {
            assert_eq!(vnfs_lost, s.vnfs().len() as u64);
            assert_eq!(shed, population);
            assert_eq!(instances_added, 0, "no surviving node to grow on");
            assert_eq!(relocations, 0);
        }
        other => panic!("expected NodeDownHandled, got {other:?}"),
    }
    assert_eq!(controller.active_requests(), 0);
    assert!(!controller.state().fully_available());

    // Ticks during the outage must neither panic nor resurrect anything:
    // the only node is dark, so re-placement has nowhere to go.
    controller.handle(&TimedEvent::new(10.0, ChurnEvent::ReoptimizeTick));
    assert_eq!(controller.active_requests(), 0);
    assert!(!controller.state().fully_available());

    // The node comes back; hosted VNFs are restored wholesale.
    let outcome = controller.handle(&TimedEvent::new(25.0, ChurnEvent::NodeUp { node }));
    match outcome {
        EventOutcome::NodeUpHandled { vnfs_restored } => {
            assert_eq!(vnfs_restored, s.vnfs().len() as u64);
        }
        other => panic!("expected NodeUpHandled, got {other:?}"),
    }
    assert!(controller.state().fully_available());

    // Draining the retry queue re-admits the entire shed population well
    // within the backoff budget.
    controller.finish(200.0);
    let report = controller.report();
    assert_eq!(report.admitted, population, "first offers only");
    assert_eq!(report.shed, population);
    assert_eq!(
        report.retry_admitted, population,
        "every shed request returns"
    );
    assert_eq!(report.retry_abandoned, 0);
    assert_eq!(report.retry_pending, 0);
    assert_eq!(report.active, population);
    assert_eq!(report.lost(), 0, "full recovery");
    assert_eq!(report.node_downs, 1);
    assert_eq!(report.node_ups, 1);
}

/// Overlapping outages of the same node stack: the first `NodeUp` of two
/// pending `NodeDown`s must not resurrect the host.
#[test]
fn overlapping_node_outages_do_not_resurrect_early() {
    let s = scenario();
    let (nodes, placement) = cluster(&s, 1);
    let mut controller =
        Controller::with_cluster(&s, nodes, &placement, ControllerConfig::resilient()).unwrap();
    let node = NodeId::new(0);

    controller.handle(&TimedEvent::new(1.0, ChurnEvent::NodeDown { node }));
    assert!(!controller.state().fully_available());

    // A second, overlapping failure of the same domain: nothing new is
    // lost (everything already was), but the depth increments.
    let outcome = controller.handle(&TimedEvent::new(2.0, ChurnEvent::NodeDown { node }));
    match outcome {
        EventOutcome::NodeDownHandled {
            vnfs_lost, shed, ..
        } => {
            assert_eq!((vnfs_lost, shed), (0, 0), "already dark");
        }
        other => panic!("expected NodeDownHandled, got {other:?}"),
    }

    // First recovery only peels one layer: the node is still down.
    let outcome = controller.handle(&TimedEvent::new(3.0, ChurnEvent::NodeUp { node }));
    assert!(matches!(
        outcome,
        EventOutcome::NodeUpHandled { vnfs_restored: 0 }
    ));
    assert!(!controller.state().fully_available());

    // Second recovery actually restores the host.
    let outcome = controller.handle(&TimedEvent::new(4.0, ChurnEvent::NodeUp { node }));
    match outcome {
        EventOutcome::NodeUpHandled { vnfs_restored } => {
            assert_eq!(vnfs_restored, s.vnfs().len() as u64);
        }
        other => panic!("expected NodeUpHandled, got {other:?}"),
    }
    assert!(controller.state().fully_available());

    let report = controller.report();
    assert_eq!(report.node_downs, 2);
    assert_eq!(report.node_ups, 2);
    assert_eq!(report.stale_outage_events, 0);
}

/// Outage events the controller cannot resolve — an unknown VNF, an `Up`
/// for an instance that is not down, a node event without a cluster — are
/// counted as stale and change nothing.
#[test]
fn stale_outage_events_are_counted_not_applied() {
    let s = scenario();
    // No cluster: node events have nothing to resolve against.
    let mut controller = Controller::new(&s, ControllerConfig::resilient());
    let before = controller.state().clone();

    let unknown_vnf = VnfId::new(999);
    let outcomes = [
        controller.handle(&TimedEvent::new(
            1.0,
            ChurnEvent::InstanceDown {
                vnf: unknown_vnf,
                instance: 0,
            },
        )),
        controller.handle(&TimedEvent::new(
            2.0,
            ChurnEvent::InstanceUp {
                vnf: s.vnfs()[0].id(),
                instance: 0,
            },
        )),
        controller.handle(&TimedEvent::new(
            3.0,
            ChurnEvent::NodeDown {
                node: NodeId::new(0),
            },
        )),
    ];
    for outcome in outcomes {
        assert!(matches!(outcome, EventOutcome::StaleOutage));
    }
    assert_eq!(controller.state(), &before, "stale events are no-ops");
    let report = controller.report();
    assert_eq!(report.stale_outage_events, 3);
    assert_eq!(report.node_downs, 0);

    // With a cluster, an out-of-range node index is stale too.
    let (nodes, placement) = cluster(&s, 2);
    let mut controller =
        Controller::with_cluster(&s, nodes, &placement, ControllerConfig::resilient()).unwrap();
    let outcome = controller.handle(&TimedEvent::new(
        1.0,
        ChurnEvent::NodeUp {
            node: NodeId::new(7),
        },
    ));
    assert!(matches!(outcome, EventOutcome::StaleOutage));
    assert_eq!(controller.report().stale_outage_events, 1);
}
