//! Jackson bottleneck hunt: capacity-plan a POP with probabilistic routing.
//!
//! The chain model of the paper is one topology of an open Jackson
//! network. This example uses the general solver on a small NFV
//! point-of-presence where routing is *probabilistic*: after the firewall,
//! 70% of traffic goes to the load balancer, 30% to the IDS; 5% of IDS
//! verdicts loop back to the firewall for re-inspection; and 2% of all
//! delivered traffic is NACKed end-to-end back into the NAT. The solver
//! answers the operator's questions directly: what is every box's true
//! arrival rate once the loops are accounted for, where is the bottleneck,
//! and what does an upgrade buy?
//!
//! ```text
//! cargo run --example jackson_bottleneck
//! ```

use nfv::metrics::Table;
use nfv::model::ServiceRate;
use nfv::queueing::JacksonNetwork;

const NAMES: [&str; 4] = ["NAT", "FW", "LB", "IDS"];

fn build(mu: [f64; 4]) -> Result<JacksonNetwork, Box<dyn std::error::Error>> {
    let service = mu
        .iter()
        .map(|&m| ServiceRate::new(m))
        .collect::<Result<Vec<_>, _>>()?;
    // External traffic enters at the NAT only.
    let external = vec![60.0, 0.0, 0.0, 0.0];
    // Routing: NAT -> FW; FW -> 70% LB / 30% IDS; LB departs but 2% of its
    // output is retransmitted into the NAT (end-to-end NACK); IDS sends 5%
    // back to the FW for re-inspection, 93% onward to the LB, 2% drops.
    let routing = vec![
        vec![0.00, 1.00, 0.00, 0.00],
        vec![0.00, 0.00, 0.70, 0.30],
        vec![0.02, 0.00, 0.00, 0.00],
        vec![0.00, 0.05, 0.93, 0.00],
    ];
    Ok(JacksonNetwork::new(service, external, routing)?)
}

fn report(label: &str, network: &JacksonNetwork) -> Result<usize, Box<dyn std::error::Error>> {
    let solved = network.solve()?;
    let mut table = Table::new(vec!["station", "Λ (pps)", "ρ", "E[N]", "E[T] (ms)"]);
    for (i, name) in NAMES.iter().enumerate() {
        let q = &solved.queues()[i];
        table.row(vec![
            (*name).to_owned(),
            format!("{:.2}", q.arrival_rate()),
            format!("{:.3}", q.utilization().value()),
            format!("{:.2}", q.mean_packets_in_system()),
            format!("{:.3}", q.mean_response_time() * 1e3),
        ]);
    }
    println!("== {label} ==");
    print!("{table}");
    let bottleneck = solved.bottleneck();
    println!(
        "bottleneck: {} at {}; network E[T] = {:.3} ms\n",
        NAMES[bottleneck],
        solved.queues()[bottleneck].utilization(),
        solved.mean_sojourn_time() * 1e3
    );
    Ok(bottleneck)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Current deployment.
    let current = build([100.0, 80.0, 90.0, 40.0])?;
    let bottleneck = report("current POP", &current)?;
    println!("(note how the FW's Λ exceeds its external share: the IDS loop feeds it back)\n");

    // The operator doubles the bottleneck box.
    let mut upgraded_mu = [100.0, 80.0, 90.0, 40.0];
    upgraded_mu[bottleneck] *= 2.0;
    let upgraded = build(upgraded_mu)?;
    report(
        &format!("after doubling the {}", NAMES[bottleneck]),
        &upgraded,
    )?;

    Ok(())
}
